#!/usr/bin/env python
"""Perf-trajectory gate: fail CI when a benchmark speedup regresses.

``results/baselines.json`` commits a conservative baseline speedup per
benchmark artifact; this script compares every fresh ``BENCH_*.json``
against it and fails the build when a measured speedup drops more than
``tolerance`` (default 30%) below its committed baseline.

The baselines are deliberately set near the benches' own assertion
floors rather than at reference-machine peaks: CI runners vary by 2-3x
in absolute speed, but a *healthy* configuration clears these floors on
any of them, so a breach means a real regression (or a broken bench),
not machine noise.  Ratchet the baselines upward as the floors rise.

A bench may declare ``skip_unless_key``: if the artifact records that
key as falsy (e.g. ``"gated": false`` when the host has too few cores
for a parallel speedup to be meaningful), the entry is reported as
skipped instead of compared.

Usage::

    python tools/check_bench_regression.py [--results-dir results]
        [--baselines results/baselines.json] [--allow-missing]
        [--only NAME ...]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def resolve_key(document, dotted):
    """Walk a dotted path (``dd.speedup``) through nested dicts."""
    value = document
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(dotted)
        value = value[part]
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", default=str(REPO_ROOT / "results"),
        help="directory holding the fresh BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--baselines", default=str(REPO_ROOT / "results" / "baselines.json"),
        help="committed baseline file",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="skip benches whose artifact file is absent instead of failing",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="gate only the named bench(es); repeatable",
    )
    args = parser.parse_args(argv)

    results_dir = pathlib.Path(args.results_dir)
    config = json.loads(pathlib.Path(args.baselines).read_text())
    tolerance = float(config.get("tolerance", 0.30))

    benches = config["benches"]
    if args.only:
        unknown = sorted(set(args.only) - set(benches))
        if unknown:
            print(f"unknown bench name(s): {', '.join(unknown)}")
            return 2
        benches = {name: benches[name] for name in args.only}

    rows = []
    failures = []
    for name, spec in sorted(benches.items()):
        path = results_dir / spec["file"]
        baseline = float(spec["baseline"])
        # An entry may pin its own tolerance — the obs-overhead gate is a
        # hard ceiling (tracing may cost at most 5%), not a perf floor
        # that CI-runner variance should be allowed to erode.
        entry_tolerance = float(spec.get("tolerance", tolerance))
        floor = baseline * (1.0 - entry_tolerance)
        if not path.exists():
            if args.allow_missing:
                rows.append((name, "--", baseline, floor, "SKIP (missing)"))
                continue
            rows.append((name, "--", baseline, floor, "FAIL (missing file)"))
            failures.append(f"{name}: {path} missing")
            continue
        document = json.loads(path.read_text())
        gate_key = spec.get("skip_unless_key")
        if gate_key is not None and not document.get(gate_key):
            rows.append(
                (name, "--", baseline, floor, f"SKIP ({gate_key} falsy)")
            )
            continue
        try:
            measured = float(resolve_key(document, spec["key"]))
        except KeyError:
            rows.append((name, "--", baseline, floor, "FAIL (key missing)"))
            failures.append(f"{name}: key {spec['key']!r} not in {path.name}")
            continue
        if measured >= floor:
            rows.append((name, measured, baseline, floor, "ok"))
        else:
            rows.append((name, measured, baseline, floor, "FAIL"))
            failures.append(
                f"{name}: measured {measured:.2f}x is more than "
                f"{entry_tolerance:.0%} below the committed baseline "
                f"{baseline:.2f}x (floor {floor:.2f}x)"
            )

    print(f"== perf-trajectory gate (tolerance {tolerance:.0%}) ==")
    print(f"{'bench':<18} {'measured':>9} {'baseline':>9} {'floor':>7}  status")
    for name, measured, baseline, floor, status in rows:
        shown = f"{measured:.2f}x" if isinstance(measured, float) else measured
        print(
            f"{name:<18} {shown:>9} {baseline:>8.2f}x {floor:>6.2f}x  {status}"
        )
    if failures:
        print("\nperf regression(s) detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall benchmark speedups within tolerance of their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
