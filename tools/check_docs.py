#!/usr/bin/env python
"""CI gate for the documentation tree.

Two checks over every tracked Markdown file:

1. **Links** — every intra-repo link (``[text](path)`` and
   ``[text](path#anchor)``) must resolve to an existing file, and when
   it carries an anchor, to a heading in that file (GitHub slug rules).
   External links (``http(s)://``, ``mailto:``) are not fetched.
2. **Runnable snippets** — fenced code blocks whose info string is
   ``python runnable`` are executed with ``PYTHONPATH=src`` from the
   repo root; a non-zero exit fails the check.  Mark a snippet runnable
   only when it is self-contained and fast — it runs on every CI push.

Usage::

    python tools/check_docs.py            # check + run
    python tools/check_docs.py --no-run   # links only

Exit status is non-zero on any broken link or failing snippet.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
from typing import Iterator, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Directories that never hold documentation.
_SKIP_DIRS = {".git", ".ruff_cache", "__pycache__", ".pytest_cache",
              "node_modules", ".cutqc-store", "results"}

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE = re.compile(r"^(`{3,}|~{3,})\s*(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> List[pathlib.Path]:
    found = []
    for root, dirs, files in os.walk(REPO_ROOT):
        dirs[:] = [d for d in dirs if d not in _SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                found.append(pathlib.Path(root) / name)
    return sorted(found)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → '-'."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    slugs: set = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slug = github_slug(match.group(1))
            # GitHub de-duplicates repeats as slug-1, slug-2, ...
            if slug in slugs:
                suffix = 1
                while f"{slug}-{suffix}" in slugs:
                    suffix += 1
                slug = f"{slug}-{suffix}"
            slugs.add(slug)
    return slugs


def iter_links(path: pathlib.Path) -> Iterator[str]:
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(1)


def check_links(files: List[pathlib.Path]) -> List[str]:
    errors = []
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        for target in iter_links(path):
            if target.startswith(_EXTERNAL):
                continue
            # HTML-entity escapes used in tables (e.g. &lt;id&gt;)
            target = target.replace("&lt;", "<").replace("&gt;", ">")
            target, _, anchor = target.partition("#")
            if not target:  # same-file anchor
                if anchor and github_slug(anchor) not in heading_slugs(path):
                    errors.append(f"{rel}: broken anchor '#{anchor}'")
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link '{target}'")
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in heading_slugs(resolved):
                    errors.append(
                        f"{rel}: broken anchor '{target}#{anchor}'"
                    )
    return errors


def iter_runnable_snippets(
    path: pathlib.Path,
) -> Iterator[Tuple[int, str]]:
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        match = _FENCE.match(lines[index])
        if match and "runnable" in match.group(2).split():
            fence, info = match.group(1), match.group(2).split()
            if info[0] not in ("python", "py"):
                raise ValueError(
                    f"{path}: runnable fence with non-python info "
                    f"string {info!r}"
                )
            body = []
            index += 1
            while index < len(lines) and not lines[index].startswith(fence):
                body.append(lines[index])
                index += 1
            yield index, "\n".join(body) + "\n"
        index += 1


def run_snippets(files: List[pathlib.Path]) -> List[str]:
    errors = []
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        for line, code in iter_runnable_snippets(path):
            with tempfile.NamedTemporaryFile(
                "w", suffix=".py", delete=False
            ) as handle:
                handle.write(code)
                snippet = handle.name
            try:
                proc = subprocess.run(
                    [sys.executable, snippet],
                    cwd=REPO_ROOT,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=300,
                )
            finally:
                os.unlink(snippet)
            if proc.returncode != 0:
                tail = (proc.stderr or proc.stdout).strip().splitlines()
                detail = tail[-1] if tail else f"exit {proc.returncode}"
                errors.append(
                    f"{rel}: runnable snippet ending at line {line} "
                    f"failed: {detail}"
                )
            else:
                print(f"ok: {rel} snippet ending at line {line}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-run", action="store_true",
        help="check links only; skip executing runnable snippets",
    )
    args = parser.parse_args(argv)

    files = markdown_files()
    print(f"checking {len(files)} markdown files")
    errors = check_links(files)
    if not args.no_run:
        errors += run_snippets(files)

    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
