"""Tests for the partition cost model (paper Eqs. 4-14)."""

import pytest

from repro import QuantumCircuit, build_circuit_graph
from repro.cutting import evaluate_partition, objective_from_f


@pytest.fixture
def chain_graph():
    circuit = QuantumCircuit(4)
    circuit.cx(0, 1).cx(1, 2).cx(2, 3)
    return build_circuit_graph(circuit)


class TestEvaluatePartition:
    def test_alpha_counts_original_inputs(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 0, 1], 4)
        # Vertices: cx01 (w=2), cx12 (w=1), cx23 (w=1).
        assert cost.alpha == [3, 1]

    def test_rho_and_O_from_cut_edges(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 0, 1], 4)
        assert cost.num_cuts == 1
        assert cost.O == [1, 0]
        assert cost.rho == [0, 1]

    def test_f_and_d_derived(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 0, 1], 4)
        assert cost.f == [2, 2]  # alpha + rho - O
        assert cost.d == [3, 2]  # alpha + rho

    def test_feasible_partition(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 0, 1], 4, max_cuts=2)
        assert cost.feasible and cost.violation is None

    def test_capacity_violation(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 0, 1], 2)
        assert not cost.feasible
        assert "qubits" in cost.violation
        assert cost.objective == float("inf")

    def test_cut_budget_violation(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 1, 0], 4, max_cuts=1)
        assert not cost.feasible
        assert "cuts" in cost.violation

    def test_subcircuit_budget_violation(self, chain_graph):
        cost = evaluate_partition(
            chain_graph, [0, 1, 2], 4, max_subcircuits=2
        )
        assert not cost.feasible

    def test_empty_cluster_detected(self, chain_graph):
        cost = evaluate_partition(chain_graph, [0, 0, 2], 4)
        assert not cost.feasible
        assert "empty" in cost.violation

    def test_assignment_length_checked(self, chain_graph):
        with pytest.raises(ValueError):
            evaluate_partition(chain_graph, [0, 1], 4)

    def test_matches_cutter_metadata(self, fig4_circuit):
        from repro import cut_circuit

        graph = build_circuit_graph(fig4_circuit)
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        cost = evaluate_partition(graph, cut.assignment, 3)
        for sub in cut.subcircuits:
            assert cost.d[sub.index] == sub.width
            assert cost.f[sub.index] == sub.num_effective
            assert cost.rho[sub.index] == len(sub.init_lines)
            assert cost.O[sub.index] == len(sub.meas_lines)


class TestObjective:
    def test_single_cluster_costs_nothing(self):
        assert objective_from_f(0, [5]) == 0.0

    def test_two_cluster_value(self):
        # L = 4^K * 2^{f1} * 2^{f2} for two clusters.
        assert objective_from_f(1, [2, 3]) == 4 * (4 * 8)

    def test_three_cluster_prefix_sum(self):
        # sorted f = [1, 2, 3]: 4^K * (2*4 + 2*4*8).
        assert objective_from_f(2, [3, 1, 2]) == 16 * (8 + 64)

    def test_uses_greedy_ascending_order(self):
        # Order independence of the input listing.
        assert objective_from_f(2, [3, 1, 2]) == objective_from_f(2, [1, 2, 3])

    def test_more_cuts_cost_exponentially_more(self):
        assert objective_from_f(3, [2, 2]) == 4 * objective_from_f(2, [2, 2])

    def test_empty_or_single_f(self):
        assert objective_from_f(0, []) == 0.0
