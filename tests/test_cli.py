"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cut_arguments(self):
        args = build_parser().parse_args(
            ["cut", "--benchmark", "bv", "--qubits", "6", "--device-size", "5"]
        )
        assert args.command == "cut"
        assert args.benchmark == "bv"
        assert args.qubits == 6

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cut", "--benchmark", "shor", "--qubits", "6",
                 "--device-size", "5"]
            )

    def test_execution_flags(self):
        args = build_parser().parse_args(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--workers", "3",
             "--strategy", "tensor_network", "--pool", "bogota:2"]
        )
        assert args.workers == 3
        assert args.strategy == "tensor_network"
        assert args.pool == "bogota:2"
        dd_args = build_parser().parse_args(
            ["dd", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--workers", "2", "--strategy", "auto"]
        )
        assert dd_args.workers == 2
        assert dd_args.strategy == "auto"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "bv", "--qubits", "6",
                 "--device-size", "5", "--strategy", "magic"]
            )


class TestCommands:
    def test_cut_prints_plan(self, capsys):
        code = main(
            ["cut", "--benchmark", "bv", "--qubits", "6", "--device-size", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "subcircuits" in out
        assert "cut positions" in out

    def test_run_prints_top_states(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--top", "3", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "|111111>" in out  # BV all-ones solution (incl. ancilla)
        assert "chi^2" in out

    def test_run_on_virtual_device(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--device", "bogota", "--shots", "1024"]
        )
        assert code == 0
        assert "top" in capsys.readouterr().out

    def test_run_device_smaller_than_budget_errors(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "8",
             "--device-size", "6", "--device", "bogota"]
        )
        assert code == 2
        assert "5 qubits" in capsys.readouterr().err

    def test_dd_locates_solution(self, capsys):
        code = main(
            ["dd", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--active", "2", "--recursions", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recursion 1" in out
        assert "|111111>" in out

    def test_devices_listing(self, capsys):
        code = main(["devices"])
        out = capsys.readouterr().out
        assert code == 0
        assert "virtual-bogota" in out
        assert "virtual-johannesburg" in out

    def test_infeasible_cut_exit_code(self, capsys):
        code = main(
            ["cut", "--benchmark", "grover", "--qubits", "5",
             "--device-size", "4", "--max-cuts", "2"]
        )
        assert code == 1
        assert "cut search failed" in capsys.readouterr().err

    def test_run_tensor_network_strategy(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--strategy", "tensor_network",
             "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FD query [tensor_network]" in out
        assert "|111111>" in out

    def test_run_reports_dedup(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "unique circuits" in out
        assert "dedup" in out

    def test_run_on_pool(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--pool", "bogota:2", "--shots", "2048"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "quantum makespan" in out

    def test_pool_and_device_conflict(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--pool", "bogota",
             "--device", "bogota"]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_dd_with_workers_and_strategy(self, capsys):
        code = main(
            ["dd", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--active", "2", "--recursions", "4",
             "--workers", "2", "--strategy", "auto"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "|111111>" in out

    def test_heuristic_method_flag(self, capsys):
        code = main(
            ["cut", "--benchmark", "bv", "--qubits", "10",
             "--device-size", "6", "--method", "heuristic"]
        )
        assert code == 0
        assert "heuristic" in capsys.readouterr().out


class TestStreamingRun:
    def test_stream_shards_prints_top_states(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--stream-shards", "2", "--top", "3",
             "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FD stream: 2^2 shards" in out
        assert "|111111>" in out
        assert "max |shard - truth| error" in out

    def test_stream_shards_out_of_range(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--stream-shards", "9"]
        )
        assert code == 2
        assert "--stream-shards" in capsys.readouterr().err

    def test_zoom_width_validated(self, capsys):
        code = main(
            ["dd", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--zoom-width", "0"]
        )
        assert code == 2
        assert "--zoom-width" in capsys.readouterr().err


class TestJsonOutput:
    def test_run_json(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--top", "2", "--verify", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "run"
        assert document["query"]["mode"] == "fd"
        assert document["execution"]["num_variants"] > 0
        assert document["top_states"][0]["state"] == "111111"
        assert document["verify_chi2"] == pytest.approx(0.0, abs=1e-9)

    def test_run_stream_json(self, capsys):
        code = main(
            ["run", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--stream-shards", "2", "--top", "2",
             "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["query"]["mode"] == "fd_stream"
        assert document["query"]["num_shards_emitted"] == 4
        assert document["query"]["peak_shard_bytes"] == (1 << 4) * 8
        assert document["top_states"][0]["state"] == "111111"

    def test_dd_json(self, capsys):
        code = main(
            ["dd", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--active", "2", "--recursions", "4",
             "--zoom-width", "2", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "dd"
        assert document["stats"]["zoom_width"] == 2
        assert document["stats"]["cache_hits"] + document["stats"][
            "cache_misses"
        ] > 0
        assert document["solution_states"][0]["state"] == "111111"
        assert len(document["recursions"]) >= 1

    def test_dd_human_output_reports_cache(self, capsys):
        code = main(
            ["dd", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--active", "2", "--recursions", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "collapse-cache hit rate" in out

    def test_cut_json(self, capsys):
        code = main(
            ["cut", "--benchmark", "bv", "--qubits", "6",
             "--device-size", "5", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "cut"
        assert document["num_subcircuits"] == len(document["subcircuits"])
        assert all(
            sub["width"] <= 5 for sub in document["subcircuits"]
        )
        assert document["cut_positions"]
        assert document["search_method"] in ("mip", "heuristic")
        assert document["objective"] >= 0.0

    def test_devices_json(self, capsys):
        code = main(["devices", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        presets = {entry["preset"]: entry for entry in document["presets"]}
        assert "bogota" in presets
        assert presets["bogota"]["num_qubits"] == 5
        assert presets["bogota"]["coupling_map"]
