"""Tests for the Feynman-path bipartition simulator (§6.4 baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit, simulate_probabilities
from repro.circuits import Gate
from repro.sim.feynman import FeynmanPathSimulator, gate_schmidt_terms
from repro.sim import simulate_statevector
from tests.conftest import random_connected_circuit


class TestSchmidtDecomposition:
    @pytest.mark.parametrize(
        "gate,rank",
        [
            (Gate("cx", (0, 1)), 2),
            (Gate("cz", (0, 1)), 2),
            (Gate("cp", (0, 1), (0.7,)), 2),
            (Gate("rzz", (0, 1), (0.9,)), 2),
            (Gate("swap", (0, 1)), 4),
        ],
    )
    def test_known_ranks(self, gate, rank):
        assert len(gate_schmidt_terms(gate)) == rank

    @pytest.mark.parametrize(
        "gate",
        [
            Gate("cx", (0, 1)),
            Gate("cz", (0, 1)),
            Gate("cp", (0, 1), (1.1,)),
            Gate("swap", (0, 1)),
            Gate("rzz", (0, 1), (0.4,)),
        ],
    )
    def test_terms_reconstruct_unitary(self, gate):
        total = np.zeros((4, 4), dtype=complex)
        for term in gate_schmidt_terms(gate):
            total += term.coefficient * np.kron(term.left, term.right)
        assert np.allclose(total, gate.matrix(), atol=1e-10)

    def test_single_qubit_gate_rejected(self):
        with pytest.raises(ValueError):
            gate_schmidt_terms(Gate("h", (0,)))


class TestFeynmanSimulator:
    def test_matches_statevector_on_bell(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sim = FeynmanPathSimulator()
        assert np.allclose(
            sim.probabilities(circuit), simulate_probabilities(circuit), atol=1e-10
        )

    def test_matches_on_ghz(self):
        circuit = QuantumCircuit(4).h(0)
        for q in range(3):
            circuit.cx(q, q + 1)
        sim = FeynmanPathSimulator()
        assert np.allclose(
            sim.probabilities(circuit), simulate_probabilities(circuit), atol=1e-10
        )

    def test_amplitudes_match_up_to_nothing(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).t(1).cz(1, 2).ry(0.4, 2)
        sim = FeynmanPathSimulator()
        expected = simulate_statevector(circuit).amplitudes()
        assert np.allclose(sim.amplitudes(circuit), expected, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_circuits_property(self, n, seed):
        circuit = random_connected_circuit(n, n + 3, seed)
        sim = FeynmanPathSimulator(max_paths=1 << 16)
        assert np.allclose(
            sim.probabilities(circuit),
            simulate_probabilities(circuit),
            atol=1e-8,
        )

    def test_custom_partition(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 2).cx(2, 1)
        sim = FeynmanPathSimulator(partition=[0, 1])
        assert np.allclose(
            sim.probabilities(circuit), simulate_probabilities(circuit), atol=1e-10
        )

    def test_path_count_exponential_in_crossings(self):
        circuit = QuantumCircuit(4)
        for _ in range(3):
            circuit.cx(1, 2)  # crosses the default [0,1] | [2,3] split
        sim = FeynmanPathSimulator()
        assert sim.num_paths(circuit) == 2**3
        assert len(sim.crossing_gates(circuit)) == 3

    def test_max_paths_guard(self):
        circuit = QuantumCircuit(2)
        for _ in range(12):
            circuit.cx(0, 1)
        sim = FeynmanPathSimulator(max_paths=1000)
        with pytest.raises(ValueError, match="Feynman paths"):
            sim.amplitudes(circuit)

    def test_partition_validation(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(ValueError):
            FeynmanPathSimulator(partition=[5]).probabilities(circuit)
        with pytest.raises(ValueError):
            FeynmanPathSimulator(partition=[0, 1]).probabilities(circuit)
