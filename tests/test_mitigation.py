"""Tests for measurement-error mitigation."""

import numpy as np
import pytest

from repro import CutQC, QuantumCircuit, make_device, simulate_probabilities
from repro.devices.mitigation import (
    MitigatedBackend,
    calibrate_confusion_matrix,
    mitigate_distribution,
)
from repro.library import bv, bv_solution
from repro.metrics import chi_square_loss
from repro.sim import NoiseModel
from repro.utils import bitstring_to_index


def _readout_only_device(flip=0.05, n=4, seed=0):
    return make_device(
        "ro-only", n, "line", noise=NoiseModel(readout=flip), seed=seed
    )


class TestCalibration:
    def test_confusion_columns_are_distributions(self):
        device = _readout_only_device()
        confusion = calibrate_confusion_matrix(device, 2, shots=2048, seed=1)
        assert confusion.shape == (4, 4)
        assert np.allclose(confusion.sum(axis=0), 1.0, atol=1e-9)

    def test_confusion_close_to_analytic(self):
        flip = 0.1
        device = _readout_only_device(flip=flip)
        confusion = calibrate_confusion_matrix(
            device, 1, shots=200_000, seed=2
        )
        expected = np.array([[1 - flip, flip], [flip, 1 - flip]])
        assert np.allclose(confusion, expected, atol=0.01)

    def test_width_limits(self):
        device = _readout_only_device(n=8)
        with pytest.raises(ValueError):
            calibrate_confusion_matrix(device, 7)
        with pytest.raises(ValueError):
            calibrate_confusion_matrix(_readout_only_device(n=2), 3)


class TestMitigateDistribution:
    def test_exact_inversion_recovers_truth(self):
        flip = 0.08
        confusion = np.array([[1 - flip, flip], [flip, 1 - flip]])
        truth = np.array([0.7, 0.3])
        observed = confusion @ truth
        assert np.allclose(
            mitigate_distribution(observed, confusion), truth, atol=1e-10
        )

    def test_clipping_keeps_simplex(self):
        confusion = np.eye(2)
        out = mitigate_distribution(np.array([1.2, -0.2]), confusion)
        assert np.all(out >= 0) and np.isclose(out.sum(), 1.0)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            mitigate_distribution(np.ones(2) / 2, np.eye(4))


class TestMitigatedBackend:
    def test_improves_chi2_on_readout_noise(self):
        device = _readout_only_device(flip=0.06, seed=3)
        circuit = QuantumCircuit(3).x(0).cx(0, 1).cx(1, 2)
        truth = simulate_probabilities(circuit)
        raw = device.run(circuit, shots=0, trajectories=4)
        mitigated = MitigatedBackend(
            device, shots=0, trajectories=4, calibration_shots=100_000, seed=4
        )(circuit)
        assert chi_square_loss(mitigated, truth) < chi_square_loss(raw, truth)

    def test_confusion_cache_per_width(self):
        device = _readout_only_device(seed=5)
        backend = MitigatedBackend(device, shots=0, trajectories=4, seed=6)
        backend(QuantumCircuit(2).h(0).cx(0, 1))
        backend(QuantumCircuit(2).x(0).cx(0, 1))
        backend(QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2))
        assert sorted(backend._confusions) == [2, 3]

    def test_cutqc_with_mitigated_backend(self):
        device = make_device(
            "noisy", 4, "line",
            noise=NoiseModel(error_1q=0.0005, error_2q=0.004, readout=0.04),
            seed=7,
        )
        circuit = bv(6)
        truth = simulate_probabilities(circuit)
        solution = bitstring_to_index(bv_solution(6))

        plain = CutQC(
            circuit, 4, backend=device.backend(shots=8192, trajectories=12)
        )
        plain_probs = np.clip(plain.fd_query().probabilities, 0, None)

        mitigated = CutQC(
            circuit,
            4,
            backend=MitigatedBackend(
                device, shots=8192, trajectories=12,
                calibration_shots=32768, seed=8,
            ),
        )
        mitigated_probs = np.clip(mitigated.fd_query().probabilities, 0, None)
        mitigated_probs /= mitigated_probs.sum()
        plain_probs /= plain_probs.sum()

        assert chi_square_loss(mitigated_probs, truth) < chi_square_loss(
            plain_probs, truth
        )
        assert int(np.argmax(mitigated_probs)) == solution
