"""Tests for terminal visualization helpers."""

import numpy as np
import pytest

from repro import CutQC, cut_circuit
from repro.library import bv
from repro.viz import compare_histograms, cut_diagram, dd_trace, histogram


class TestHistogram:
    def test_orders_by_probability(self):
        probs = np.array([0.1, 0.6, 0.3, 0.0])
        art = histogram(probs, top=3)
        lines = art.splitlines()
        assert lines[0].startswith("|01>")
        assert lines[1].startswith("|10>")
        assert lines[2].startswith("|00>")

    def test_threshold_hides_tiny(self):
        probs = np.array([1.0, 1e-9, 0.0, 0.0])
        art = histogram(probs, top=4)
        assert len(art.splitlines()) == 1

    def test_all_below_threshold(self):
        art = histogram(np.zeros(4), top=2)
        assert "below threshold" in art

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            histogram(np.ones(3) / 3)

    def test_bar_scales_with_probability(self):
        probs = np.array([0.8, 0.2, 0.0, 0.0])
        lines = histogram(probs, top=2, width=20).splitlines()
        assert lines[0].count("#") > lines[1].count("#")


class TestCompareHistograms:
    def test_rows_cover_reference_top(self):
        a = np.array([0.5, 0.5, 0.0, 0.0])
        b = np.array([0.0, 0.9, 0.1, 0.0])
        art = compare_histograms(a, b, top=2, labels=("x", "y"))
        assert "|01>" in art and "|10>" in art
        assert "x" in art.splitlines()[0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_histograms(np.ones(2) / 2, np.ones(4) / 4)


class TestCutDiagram:
    def test_marks_cut_on_correct_wire(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        art = cut_diagram(cut)
        lines = {line.split()[0]: line for line in art.splitlines()[:-1]}
        assert "X" in lines["q2"]
        assert "X" not in lines["q0"]
        assert "2 subcircuits, 1 cut(s)" in art

    def test_every_wire_present(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        art = cut_diagram(cut)
        for wire in range(5):
            assert f"q{wire}" in art


class TestDDTrace:
    def test_trace_lines(self):
        pipeline = CutQC(bv(4), max_subcircuit_qubits=3)
        query = pipeline.dd_query(max_active_qubits=1, max_recursions=3)
        art = dd_trace(query)
        assert len(art.splitlines()) == 3
        assert art.splitlines()[0].startswith("rec  1: ????")

    def test_max_rows(self):
        pipeline = CutQC(bv(4), max_subcircuit_qubits=3)
        query = pipeline.dd_query(max_active_qubits=1, max_recursions=3)
        assert len(dd_trace(query, max_rows=2).splitlines()) == 2
