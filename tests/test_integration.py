"""Cross-module integration tests: the paper's claims, end to end."""

import numpy as np
import pytest

from repro import (
    CutQC,
    QuantumCircuit,
    bogota,
    find_cuts,
    johannesburg,
    make_device,
    simulate_probabilities,
)
from repro.library import adder, adder_solution, bv, bv_solution, supremacy
from repro.metrics import chi_square_loss, chi_square_reduction
from repro.postprocess import estimate_speedup
from repro.sim import NoiseModel
from repro.utils import bitstring_to_index


class TestContribution1_SizeExpansion:
    """Paper contribution 1: run circuits > 2x the device size."""

    def test_bv_11_on_5_qubit_budget(self):
        circuit = bv(11)
        pipeline = CutQC(circuit, max_subcircuit_qubits=5)
        cut = pipeline.cut()
        assert cut.max_subcircuit_width() <= 5
        result = pipeline.fd_query()
        solution = bitstring_to_index(bv_solution(11))
        assert np.isclose(result.probabilities[solution], 1.0, atol=1e-6)

    def test_adder_10_on_6_qubit_budget(self):
        circuit = adder(10, a_value=9, b_value=14)
        pipeline = CutQC(circuit, max_subcircuit_qubits=6)
        result = pipeline.fd_query()
        expected = bitstring_to_index(adder_solution(10, a_value=9, b_value=14))
        assert np.isclose(result.probabilities[expected], 1.0, atol=1e-6)

    def test_supremacy_12_on_8_qubit_budget(self):
        circuit = supremacy(12, seed=1, depth=8)
        pipeline = CutQC(circuit, max_subcircuit_qubits=8)
        result = pipeline.fd_query(strategy="tensor_network")
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-7)
        # kron enumeration agrees (checked at full 4^K scale in benches).
        kron = pipeline.fd_query(strategy="kron", early_termination=True)
        assert np.allclose(kron.probabilities, truth, atol=1e-7)


class TestContribution2_FidelityImprovement:
    """Paper contribution 2 / Fig. 11: CutQC on a small device beats
    direct execution on a large noisy device."""

    @pytest.mark.slow
    def test_chi2_reduction_positive_for_bv(self):
        circuit = bv(6)
        truth = simulate_probabilities(circuit)

        large = johannesburg(seed=7)
        direct = large.run(circuit, shots=8192, trajectories=24)
        chi2_direct = chi_square_loss(direct, truth)

        small = bogota(seed=7)
        pipeline = CutQC(
            circuit,
            max_subcircuit_qubits=5,
            backend=small.backend(shots=8192, trajectories=24),
        )
        cutqc_probs = np.clip(pipeline.fd_query().probabilities, 0, None)
        chi2_cutqc = chi_square_loss(cutqc_probs, truth)

        reduction = chi_square_reduction(chi2_direct, chi2_cutqc)
        assert reduction > 0, (
            f"expected CutQC to beat direct execution: "
            f"direct={chi2_direct:.4f} cutqc={chi2_cutqc:.4f}"
        )


class TestContribution3_Speedup:
    """Paper contribution 3: modelled runtime speedup over classical
    simulation grows with circuit size (Fig. 6 trend)."""

    def test_speedup_model_positive_for_easy_cuts(self):
        circuit = bv(14)
        solution = find_cuts(circuit, 10)
        cut = solution.apply(circuit)
        assert estimate_speedup(cut) > 1.0

    def test_measured_postprocessing_faster_than_simulation(self):
        import time

        circuit = bv(14)
        pipeline = CutQC(circuit, max_subcircuit_qubits=10)
        pipeline.evaluate()  # exclude QPU-side work, like the paper

        began = time.perf_counter()
        pipeline.fd_query()
        postprocess_time = time.perf_counter() - began

        began = time.perf_counter()
        simulate_probabilities(circuit)
        simulation_time = time.perf_counter() - began
        # The cheap single-cut BV build must not be slower than 10x the
        # full simulation (it is usually far faster; generous bound keeps
        # the test robust on loaded machines).
        assert postprocess_time < max(10 * simulation_time, 5.0)


class TestShotBasedPipeline:
    def test_shot_noise_converges_with_more_shots(self, fig4_circuit):
        from repro.sim import ShotSampler

        truth = simulate_probabilities(fig4_circuit)
        losses = []
        for shots in (512, 65536):
            sampler = ShotSampler(shots=shots, seed=13)
            pipeline = CutQC(fig4_circuit, 3, backend=sampler.run)
            probs = np.clip(pipeline.fd_query().probabilities, 0, None)
            losses.append(chi_square_loss(probs, truth))
        assert losses[1] < losses[0]

    def test_negative_probabilities_possible_with_few_shots(self, fig4_circuit):
        """§3.2: under-sampled subcircuits may reconstruct negatives —
        the package must return them rather than silently clipping."""
        from repro.sim import ShotSampler

        sampler = ShotSampler(shots=32, seed=3)
        pipeline = CutQC(fig4_circuit, 3, backend=sampler.run)
        probs = pipeline.fd_query().probabilities
        assert np.isclose(probs.sum(), 1.0, atol=0.2)
        # not asserting a negative occurs (seed-dependent), only that the
        # vector is not artificially clipped to [0, 1]
        assert probs.dtype == np.float64


class TestDeviceEndToEnd:
    def test_cutqc_on_virtual_device_pipeline(self):
        device = make_device(
            "small", 4, "line",
            noise=NoiseModel(error_1q=0.0005, error_2q=0.005, readout=0.01),
            seed=21,
        )
        circuit = bv(6)
        pipeline = CutQC(circuit, 4, device=device)
        result = pipeline.fd_query()
        solution = bitstring_to_index(bv_solution(6))
        assert int(np.argmax(result.probabilities)) == solution
