"""Tests for the NISQ noise model and trajectory simulator."""

import numpy as np
import pytest

from repro import QuantumCircuit
from repro.sim import NoiseModel, NoisySimulator, apply_readout_error


class TestNoiseModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            NoiseModel(error_1q=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(error_2q=1.5)

    def test_is_noiseless(self):
        assert NoiseModel().is_noiseless
        assert not NoiseModel(readout=0.01).is_noiseless

    def test_scaled_clips_at_one(self):
        model = NoiseModel(error_1q=0.5, error_2q=0.6, readout=0.4)
        scaled = model.scaled(3.0)
        assert scaled.error_1q == 1.0
        assert scaled.error_2q == 1.0
        assert np.isclose(scaled.readout, 1.0)

    def test_scaled_proportional(self):
        scaled = NoiseModel(error_1q=0.01, error_2q=0.02, readout=0.03).scaled(2.0)
        assert np.isclose(scaled.error_1q, 0.02)
        assert np.isclose(scaled.error_2q, 0.04)


class TestReadoutError:
    def test_zero_flip_identity(self):
        probs = np.array([0.3, 0.7])
        assert np.allclose(apply_readout_error(probs, 0.0), probs)

    def test_single_qubit_analytic(self):
        out = apply_readout_error(np.array([1.0, 0.0]), 0.1)
        assert np.allclose(out, [0.9, 0.1])

    def test_two_qubit_analytic(self):
        out = apply_readout_error(np.array([1.0, 0.0, 0.0, 0.0]), 0.1)
        assert np.allclose(out, [0.81, 0.09, 0.09, 0.01])

    def test_preserves_total_probability(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(8))
        out = apply_readout_error(probs, 0.07)
        assert np.isclose(out.sum(), 1.0)

    def test_half_flip_is_uniform(self):
        out = apply_readout_error(np.array([1.0, 0.0, 0.0, 0.0]), 0.5)
        assert np.allclose(out, 0.25)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            apply_readout_error(np.ones(3) / 3, 0.1)


class TestNoisySimulator:
    def test_noiseless_matches_exact(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sim = NoisySimulator(NoiseModel(), shots=None, seed=0)
        assert np.allclose(sim.run(circuit), [0.5, 0, 0, 0.5])

    def test_trajectories_positive(self):
        with pytest.raises(ValueError):
            NoisySimulator(NoiseModel(), trajectories=0)

    def test_noise_reduces_solution_probability(self):
        # A deterministic circuit: noise must leak probability away.
        circuit = QuantumCircuit(3)
        circuit.x(0).cx(0, 1).cx(1, 2)
        noisy = NoisySimulator(
            NoiseModel(error_1q=0.01, error_2q=0.05, readout=0.02),
            trajectories=64,
            shots=None,
            seed=5,
        ).run(circuit)
        solution = 0b111
        assert noisy[solution] < 1.0
        assert noisy[solution] > 0.5  # but still dominant at these rates

    def test_more_gates_means_more_noise(self):
        def chain(reps):
            circuit = QuantumCircuit(2)
            circuit.x(0)
            for _ in range(reps):
                circuit.cx(0, 1).cx(0, 1)  # identity pairs
            return circuit

        noise = NoiseModel(error_2q=0.03)
        shallow = NoisySimulator(noise, trajectories=96, shots=None, seed=1).run(chain(1))
        deep = NoisySimulator(noise, trajectories=96, shots=None, seed=1).run(chain(10))
        assert deep[0b10] < shallow[0b10]

    def test_distribution_valid(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(1).cz(0, 1)
        out = NoisySimulator(
            NoiseModel(error_1q=0.02, error_2q=0.05, readout=0.05),
            trajectories=32,
            shots=None,
            seed=2,
        ).run(circuit)
        assert np.isclose(out.sum(), 1.0, atol=1e-9)
        assert np.all(out >= -1e-12)

    def test_shot_noise_applied(self):
        circuit = QuantumCircuit(1).h(0)
        out = NoisySimulator(NoiseModel(), shots=101, seed=3).run(circuit)
        # With 101 shots probabilities are multiples of 1/101.
        assert np.allclose(out * 101, np.round(out * 101))

    def test_clean_probability(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sim = NoisySimulator(NoiseModel(error_1q=0.1, error_2q=0.2), seed=0)
        expected = (1 - 0.1) * (1 - 0.2)
        assert np.isclose(sim._clean_probability(circuit), expected)

    def test_readout_only_noise(self):
        circuit = QuantumCircuit(1).x(0)
        out = NoisySimulator(
            NoiseModel(readout=0.2), trajectories=4, shots=None, seed=0
        ).run(circuit)
        assert np.allclose(out, [0.2, 0.8])
