"""Tests for the six benchmark circuit generators (paper §5.3)."""

import numpy as np
import pytest

from repro import QuantumCircuit, simulate_probabilities
from repro.library import (
    BENCHMARKS,
    adder,
    adder_register_width,
    adder_solution,
    aqft,
    bv,
    bv_solution,
    default_approximation_degree,
    get_benchmark,
    grid_shape,
    grover,
    grover_data_qubits,
    hwea,
    hwea_parameter_count,
    mcx_vchain,
    qft,
    supremacy,
    supremacy_grid,
    supremacy_valid_sizes,
    valid_sizes,
)
from repro.utils import bitstring_to_index


class TestSupremacy:
    def test_grid_shape_near_square(self):
        assert grid_shape(20) in [(4, 5)]
        assert grid_shape(16) == (4, 4)

    def test_grid_shape_rejects_primes_without_factorization(self):
        with pytest.raises(ValueError):
            grid_shape(13)

    def test_valid_sizes_window(self):
        sizes = supremacy_valid_sizes(4, 26)
        assert 20 in sizes and 16 in sizes
        assert 13 not in sizes

    def test_starts_with_hadamard_layer(self):
        circuit = supremacy_grid(2, 3, depth=8, seed=0)
        assert all(circuit[q].name == "h" for q in range(6))

    def test_fully_connected_at_default_depth(self):
        assert supremacy(8, seed=1).is_fully_connected()
        assert supremacy(12, seed=1).is_fully_connected()

    def test_deterministic_by_seed(self):
        assert supremacy(8, seed=5) == supremacy(8, seed=5)
        assert supremacy(8, seed=5) != supremacy(8, seed=6)

    def test_cz_layers_non_overlapping(self):
        circuit = supremacy_grid(3, 3, depth=16, seed=0)
        # Within the gates of one cycle, no qubit appears twice: check by
        # scanning cz gates between single-qubit barriers.
        busy = set()
        for gate in circuit:
            if gate.name == "cz":
                assert not busy.intersection(gate.qubits)
                busy.update(gate.qubits)
            else:
                busy = set()

    def test_first_random_1q_gate_is_t(self):
        circuit = supremacy_grid(2, 2, depth=10, seed=3)
        first_random = {}
        for gate in circuit:
            if gate.num_qubits == 1 and gate.name != "h":
                first_random.setdefault(gate.qubits[0], gate.name)
        assert set(first_random.values()) <= {"t"}

    def test_no_immediate_1q_repetition(self):
        circuit = supremacy_grid(2, 3, depth=24, seed=7)
        last = {}
        for gate in circuit:
            if gate.num_qubits == 1 and gate.name != "h":
                q = gate.qubits[0]
                assert last.get(q) != gate.name
                last[q] = gate.name

    def test_dense_output(self):
        probs = simulate_probabilities(supremacy(8, seed=2))
        assert np.count_nonzero(probs > 1e-9) > 100

    def test_depth_and_grid_validation(self):
        with pytest.raises(ValueError):
            supremacy_grid(1, 1)
        with pytest.raises(ValueError):
            supremacy_grid(2, 2, depth=0)


class TestAQFT:
    def test_qft_uniform_on_zero_state(self):
        probs = simulate_probabilities(qft(4))
        assert np.allclose(probs, 1 / 16)

    def test_qft_matches_dft_amplitudes(self):
        # QFT |x> = (1/sqrt(N)) sum_k exp(2 pi i x k / N) |k> with qubit 0
        # as the most significant bit of x and of k.
        from repro.sim import simulate_statevector

        n = 3
        x = 5
        circuit = QuantumCircuit(n)
        for bit in range(n):
            if (x >> (n - 1 - bit)) & 1:
                circuit.x(bit)
        circuit.compose(qft(n))
        amps = simulate_statevector(circuit).amplitudes()
        # Our QFT omits final swaps: output bit order is reversed.
        N = 1 << n
        expected_full = np.array(
            [np.exp(2j * np.pi * x * k / N) for k in range(N)]
        ) / np.sqrt(N)
        reversed_amps = np.zeros(N, dtype=complex)
        for k in range(N):
            rev = int(format(k, f"0{n}b")[::-1], 2)
            reversed_amps[rev] = expected_full[k]
        # Compare up to global phase.
        overlap = np.vdot(reversed_amps, amps)
        assert np.isclose(abs(overlap), 1.0, atol=1e-9)

    def test_default_degree_rule(self):
        assert default_approximation_degree(16) == 6  # log2(16) + 2
        assert default_approximation_degree(1) == 1

    def test_degree_limits_gate_count(self):
        full = qft(8).multiqubit_gate_count()
        approx = aqft(8, approximation_degree=2).multiqubit_gate_count()
        assert approx < full
        assert approx == 7  # only nearest-neighbour rotations survive

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            aqft(4, approximation_degree=0)
        with pytest.raises(ValueError):
            aqft(0)

    def test_aqft_close_to_qft_at_high_degree(self):
        a = simulate_probabilities(aqft(5, approximation_degree=5))
        b = simulate_probabilities(qft(5))
        assert np.allclose(a, b)


class TestBV:
    def test_default_solution_all_ones(self):
        n = 6
        probs = simulate_probabilities(bv(n))
        assert np.isclose(probs[bitstring_to_index(bv_solution(n))], 1.0)

    def test_custom_hidden_string(self):
        probs = simulate_probabilities(bv(5, [1, 0, 1, 1]))
        assert np.isclose(probs[bitstring_to_index("10111")], 1.0)

    def test_hidden_string_length_checked(self):
        with pytest.raises(ValueError):
            bv(4, [1, 1])

    def test_all_zero_string_rejected(self):
        with pytest.raises(ValueError):
            bv(4, [0, 0, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            bv(4, [1, 2, 0])

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            bv(1)

    def test_fully_connected_with_default_string(self):
        assert bv(8).is_fully_connected()

    def test_cx_count_matches_string_weight(self):
        circuit = bv(6, [1, 0, 1, 1, 0])
        assert circuit.count_ops()["cx"] == 3


class TestGrover:
    def test_odd_sizes_only(self):
        with pytest.raises(ValueError):
            grover(4)
        with pytest.raises(ValueError):
            grover(1)

    def test_data_qubit_rule(self):
        assert grover_data_qubits(3) == 3
        assert grover_data_qubits(5) == 4
        assert grover_data_qubits(9) == 6

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_amplifies_all_ones(self, n):
        data = grover_data_qubits(n)
        probs = simulate_probabilities(grover(n))
        top = int(np.argmax(probs))
        bits = format(top, f"0{n}b")
        assert bits[:data] == "1" * data
        assert bits[data:] == "0" * (n - data)  # ancillas restored
        assert probs[top] > 2.0 / (1 << data)  # better than uniform

    def test_two_iterations_amplify_more_when_warranted(self):
        # 5 data qubits: optimal iterations ~ 4, so 2 beats 1.
        n = 7
        one = simulate_probabilities(grover(n, iterations=1))
        two = simulate_probabilities(grover(n, iterations=2))
        assert two.max() > one.max()

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            grover(5, iterations=0)

    def test_fully_connected(self):
        assert grover(5).is_fully_connected()
        assert grover(7).is_fully_connected()

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_mcx_vchain_truth_table(self, k):
        # Flip iff all controls are 1; ancillas return to zero.
        num = k + 1 + (k - 2)
        for pattern in [0, 1, (1 << k) - 1, (1 << k) - 2]:
            circuit = QuantumCircuit(num)
            for bit in range(k):
                if (pattern >> (k - 1 - bit)) & 1:
                    circuit.x(bit)
            mcx_vchain(
                circuit, list(range(k)), k, list(range(k + 1, num))
            )
            probs = simulate_probabilities(circuit)
            flip = 1 if pattern == (1 << k) - 1 else 0
            expected = "".join(
                str((pattern >> (k - 1 - b)) & 1) for b in range(k)
            ) + str(flip) + "0" * (k - 2)
            assert np.isclose(probs[bitstring_to_index(expected)], 1.0)

    def test_mcx_vchain_needs_enough_ancillas(self):
        circuit = QuantumCircuit(6)
        with pytest.raises(ValueError):
            mcx_vchain(circuit, [0, 1, 2, 3], 4, [])


class TestAdder:
    def test_even_sizes_only(self):
        with pytest.raises(ValueError):
            adder(5)
        with pytest.raises(ValueError):
            adder(2)

    def test_register_width(self):
        assert adder_register_width(6) == 2
        assert adder_register_width(10) == 4

    @pytest.mark.parametrize("a", [0, 1, 2, 3])
    @pytest.mark.parametrize("b", [0, 1, 2, 3])
    def test_exhaustive_2bit_addition(self, a, b):
        circuit = adder(6, a_value=a, b_value=b)
        probs = simulate_probabilities(circuit)
        expected = adder_solution(6, a_value=a, b_value=b)
        assert np.isclose(probs[bitstring_to_index(expected)], 1.0)

    def test_3bit_addition_with_carry(self):
        circuit = adder(8, a_value=5, b_value=7)
        probs = simulate_probabilities(circuit)
        expected = adder_solution(8, a_value=5, b_value=7)
        assert np.isclose(probs[bitstring_to_index(expected)], 1.0)

    def test_register_values_validated(self):
        with pytest.raises(ValueError):
            adder(6, a_value=4, b_value=0)

    def test_seeded_random_values_deterministic(self):
        assert adder(6, seed=3) == adder(6, seed=3)

    def test_fully_connected(self):
        assert adder(8, seed=0).is_fully_connected()


class TestHWEA:
    def test_default_is_ghz(self):
        probs = simulate_probabilities(hwea(5))
        assert np.isclose(probs[0], 0.5, atol=1e-9)
        assert np.isclose(probs[-1], 0.5, atol=1e-9)

    def test_parameter_count(self):
        assert hwea_parameter_count(4, layers=2) == 24

    def test_explicit_parameters(self):
        n, layers = 3, 1
        params = [0.0] * hwea_parameter_count(n, layers)
        probs = simulate_probabilities(hwea(n, layers, parameters=params))
        assert np.isclose(probs[0], 1.0)  # all-zero rotations do nothing

    def test_parameter_length_checked(self):
        with pytest.raises(ValueError):
            hwea(3, parameters=[0.1, 0.2])

    def test_size_and_layers_validated(self):
        with pytest.raises(ValueError):
            hwea(1)
        with pytest.raises(ValueError):
            hwea(3, layers=0)

    def test_fully_connected(self):
        assert hwea(6).is_fully_connected()


class TestRegistry:
    def test_all_benchmarks_listed(self):
        assert set(BENCHMARKS) == {
            "supremacy",
            "aqft",
            "grover",
            "bv",
            "adder",
            "hwea",
            "qaoa",
        }

    def test_get_benchmark_dispatch(self):
        circuit = get_benchmark("bv", 5)
        assert isinstance(circuit, QuantumCircuit)
        assert circuit.num_qubits == 5

    def test_get_benchmark_kwargs_forwarded(self):
        circuit = get_benchmark("supremacy", 8, depth=8, seed=1)
        assert circuit == supremacy(8, depth=8, seed=1)

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            get_benchmark("shor", 8)

    def test_valid_sizes_constraints(self):
        assert valid_sizes("grover", 3, 10) == [3, 5, 7, 9]
        assert valid_sizes("adder", 3, 10) == [4, 6, 8, 10]
        assert 13 not in valid_sizes("supremacy", 12, 14)
        assert valid_sizes("bv", 4, 7, even_only=True) == [4, 6]

    def test_valid_sizes_unknown_name(self):
        with pytest.raises(ValueError):
            valid_sizes("bogus", 2, 4)

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_every_benchmark_is_fully_connected(self, name):
        size = valid_sizes(name, 4, 9)[0]
        kwargs = {"seed": 0} if name in ("supremacy", "adder") else {}
        assert get_benchmark(name, size, **kwargs).is_fully_connected()
