"""The persistent worker pool (:mod:`repro.postprocess.parallel`).

The headline property: every pool-dispatched query path — shard-parallel
streaming FD, merged top-k retention, and pooled DD zoom rounds —
*bit-matches* its serial counterpart (asserted both exactly and at the
1e-12 tolerance the spec names), because the workers run the identical
collapse/contract code over the identical tensors.  The pool must also
survive poisoned tasks without orphaning processes, and the job service
must surface its utilization statistics.
"""

import multiprocessing
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CutQC, cut_circuit_from_assignment, evaluate_subcircuit
from repro.circuits import build_circuit_graph
from repro.core import VariantExecutor
from repro.library import bv
from repro.postprocess import (
    ContractionEngine,
    PrecomputedTensorProvider,
    StreamingReconstructor,
    WorkerPool,
)
from repro.postprocess import parallel as parallel_module
from repro.postprocess.attribution import build_term_tensor
from repro.postprocess.dd import DynamicDefinitionQuery
from tests.conftest import random_connected_circuit


@pytest.fixture(scope="module")
def pool():
    """One warm two-worker pool shared by the whole module (cheap tasks)."""
    with WorkerPool(workers=2) as shared:
        yield shared


@pytest.fixture(scope="module")
def bv8_pieces():
    cut = CutQC(bv(8), max_subcircuit_qubits=5).cut()
    results = [evaluate_subcircuit(s) for s in cut.subcircuits]
    return cut, results


def _no_orphans(before):
    """All processes spawned since ``before`` have been reaped."""
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        extra = set(multiprocessing.active_children()) - before
        if not extra:
            return True
        time.sleep(0.05)
    return False


class TestWorkerPool:
    def test_workers_validation(self):
        with pytest.raises(ValueError, match="positive"):
            WorkerPool(workers=0)

    def test_lazy_start_and_close_idempotent(self):
        fresh = WorkerPool(workers=1)
        assert fresh.stats().started is False
        fresh.close()
        fresh.close()
        with pytest.raises(RuntimeError, match="closed"):
            fresh.contract_batch([])

    def test_contract_batch_matches_serial(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        order = list(range(len(tensors)))
        batch = [(tensors, order, cut.num_cuts)] * 3
        serial = ContractionEngine(strategy="kron").contract_batch(batch)
        pooled = pool.contract_batch(batch, strategy="kron")
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.vector, b.vector)
            assert a.num_skipped == b.num_skipped

    def test_contract_kron_matches_serial(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        order = list(range(len(tensors)))
        serial = ContractionEngine(strategy="kron").contract(
            tensors, order, cut.num_cuts
        )
        vector, skipped = pool.contract_kron(tensors, order, cut.num_cuts)
        assert skipped == serial.num_skipped
        np.testing.assert_allclose(vector, serial.vector, atol=1e-12)

    def test_shared_memory_transport_roundtrip(self, bv8_pieces, monkeypatch):
        """Force every tensor and result vector through shared memory."""
        monkeypatch.setattr(parallel_module, "_MIN_SHM_BYTES", 1)
        monkeypatch.setattr(parallel_module, "_MIN_SHM_RESULT_BYTES", 1)
        cut, results = bv8_pieces
        with WorkerPool(workers=2) as shm_pool:
            serial = StreamingReconstructor(cut, results=results)
            pooled = StreamingReconstructor(cut, results=results, pool=shm_pool)
            expected = np.concatenate(
                [s.probabilities for s in serial.shards(2)]
            )
            streamed = np.concatenate(
                [s.probabilities for s in pooled.shards(2)]
            )
            assert np.array_equal(streamed, expected)
            assert shm_pool.stats().bytes_published > 0
            # Per-call segments are freed; only the published tensors stay.
            handle = pooled._handle
            assert handle is not None
            assert shm_pool.stats().shm_segments == len(handle.segment_names)
        assert shm_pool.stats().shm_segments == 0

    def test_spawn_context_supported(self, bv8_pieces):
        """All task functions are module-level, so spawn children work."""
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        order = list(range(len(tensors)))
        with WorkerPool(workers=1, context="spawn") as spawned:
            serial = ContractionEngine(strategy="kron").contract(
                tensors, order, cut.num_cuts
            )
            [pooled] = spawned.contract_batch(
                [(tensors, order, cut.num_cuts)], strategy="kron"
            )
            assert np.array_equal(pooled.vector, serial.vector)

    def test_stats_accounting(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        order = list(range(len(tensors)))
        before = pool.stats()
        pool.contract_batch([(tensors, order, cut.num_cuts)] * 2)
        after = pool.stats()
        assert after.tasks_completed == before.tasks_completed + 2
        assert after.tasks_by_kind.get("contract", 0) >= 2
        assert after.busy_seconds >= before.busy_seconds
        assert after.wall_seconds > 0
        assert 0.0 <= after.utilization
        payload = after.as_dict()
        for key in (
            "workers",
            "tasks_completed",
            "busy_seconds",
            "utilization",
            "tasks_by_kind",
        ):
            assert key in payload


class TestPoisonedTasks:
    def test_pool_survives_poisoned_contract(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        bad_order = [99]  # out of range: the worker task raises
        with pytest.raises(Exception):
            pool.contract_batch([(tensors, bad_order, cut.num_cuts)])
        assert pool.stats().tasks_failed >= 1
        # The persistent workers are still alive and serve new work.
        order = list(range(len(tensors)))
        [ok] = pool.contract_batch([(tensors, order, cut.num_cuts)])
        assert ok.vector.size == 1 << 8

    def test_executor_poison_does_not_orphan(self, bv8_pieces):
        cut, _ = bv8_pieces
        before = set(multiprocessing.active_children())
        executor = VariantExecutor(backend=_poison_backend, workers=2)
        with pytest.raises(RuntimeError, match="poisoned"):
            executor.run(cut.subcircuits)
        assert _no_orphans(before)

    def test_engine_batch_poison_does_not_orphan(self, bv8_pieces):
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        engine = ContractionEngine(strategy="kron", workers=2)
        before = set(multiprocessing.active_children())
        with pytest.raises(Exception):
            engine.contract_batch([(tensors, [99], cut.num_cuts)] * 2)
        assert _no_orphans(before)


def _poison_backend(circuit):
    raise RuntimeError("poisoned task")


def _random_cut(num_qubits, seed):
    """A valid random cut of a random connected circuit (or None)."""
    circuit = random_connected_circuit(num_qubits, 2 * num_qubits, seed)
    graph = build_circuit_graph(circuit)
    rng = np.random.default_rng(seed + 1)
    for _ in range(20):
        assignment = rng.integers(0, 2, size=graph.num_vertices)
        if 0 < assignment.sum() < graph.num_vertices:
            cut = cut_circuit_from_assignment(circuit, list(assignment))
            if cut.num_cuts <= 5:
                return cut
    return None


class TestQueryPathParity:
    """Pool-dispatched query paths bit-match their serial counterparts."""

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fd_stream_bit_matches_serial(self, pool, seed):
        cut = _random_cut(6, seed)
        if cut is None:
            return
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        serial = StreamingReconstructor(cut, results=results)
        pooled = StreamingReconstructor(cut, results=results, pool=pool)
        expected = np.concatenate(
            [s.probabilities for s in serial.shards(2)]
        )
        streamed = np.concatenate(
            [s.probabilities for s in pooled.shards(2)]
        )
        assert pooled.last_stats.transport == "pool"
        assert np.array_equal(streamed, expected)
        np.testing.assert_allclose(streamed, expected, atol=1e-12)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dd_query_bit_matches_serial(self, pool, seed):
        cut = _random_cut(6, seed)
        if cut is None:
            return
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]

        def query(with_pool):
            provider = PrecomputedTensorProvider(cut, results=results)
            dd = DynamicDefinitionQuery(
                provider,
                max_active_qubits=2,
                zoom_width=2,
                pool=pool if with_pool else None,
            )
            dd.run(4)
            return dd

        serial = query(False)
        pooled = query(True)
        assert pooled.engine.pool is pool
        assert len(serial.recursions) == len(pooled.recursions)
        for a, b in zip(serial.recursions, pooled.recursions):
            assert a.fixed == b.fixed and a.active == b.active
            # Batched zoom rounds are bit-identical; a single-bin round
            # may dispatch through the pool's range-split kron sweep,
            # whose reduction-tree summation order differs from the
            # serial chunk order — hence the spec's 1e-12 tolerance.
            np.testing.assert_allclose(
                a.probabilities, b.probabilities, atol=1e-12, rtol=0
            )

    def test_top_k_merged_across_workers(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        serial = StreamingReconstructor(cut, results=results)
        pooled = StreamingReconstructor(cut, results=results, pool=pool)
        expected = serial.top_k(3, 5)
        merged = pooled.top_k(3, 5)
        assert pooled.last_stats.transport == "pool"
        assert pooled.last_stats.num_shards_emitted == 8
        assert merged == expected

    def test_shard_subset_and_order_preserved(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        pooled = StreamingReconstructor(cut, results=results, pool=pool)
        indices = [3, 0, 2]
        shards = list(pooled.shards(2, shard_indices=indices))
        assert [s.index for s in shards] == indices

    def test_bad_shard_index_rejected(self, pool, bv8_pieces):
        cut, results = bv8_pieces
        pooled = StreamingReconstructor(cut, results=results, pool=pool)
        with pytest.raises(ValueError, match="out of range"):
            list(pooled.shards(2, shard_indices=[4]))

    def test_cutqc_worker_pool_end_to_end(self, pool):
        # sim_batch=0: pins the per-variant worker-pool transport mode.
        serial = CutQC(bv(7), max_subcircuit_qubits=5, sim_batch=0)
        pooled = CutQC(
            bv(7), max_subcircuit_qubits=5, worker_pool=pool, sim_batch=0
        )
        assert np.allclose(
            pooled.fd_query().probabilities,
            serial.fd_query().probabilities,
            atol=1e-12,
        )
        assert pooled.execution_report.mode == "worker-pool"
        assert pooled.fd_top_k(2, 3) == serial.fd_top_k(2, 3)
        assert pooled.parallel_stats is not None
        assert pooled.parallel_stats.tasks_completed > 0
        assert serial.parallel_stats is None


class TestSegmentLifecycle:
    """Shared-memory segments must not outlive their queries."""

    def test_abandoned_shard_stream_frees_segments(self, bv8_pieces, monkeypatch):
        monkeypatch.setattr(parallel_module, "_MIN_SHM_BYTES", 1)
        monkeypatch.setattr(parallel_module, "_MIN_SHM_RESULT_BYTES", 1)
        cut, results = bv8_pieces
        with WorkerPool(workers=2) as shm_pool:
            streamer = StreamingReconstructor(cut, results=results, pool=shm_pool)
            stream = streamer.shards(3)
            next(stream)  # consume one shard of eight, then walk away
            stream.close()
            handle = streamer._handle
            # Only the published tensors remain; every worker-created
            # result segment of the in-flight remainder was reaped.
            assert shm_pool.stats().shm_segments == len(handle.segment_names)
            streamer.close()
            assert streamer._handle is None
            assert shm_pool.stats().shm_segments == 0

    def test_publish_cap_evicts_oldest(self, bv8_pieces, monkeypatch):
        monkeypatch.setattr(parallel_module, "_MIN_SHM_BYTES", 1)
        cut, results = bv8_pieces
        tensors = [build_term_tensor(r) for r in results]
        with WorkerPool(workers=1, max_published=2) as capped:
            handles = [capped.publish(cut, tensors) for _ in range(3)]
            assert capped.stats().shm_segments == 2 * len(tensors)
            # The oldest publication's segments are gone; the newest live.
            assert handles[0].handle_id not in capped._published
            assert handles[2].handle_id in capped._published

    def test_unpicklable_backend_falls_back_to_serial(self, bv8_pieces, pool):
        cut, _ = bv8_pieces
        executor = VariantExecutor(
            backend=lambda circuit: np.ones(3), worker_pool=pool
        )
        # A lambda cannot cross the process boundary: the probe routes
        # the batch to the serial path (which then raises on the bogus
        # return value) instead of surfacing a pickling error.
        with pytest.raises(ValueError, match="size"):
            executor.run(cut.subcircuits)
