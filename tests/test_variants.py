"""Tests for subcircuit variant generation and evaluation."""

import numpy as np
import pytest

from repro import QuantumCircuit, cut_circuit, evaluate_subcircuit
from repro.cutting import (
    generate_variants,
    num_physical_variants,
    variant_circuit,
)
from repro.cutting.variants import SubcircuitVariant
from repro.sim import simulate_probabilities


@pytest.fixture
def fig4_cut(fig4_circuit):
    return cut_circuit(fig4_circuit, [(2, 1)])


class TestVariantEnumeration:
    def test_counts_match_3O_4rho(self, fig4_cut):
        up, down = fig4_cut.subcircuits
        assert num_physical_variants(up) == 3  # one measurement line
        assert num_physical_variants(down) == 4  # one init line
        assert len(generate_variants(up)) == 3
        assert len(generate_variants(down)) == 4

    def test_variant_shapes(self, fig4_cut):
        up, down = fig4_cut.subcircuits
        for variant in generate_variants(up):
            assert len(variant.bases) == 1 and len(variant.inits) == 0
        for variant in generate_variants(down):
            assert len(variant.inits) == 1 and len(variant.bases) == 0

    def test_multi_cut_counts(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 2).cx(0, 1)
        cut = cut_circuit(circuit, [(0, 1), (0, 2)])
        counts = sorted(num_physical_variants(s) for s in cut.subcircuits)
        # One subcircuit has 1 meas + 1 init (3*4=12); the other has the
        # complementary pair (4*3=12).
        assert counts == [12, 12]

    def test_deterministic_order(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        assert generate_variants(up) == generate_variants(up)


class TestVariantCircuits:
    def test_measurement_basis_rotations(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        base_len = len(up.circuit)
        z = variant_circuit(up, SubcircuitVariant((), ("Z",)))
        x = variant_circuit(up, SubcircuitVariant((), ("X",)))
        y = variant_circuit(up, SubcircuitVariant((), ("Y",)))
        assert len(z) == base_len
        assert len(x) == base_len + 1 and x[-1].name == "h"
        assert len(y) == base_len + 2
        assert [g.name for g in y.gates[-2:]] == ["sdg", "h"]

    def test_initialization_preps(self, fig4_cut):
        down = fig4_cut.subcircuits[1]
        base_len = len(down.circuit)
        zero = variant_circuit(down, SubcircuitVariant(("zero",), ()))
        one = variant_circuit(down, SubcircuitVariant(("one",), ()))
        plus = variant_circuit(down, SubcircuitVariant(("plus",), ()))
        plus_i = variant_circuit(down, SubcircuitVariant(("plus_i",), ()))
        assert len(zero) == base_len
        assert one[0].name == "x"
        assert plus[0].name == "h"
        assert [g.name for g in plus_i.gates[:2]] == ["h", "s"]

    def test_prep_targets_init_line(self, fig4_cut):
        down = fig4_cut.subcircuits[1]
        line = down.init_lines[0].line
        one = variant_circuit(down, SubcircuitVariant(("one",), ()))
        assert one[0].qubits == (line,)

    def test_wrong_variant_shape_rejected(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        with pytest.raises(ValueError):
            variant_circuit(up, SubcircuitVariant(("zero",), ("Z",)))
        with pytest.raises(ValueError):
            variant_circuit(up, SubcircuitVariant((), ()))


class TestEvaluation:
    def test_default_backend_is_statevector(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        result = evaluate_subcircuit(up)
        for variant in generate_variants(up):
            expected = simulate_probabilities(variant_circuit(up, variant))
            assert np.allclose(
                result.vector(variant.inits, variant.bases), expected
            )

    def test_result_vectors_are_distributions(self, fig4_cut):
        for sub in fig4_cut.subcircuits:
            result = evaluate_subcircuit(sub)
            for vector in result.probabilities.values():
                assert np.isclose(vector.sum(), 1.0)
                assert np.all(vector >= -1e-12)

    def test_custom_backend_used(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        calls = []

        def backend(circuit):
            calls.append(circuit)
            return np.full(1 << circuit.num_qubits, 1.0 / (1 << circuit.num_qubits))

        result = evaluate_subcircuit(up, backend)
        assert len(calls) == num_physical_variants(up)
        for vector in result.probabilities.values():
            assert np.allclose(vector, 1.0 / (1 << up.width))

    def test_backend_size_mismatch_detected(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        with pytest.raises(ValueError):
            evaluate_subcircuit(up, lambda c: np.ones(2))
