"""Tests for output-quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    chi_square_loss,
    chi_square_reduction,
    fidelity,
    hellinger_fidelity,
    total_variation_distance,
)


def _random_dist(seed, n=8):
    return np.random.default_rng(seed).dirichlet(np.ones(n))


class TestChiSquare:
    def test_identical_distributions_zero(self):
        p = _random_dist(0)
        assert chi_square_loss(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        # (1-0)^2/1 + (0-1)^2/1 = 2
        assert chi_square_loss(a, b) == pytest.approx(2.0)

    def test_zero_zero_terms_dropped(self):
        a = np.array([0.5, 0.5, 0.0])
        b = np.array([0.5, 0.5, 0.0])
        assert chi_square_loss(a, b) == 0.0

    def test_symmetry(self):
        a, b = _random_dist(1), _random_dist(2)
        assert chi_square_loss(a, b) == pytest.approx(chi_square_loss(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi_square_loss(np.zeros(2), np.zeros(4))

    @settings(max_examples=30)
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_nonnegative_property(self, s1, s2):
        assert chi_square_loss(_random_dist(s1), _random_dist(s2)) >= 0.0

    @settings(max_examples=30)
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_bounded_by_two(self, s1, s2):
        # For distributions, chi^2 of Eq. 16 is at most 2.
        assert chi_square_loss(_random_dist(s1), _random_dist(s2)) <= 2.0 + 1e-12

    def test_noisier_is_larger(self):
        truth = np.array([1.0, 0.0, 0.0, 0.0])
        mild = np.array([0.9, 0.1, 0.0, 0.0])
        severe = np.array([0.4, 0.2, 0.2, 0.2])
        assert chi_square_loss(mild, truth) < chi_square_loss(severe, truth)


class TestChiSquareReduction:
    def test_positive_when_cutqc_better(self):
        assert chi_square_reduction(1.0, 0.5) == pytest.approx(50.0)

    def test_negative_when_cutqc_worse(self):
        assert chi_square_reduction(0.5, 1.0) == pytest.approx(-100.0)

    def test_requires_positive_direct(self):
        with pytest.raises(ValueError):
            chi_square_reduction(0.0, 0.5)


class TestFidelity:
    def test_reads_solution_probability(self):
        assert fidelity(np.array([0.1, 0.9]), 1) == pytest.approx(0.9)

    def test_index_range_checked(self):
        with pytest.raises(ValueError):
            fidelity(np.array([1.0]), 5)


class TestTotalVariation:
    def test_identical_zero(self):
        p = _random_dist(3)
        assert total_variation_distance(p, p) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    @settings(max_examples=30)
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_triangle_inequality(self, s1, s2):
        p, q, r = _random_dist(s1), _random_dist(s2), _random_dist(s1 + s2 + 1)
        assert total_variation_distance(p, r) <= (
            total_variation_distance(p, q) + total_variation_distance(q, r) + 1e-12
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.zeros(2), np.zeros(4))


class TestHellingerFidelity:
    def test_identical_is_one(self):
        p = _random_dist(4)
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert hellinger_fidelity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    @settings(max_examples=30)
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_in_unit_interval(self, s1, s2):
        value = hellinger_fidelity(_random_dist(s1), _random_dist(s2))
        assert -1e-12 <= value <= 1.0 + 1e-12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hellinger_fidelity(np.zeros(2), np.zeros(4))
