"""Tests for heuristic cut searchers (scan, KL, local search)."""

import pytest

from repro import QuantumCircuit, build_circuit_graph, supremacy
from repro.cutting import (
    CutSearchError,
    branch_and_bound_search,
    evaluate_partition,
    heuristic_search,
    local_search,
    scan_partition,
)
from repro.cutting.heuristics import kl_partition
from repro.library import bv
from tests.conftest import random_connected_circuit


def chain_graph(n=6):
    circuit = QuantumCircuit(n)
    for q in range(n - 1):
        circuit.cx(q, q + 1)
    return build_circuit_graph(circuit)


class TestScanPartition:
    def test_finds_feasible_chain_cut(self):
        graph = chain_graph(6)
        assignment, cost = scan_partition(graph, 4, max_subcircuits=3)
        assert assignment is not None
        assert cost.feasible
        assert all(d <= 4 for d in cost.d)

    def test_infeasible_returns_none(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        graph = build_circuit_graph(circuit)
        assignment, cost = scan_partition(graph, 2, max_subcircuits=2, max_cuts=1)
        assert assignment is None
        assert not cost.feasible

    def test_assignment_is_contiguous_blocks(self):
        graph = chain_graph(8)
        assignment, cost = scan_partition(graph, 5, max_subcircuits=3)
        assert assignment == sorted(assignment)


class TestKLPartition:
    def test_finds_spatial_cut_on_supremacy(self):
        circuit = supremacy(12, seed=0)
        graph = build_circuit_graph(circuit)
        assignment, cost = kl_partition(graph, 9, max_subcircuits=3)
        assert assignment is not None and cost.feasible
        assert all(d <= 9 for d in cost.d)

    def test_infeasible_returns_none_gracefully(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        graph = build_circuit_graph(circuit)
        assignment, cost = kl_partition(graph, 2, max_subcircuits=2, max_cuts=1)
        assert assignment is None and not cost.feasible


class TestLocalSearch:
    def test_never_worsens_seed(self):
        graph = chain_graph(7)
        seed_assignment, seed_cost = scan_partition(graph, 5, max_subcircuits=3)
        refined, refined_cost = local_search(
            graph, seed_assignment, 5, max_subcircuits=3
        )
        assert refined_cost.objective <= seed_cost.objective
        assert refined_cost.feasible

    def test_rejects_infeasible_seed(self):
        graph = chain_graph(6)
        with pytest.raises(ValueError):
            local_search(graph, [0] * graph.num_vertices, 3)

    def test_result_still_satisfies_constraints(self):
        graph = chain_graph(8)
        seed_assignment, _ = scan_partition(graph, 5, max_subcircuits=3)
        _, cost = local_search(graph, seed_assignment, 5, max_subcircuits=3)
        assert all(d <= 5 for d in cost.d)


class TestHeuristicSearch:
    def test_near_optimal_on_small_instances(self):
        """Heuristic objective within 16x of exact B&B (one extra cut)."""
        for seed in range(4):
            circuit = random_connected_circuit(4, 6, seed, with_1q=False)
            graph = build_circuit_graph(circuit)
            try:
                _, exact = branch_and_bound_search(graph, 3, 3, 10)
            except CutSearchError:
                continue
            try:
                _, approx = heuristic_search(graph, 3, max_subcircuits=3)
            except CutSearchError:
                continue
            assert approx.objective <= 16 * exact.objective

    def test_exact_on_simple_chain(self):
        graph = chain_graph(6)
        _, exact = branch_and_bound_search(graph, 4, 3, 10)
        _, approx = heuristic_search(graph, 4, max_subcircuits=3)
        assert approx.objective == pytest.approx(exact.objective)

    def test_raises_when_infeasible(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        graph = build_circuit_graph(circuit)
        with pytest.raises(CutSearchError):
            heuristic_search(graph, 2, max_subcircuits=2, max_cuts=1)

    def test_handles_large_bv(self):
        graph = build_circuit_graph(bv(20))
        assignment, cost = heuristic_search(graph, 12)
        assert cost.feasible
        assert all(d <= 12 for d in cost.d)

    def test_supremacy_spacetime_cut(self):
        circuit = supremacy(12, seed=0)
        graph = build_circuit_graph(circuit)
        assignment, cost = heuristic_search(graph, 8)
        assert cost.feasible
        assert cost.num_cuts <= 10
