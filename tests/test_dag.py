"""Tests for the multiqubit-gate cut graph."""

import pytest

from repro import QuantumCircuit, build_circuit_graph


class TestGraphConstruction:
    def test_fig4_structure(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        # Four cZ gates -> 4 vertices; edges: q1 (cz01-cz12), q2
        # (cz12-cz23), q3 (cz23-cz34) -> 3 edges.
        assert graph.num_vertices == 4
        assert graph.num_edges == 3
        wires = sorted(edge.wire for edge in graph.edges)
        assert wires == [1, 2, 3]

    def test_single_qubit_gates_ignored(self):
        a = QuantumCircuit(2).h(0).t(1).cx(0, 1).s(0)
        b = QuantumCircuit(2).cx(0, 1)
        ga, gb = build_circuit_graph(a), build_circuit_graph(b)
        assert ga.num_vertices == gb.num_vertices == 1
        assert ga.num_edges == gb.num_edges == 0

    def test_vertex_weights_count_first_touch(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        # cz(0,1) first touches q0 and q1 -> weight 2; cz(1,2) first
        # touches q2 -> weight 1; cz(2,3): q3 -> 1; cz(3,4): q4 -> 1.
        assert graph.vertex_weights == [2, 1, 1, 1]
        assert sum(graph.vertex_weights) == fig4_circuit.num_qubits

    def test_weights_sum_to_qubits_generically(self):
        circuit = QuantumCircuit(4).cx(0, 1).cx(2, 3).cx(1, 2).cx(0, 3)
        graph = build_circuit_graph(circuit)
        assert sum(graph.vertex_weights) == 4

    def test_parallel_wire_edges(self):
        # Two consecutive gates on the same pair create two edges.
        circuit = QuantumCircuit(2).cx(0, 1).cz(0, 1)
        graph = build_circuit_graph(circuit)
        assert graph.num_edges == 2
        assert {edge.wire for edge in graph.edges} == {0, 1}

    def test_edge_wire_index(self):
        circuit = QuantumCircuit(2).cx(0, 1).cz(0, 1).cx(0, 1)
        graph = build_circuit_graph(circuit)
        indices = sorted(
            (edge.wire, edge.wire_index) for edge in graph.edges
        )
        assert indices == [(0, 1), (0, 2), (1, 1), (1, 2)]

    def test_edge_for_cut_lookup(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        edge = graph.edge_for_cut(2, 1)
        assert edge.wire == 2
        with pytest.raises(KeyError):
            graph.edge_for_cut(2, 5)

    def test_disconnected_wire_rejected(self):
        circuit = QuantumCircuit(3).cx(0, 1).h(2)
        with pytest.raises(ValueError):
            build_circuit_graph(circuit)

    def test_to_networkx(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3

    def test_is_connected(self, fig4_circuit):
        assert build_circuit_graph(fig4_circuit).is_connected()

    def test_edges_point_forward_in_time(self):
        from tests.conftest import random_connected_circuit

        circuit = random_connected_circuit(5, 12, seed=4)
        graph = build_circuit_graph(circuit)
        for edge in graph.edges:
            assert edge.source < edge.target
