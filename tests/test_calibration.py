"""Tests for calibration data, noise-adaptive layout, calibrated devices."""

import networkx as nx
import numpy as np
import pytest

from repro import QuantumCircuit, make_device, simulate_probabilities
from repro.devices.calibration import (
    CalibratedDevice,
    Calibration,
    noise_adaptive_layout,
)
from repro.library import bv, bv_solution
from repro.sim import NoiseModel
from repro.utils import bitstring_to_index


def _line_device(n=6, seed=0, noise=None):
    return make_device(
        "cal-test", n, "line",
        noise=noise or NoiseModel(error_1q=0.001, error_2q=0.01, readout=0.02),
        seed=seed,
    )


class TestCalibration:
    def test_synthetic_covers_device(self):
        device = _line_device()
        calibration = Calibration.synthetic(device, seed=1)
        assert set(calibration.error_1q) == set(range(device.num_qubits))
        assert set(calibration.error_2q) == set(device.coupling_map)
        assert set(calibration.readout) == set(range(device.num_qubits))

    def test_synthetic_rates_spread_around_base(self):
        device = _line_device()
        calibration = Calibration.synthetic(device, spread=0.5, seed=2)
        rates = list(calibration.error_2q.values())
        assert min(rates) != max(rates)
        assert 0.001 < np.median(rates) < 0.1

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            Calibration(error_1q={0: 2.0}, error_2q={}, readout={})

    def test_edge_error_symmetric(self):
        calibration = Calibration(
            error_1q={0: 0.0, 1: 0.0},
            error_2q={(0, 1): 0.05},
            readout={0: 0.0, 1: 0.0},
        )
        assert calibration.edge_error(1, 0) == 0.05

    def test_describe(self):
        device = _line_device()
        text = Calibration.synthetic(device, seed=3).describe()
        assert "worst readout" in text


class TestNoiseAdaptiveLayout:
    def test_layout_connected_and_sized(self):
        device = make_device("grid", 12, "grid", rows=3, cols=4)
        calibration = Calibration.synthetic(device, seed=4)
        layout = noise_adaptive_layout(device, calibration, 5)
        assert len(layout) == 5 and len(set(layout)) == 5
        sub = device.coupling_graph().subgraph(layout)
        assert nx.is_connected(sub)

    def test_avoids_bad_region(self):
        # Make qubits 0-2 terrible and 3-5 pristine on a 6-line.
        device = _line_device(6)
        calibration = Calibration(
            error_1q={q: (0.05 if q < 3 else 0.0001) for q in range(6)},
            error_2q={
                e: (0.2 if min(e) < 3 else 0.001) for e in device.coupling_map
            },
            readout={q: (0.1 if q < 3 else 0.001) for q in range(6)},
        )
        layout = noise_adaptive_layout(device, calibration, 3)
        assert set(layout) == {3, 4, 5}

    def test_oversized_request_rejected(self):
        device = _line_device(4)
        calibration = Calibration.synthetic(device, seed=5)
        with pytest.raises(ValueError):
            noise_adaptive_layout(device, calibration, 9)


class TestCalibratedDevice:
    def test_from_device(self):
        base = _line_device()
        device = CalibratedDevice.from_device(base, seed=6)
        assert device.num_qubits == base.num_qubits
        assert device.calibration is not None

    def test_noiseless_calibration_exact(self):
        base = _line_device(noise=NoiseModel())
        device = CalibratedDevice.from_device(base, seed=7)
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        out = device.run(circuit, shots=0)
        assert np.allclose(out, simulate_probabilities(circuit), atol=1e-9)

    def test_noisy_run_valid_distribution(self):
        device = CalibratedDevice.from_device(_line_device(), seed=8)
        circuit = bv(4)
        out = device.run(circuit, shots=0, trajectories=16)
        assert np.isclose(out.sum(), 1.0, atol=1e-9)
        assert np.all(out >= -1e-12)

    def test_solution_still_dominates_at_mild_noise(self):
        device = CalibratedDevice.from_device(_line_device(), seed=9)
        circuit = bv(4)
        out = device.run(circuit, shots=4096, trajectories=16)
        assert int(np.argmax(out)) == bitstring_to_index(bv_solution(4))

    def test_calibrated_beats_uniformly_bad_layout(self):
        """Noise-adaptive layout on a lopsided calibration beats the
        topological layout that ignores it."""
        base = _line_device(6)
        lopsided = Calibration(
            error_1q={q: (0.02 if q < 3 else 0.0001) for q in range(6)},
            error_2q={
                e: (0.15 if min(e) < 3 else 0.002) for e in base.coupling_map
            },
            readout={q: (0.08 if q < 3 else 0.002) for q in range(6)},
        )
        device = CalibratedDevice.from_device(base, calibration=lopsided, seed=10)
        circuit = bv(3)
        adaptive = device.run(circuit, shots=0, trajectories=64)
        # Force the bad region via a manual transpile + uniform simulator
        # path: compare solution-state mass.
        solution = bitstring_to_index(bv_solution(3))
        from repro.devices.transpiler import transpile, compact_circuit

        bad = transpile(circuit, base, initial_layout=[0, 1, 2])
        compacted, kept = compact_circuit(bad.circuit, keep=bad.final_layout)
        wire_map = {i: p for i, p in enumerate(kept)}
        bad_dist = device._calibrated_distribution(compacted, wire_map, 64, 11)
        from repro.utils import marginalize

        keep = [kept.index(bad.final_layout[q]) for q in range(3)]
        bad_dist = marginalize(bad_dist, keep, compacted.num_qubits)
        assert adaptive[solution] > bad_dist[solution]
