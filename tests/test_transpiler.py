"""Tests for the transpiler substrate (lowering, layout, routing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit, make_device, simulate_probabilities
from repro.devices import (
    compact_circuit,
    decompose_to_native,
    select_layout,
    transpile,
)
from repro.devices.transpiler import NATIVE_1Q, NATIVE_2Q
from repro.sim import NoiseModel, simulate_statevector
from tests.conftest import random_connected_circuit


def _states_equal_up_to_phase(circuit_a, circuit_b):
    a = simulate_statevector(circuit_a).amplitudes()
    b = simulate_statevector(circuit_b).amplitudes()
    overlap = np.vdot(a, b)
    return np.isclose(abs(overlap), 1.0, atol=1e-9)


class TestNativeDecomposition:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.h(0),
            lambda c: c.y(0),
            lambda c: c.z(0),
            lambda c: c.s(0),
            lambda c: c.sdg(0),
            lambda c: c.t(0),
            lambda c: c.tdg(0),
            lambda c: c.sy(0),
            lambda c: c.rx(0.7, 0),
            lambda c: c.ry(1.1, 0),
            lambda c: c.p(0.4, 0),
            lambda c: c.u(0.3, 0.9, -0.4, 0),
            lambda c: c.cz(0, 1),
            lambda c: c.cp(0.8, 0, 1),
            lambda c: c.rzz(0.6, 0, 1),
            lambda c: c.swap(0, 1),
        ],
    )
    def test_each_gate_preserved_up_to_phase(self, builder):
        circuit = QuantumCircuit(2).h(0).h(1)
        builder(circuit)
        lowered = decompose_to_native(circuit)
        assert _states_equal_up_to_phase(circuit, lowered)

    def test_only_native_gates_remain(self):
        circuit = QuantumCircuit(3).h(0).cz(0, 1).swap(1, 2).t(2).u(1, 2, 3, 0)
        lowered = decompose_to_native(circuit)
        for gate in lowered:
            assert gate.name in NATIVE_1Q + NATIVE_2Q

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_circuit_distribution_preserved(self, n, seed):
        circuit = random_connected_circuit(n, 2 * n, seed)
        lowered = decompose_to_native(circuit)
        assert np.allclose(
            simulate_probabilities(circuit),
            simulate_probabilities(lowered),
            atol=1e-9,
        )


class TestLayout:
    def test_layout_size(self):
        device = make_device("d", 9, "grid", rows=3, cols=3)
        layout = select_layout(device, 4)
        assert len(layout) == 4
        assert len(set(layout)) == 4

    def test_layout_is_connected_subgraph(self):
        import networkx as nx

        device = make_device("d", 12, "grid", rows=3, cols=4)
        layout = select_layout(device, 6)
        sub = device.coupling_graph().subgraph(layout)
        assert nx.is_connected(sub)

    def test_oversized_request_rejected(self):
        device = make_device("d", 3, "line")
        with pytest.raises(ValueError):
            select_layout(device, 5)


class TestRouting:
    def test_all_2q_gates_on_coupled_pairs(self):
        device = make_device("d", 5, "line")
        circuit = QuantumCircuit(4).h(0).cx(0, 3).cx(1, 3).cz(0, 2)
        transpiled = transpile(circuit, device)
        for gate in transpiled.circuit:
            if gate.is_multiqubit:
                assert device.are_coupled(*gate.qubits)

    def test_routed_distribution_matches_original(self):
        device = make_device("d", 5, "line", noise=NoiseModel())
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 3).t(3).cx(1, 2).cz(0, 2).ry(0.7, 1)
        out = device.run(circuit, shots=0)
        assert np.allclose(out, simulate_probabilities(circuit), atol=1e-9)

    def test_final_layout_tracks_swaps(self):
        device = make_device("d", 4, "line")
        circuit = QuantumCircuit(3).cx(0, 2)
        transpiled = transpile(circuit, device)
        finals = transpiled.final_layout
        assert len(set(finals)) == 3

    def test_initial_layout_override(self):
        device = make_device("d", 4, "line")
        circuit = QuantumCircuit(2).cx(0, 1)
        transpiled = transpile(circuit, device, initial_layout=[3, 2])
        assert transpiled.initial_layout == [3, 2]

    def test_layout_length_checked(self):
        device = make_device("d", 4, "line")
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(2).cx(0, 1), device, initial_layout=[0])

    def test_routing_overhead_grows_with_distance(self):
        device = make_device("d", 8, "line")
        near = transpile(QuantumCircuit(8).cx(0, 1), device, initial_layout=list(range(8)))
        far = transpile(QuantumCircuit(8).cx(0, 7), device, initial_layout=list(range(8)))
        assert len(far.circuit) > len(near.circuit)


class TestCompaction:
    def test_idle_wires_dropped(self):
        circuit = QuantumCircuit(6).h(1).cx(1, 4)
        compacted, kept = compact_circuit(circuit)
        assert kept == [1, 4]
        assert compacted.num_qubits == 2

    def test_empty_circuit(self):
        compacted, kept = compact_circuit(QuantumCircuit(3))
        assert compacted.num_qubits == 1
        assert kept == [0]

    def test_gate_structure_preserved(self):
        circuit = QuantumCircuit(5).h(2).cx(2, 4).t(4)
        compacted, kept = compact_circuit(circuit)
        assert [g.name for g in compacted] == ["h", "cx", "t"]
