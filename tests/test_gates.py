"""Tests for gate definitions and unitaries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.gates import (
    PAULI_MATRICES,
    SINGLE_QUBIT_GATES,
    SUPPORTED_GATES,
    TWO_QUBIT_GATES,
    Gate,
    gate_matrix,
    is_supported_gate,
)

_FIXED_1Q = ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sy"]
_FIXED_2Q = ["cx", "cz", "swap"]


def _is_unitary(matrix: np.ndarray) -> bool:
    return np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]))


class TestGateMatrices:
    @pytest.mark.parametrize("name", _FIXED_1Q)
    def test_fixed_1q_unitary(self, name):
        assert _is_unitary(gate_matrix(name))

    @pytest.mark.parametrize("name", _FIXED_2Q)
    def test_fixed_2q_unitary(self, name):
        assert _is_unitary(gate_matrix(name))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    @pytest.mark.parametrize("theta", [0.0, 0.3, np.pi, -1.7])
    def test_parametric_1q_unitary(self, name, theta):
        assert _is_unitary(gate_matrix(name, (theta,)))

    @pytest.mark.parametrize("theta", [0.0, 0.5, np.pi])
    def test_parametric_2q_unitary(self, theta):
        assert _is_unitary(gate_matrix("cp", (theta,)))
        assert _is_unitary(gate_matrix("rzz", (theta,)))

    def test_u_gate_unitary(self):
        assert _is_unitary(gate_matrix("u", (0.3, 1.2, -0.5)))

    def test_hadamard_squares_to_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2))

    def test_sx_squares_to_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_sy_squares_to_y(self):
        sy = gate_matrix("sy")
        assert np.allclose(sy @ sy, gate_matrix("y"))

    def test_s_squares_to_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_squares_to_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_rz_matches_p_up_to_phase(self):
        theta = 0.77
        rz = gate_matrix("rz", (theta,))
        p = gate_matrix("p", (theta,))
        ratio = p @ np.linalg.inv(rz)
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2))

    def test_cx_action(self):
        cx = gate_matrix("cx")
        # |10> -> |11>: first qubit is the MSB (control).
        state = np.zeros(4)
        state[0b10] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[0b11])

    def test_cz_diagonal(self):
        assert np.allclose(gate_matrix("cz"), np.diag([1, 1, 1, -1]))

    def test_swap_action(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[0b01] = 1.0
        assert np.allclose(swap @ state, np.eye(4)[0b10])

    def test_cp_reduces_to_cz_at_pi(self):
        assert np.allclose(gate_matrix("cp", (np.pi,)), gate_matrix("cz"))

    def test_pauli_matrices_dict(self):
        for name, matrix in PAULI_MATRICES.items():
            assert _is_unitary(matrix)
        assert np.allclose(
            PAULI_MATRICES["X"] @ PAULI_MATRICES["Y"],
            1j * PAULI_MATRICES["Z"],
        )

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            gate_matrix("bogus")


class TestGateDataclass:
    def test_normalizes_name_case(self):
        assert Gate("H", (0,)).name == "h"

    def test_qubit_arity_validation(self):
        with pytest.raises(ValueError):
            Gate("h", (0, 1))
        with pytest.raises(ValueError):
            Gate("cx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_param_count_validation(self):
        with pytest.raises(ValueError):
            Gate("rx", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0,), (0.5,))
        with pytest.raises(ValueError):
            Gate("u", (0,), (0.1, 0.2))

    def test_unsupported_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate("ccx", (0, 1, 2))

    def test_is_multiqubit(self):
        assert Gate("cx", (0, 1)).is_multiqubit
        assert not Gate("h", (0,)).is_multiqubit

    def test_on_relabels_qubits(self):
        gate = Gate("cx", (0, 1)).on(3, 5)
        assert gate.qubits == (3, 5)

    def test_hashable(self):
        assert Gate("h", (0,)) in {Gate("h", (0,))}

    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("s", ()),
            ("sdg", ()),
            ("t", ()),
            ("tdg", ()),
            ("x", ()),
            ("sx", ()),
            ("sy", ()),
            ("cx", None),
            ("swap", None),
            ("rx", (0.7,)),
            ("rz", (-1.1,)),
            ("cp", (0.4,)),
            ("rzz", (0.9,)),
            ("u", (0.3, 0.8, -0.2)),
        ],
    )
    def test_dagger_inverts(self, name, params):
        qubits = (0,) if name in SINGLE_QUBIT_GATES else (0, 1)
        gate = Gate(name, qubits, params or ())
        product = gate.dagger().matrix() @ gate.matrix()
        # Inverse up to global phase.
        phase = product[0, 0]
        assert abs(abs(phase) - 1.0) < 1e-10
        assert np.allclose(product, phase * np.eye(product.shape[0]))

    @given(st.floats(min_value=-6.0, max_value=6.0))
    def test_rotation_dagger_property(self, theta):
        for name in ("rx", "ry", "rz"):
            gate = Gate(name, (0,), (theta,))
            assert np.allclose(
                gate.dagger().matrix() @ gate.matrix(), np.eye(2), atol=1e-9
            )


class TestGateRegistry:
    def test_supported_partition(self):
        assert SINGLE_QUBIT_GATES.isdisjoint(TWO_QUBIT_GATES)
        assert SUPPORTED_GATES == SINGLE_QUBIT_GATES | TWO_QUBIT_GATES

    def test_is_supported_gate(self):
        assert is_supported_gate("CX")
        assert not is_supported_gate("toffoli")
