"""Parity and determinism suite for batched noisy evaluation (PR 6).

Covers the tentpole's contract from three sides:

* the batched density path is the *same exact channel* as the serial
  :class:`~repro.sim.density.DensityMatrixSimulator`, per variant;
* the batched trajectory path matches an independent serial replay of
  the same keyed RNG streams to 1e-10, and is bit-identical under any
  chunking or worker count (the deterministic-seeding satellite);
* batching-by-default changes no query result, and the versioned
  evaluation fingerprints force old artifacts to recompute (the
  store-migration satellite).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CutQC, QuantumCircuit, cut_circuit, make_device
from repro.circuits import Gate
from repro.circuits.gates import gate_matrix
from repro.core.executor import (
    DEFAULT_SIM_BATCH,
    VariantExecutor,
    resolve_sim_batch,
)
from repro.cutting.variants import (
    INIT_LABELS,
    MEAS_BASES,
    NoisyEvalSpec,
    batched_noisy_variant_probabilities,
    evaluate_subcircuit,
    generate_variants,
    variant_circuit,
    _BASIS_GATES,
    _PREP_GATES,
)
from repro.library import get_benchmark
from repro.postprocess import WorkerPool
from repro.sim import (
    DensityMatrixSimulator,
    NoiseModel,
    clean_log_weight,
    fuse_gates,
    noisy_body_plan,
    sample_injection_pattern,
    spawn_rng,
)
from repro.sim.noise import apply_readout_error
from repro.sim.noisy_batch import PAULI_NAMES_1Q
from repro.sim.sampler import sample_distribution
from repro.sim.statevector import INITIAL_STATES, Statevector
from tests.conftest import random_connected_circuit
from tests.test_batch import random_small_cut


NOISE = NoiseModel(error_1q=0.002, error_2q=0.01, readout=0.01)


def bv(n):
    return get_benchmark("bv", n)


@pytest.fixture
def fig4_cut():
    circuit = QuantumCircuit(5)
    for qubit in range(5):
        circuit.h(qubit)
    circuit.cz(0, 1).cz(1, 2)
    circuit.t(2)
    circuit.cz(2, 3).cz(3, 4)
    return cut_circuit(circuit, [(2, 1)])


# ----------------------------------------------------------------------
# Density path: exact-channel parity with the serial simulator
# ----------------------------------------------------------------------

class TestDensityParity:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=0.05),
        st.floats(min_value=0.0, max_value=0.1),
    )
    def test_matches_serial_density_simulator(self, n, seed, e1, readout):
        circuit = random_connected_circuit(n, 2 * n, seed)
        cut = random_small_cut(circuit, seed + 1)
        if cut is None:
            return
        noise = NoiseModel(error_1q=e1, error_2q=2 * e1, readout=readout)
        spec = NoisyEvalSpec(noise=noise, method="density", shots=None)
        serial = DensityMatrixSimulator(noise=noise)
        for subcircuit in cut.subcircuits:
            batched, passes = batched_noisy_variant_probabilities(
                subcircuit, spec
            )
            assert passes == 1  # prep folding: one pass serves all inits
            variants = generate_variants(subcircuit)
            assert len(batched) == len(variants)
            for variant in variants:
                reference = serial.run(variant_circuit(subcircuit, variant))
                got = batched[(variant.inits, variant.bases)]
                assert np.abs(got - reference).max() <= 1e-10

    def test_prep_folding_saves_passes(self, fig4_cut):
        # rho = 1 downstream piece: all 4 init preps fold into the first
        # body block — the whole variant set costs one density pass.
        downstream = fig4_cut.subcircuits[1]
        spec = NoisyEvalSpec(noise=NOISE, method="density", shots=None)
        _, passes = batched_noisy_variant_probabilities(downstream, spec)
        assert passes == 1


# ----------------------------------------------------------------------
# Trajectory path: serial replay of the same keyed RNG streams
# ----------------------------------------------------------------------

def _serial_trajectory_replay(subcircuit, spec, variant):
    """Independent per-variant re-derivation of the batched estimator.

    Rebuilds one variant's distribution with plain serial
    :class:`Statevector` passes, drawing from the same
    :func:`~repro.sim.noise.spawn_rng` keys the batched engine uses —
    any drift in stream assignment or estimator mixing shows up as a
    mismatch far beyond accumulation error.
    """
    noise = spec.noise
    width = subcircuit.width
    body = subcircuit.circuit.gates
    plan = noisy_body_plan(body, noise, width, 2)
    clean_ops = fuse_gates(body, 2)
    init_positions = [line.line for line in subcircuit.init_lines]
    meas_positions = [line.line for line in subcircuit.meas_lines]
    index = subcircuit.index
    seed = spec.seed
    pauli = [gate_matrix(name) for name in PAULI_NAMES_1Q]

    labels_code = 0
    for label in variant.inits:
        labels_code = labels_code * len(INIT_LABELS) + INIT_LABELS.index(label)
    bases_code = 0
    for name in variant.bases:
        bases_code = bases_code * len(MEAS_BASES) + MEAS_BASES.index(name)

    prep_gates = [
        [Gate(spec_[0], (position,)) for spec_ in _PREP_GATES[label]]
        for label, position in zip(variant.inits, init_positions)
    ]
    basis_gates = [
        [Gate(spec_[0], (position,)) for spec_ in _BASIS_GATES[name]]
        for name, position in zip(variant.bases, meas_positions)
    ]

    def clean_pass():
        vectors = [INITIAL_STATES["zero"]] * width
        for gates, position in zip(prep_gates, init_positions):
            vector = INITIAL_STATES["zero"]
            for gate in gates:
                vector = gate.matrix() @ vector
            vectors[position] = vector
        state = Statevector.from_product(vectors)
        for op in clean_ops:
            state.apply_matrix(op.matrix, op.qubits)
        for gates in basis_gates:
            for gate in gates:
                state.apply_gate(gate)
        return state.probabilities()

    clean = clean_pass()
    if noise.error_1q == 0.0 and noise.error_2q == 0.0:
        mixed = clean
    else:
        sums = np.zeros_like(clean)
        count = 0
        for trajectory in range(spec.trajectories):
            pattern, injected = sample_injection_pattern(
                plan, spawn_rng(seed, 0, index, trajectory)
            )
            vectors = [INITIAL_STATES["zero"]] * width
            rng = spawn_rng(seed, 1, index, trajectory, labels_code)
            for gates, position in zip(prep_gates, init_positions):
                vector = INITIAL_STATES["zero"]
                for gate in gates:
                    vector = gate.matrix() @ vector
                    if rng.random() < noise.error_1q:
                        vector = pauli[rng.integers(3)] @ vector
                        injected = True
                vectors[position] = vector
            state = Statevector.from_product(vectors)
            site = 0
            for step in plan.steps:
                state.apply_matrix(step.matrix, step.qubits)
                if hasattr(step, "rate"):
                    choice = pattern[site]
                    site += 1
                    if choice is not None:
                        for name, qubit in zip(choice, step.qubits):
                            if name != "i":
                                state.apply_matrix(gate_matrix(name), [qubit])
            code = 0
            for line_index, (name, gates) in enumerate(
                zip(variant.bases, basis_gates)
            ):
                code = code * len(MEAS_BASES) + MEAS_BASES.index(name)
                if not gates:
                    continue
                rng = spawn_rng(seed, 2, index, trajectory, line_index, code)
                for gate in gates:
                    state.apply_gate(gate)
                    if rng.random() < noise.error_1q:
                        state.apply_matrix(pauli[rng.integers(3)], gate.qubits)
                        injected = True
            if injected:
                sums += state.probabilities()
                count += 1
        log_weight = plan.log_clean
        for gates in prep_gates:
            log_weight += clean_log_weight(gates, noise)
        for gates in basis_gates:
            log_weight += clean_log_weight(gates, noise)
        weight = float(np.exp(log_weight))
        if count:
            mixed = weight * clean + (1.0 - weight) * (sums / count)
        else:
            mixed = clean
    result = apply_readout_error(mixed, noise.readout)
    if spec.shots:
        result = sample_distribution(
            result,
            spec.shots,
            spawn_rng(seed, 3, index, labels_code, bases_code),
        )
    return result


class TestTrajectoryParity:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=3, max_value=4),
        st.integers(min_value=0, max_value=10**6),
        st.booleans(),
    )
    def test_matches_serial_replay(self, n, seed, with_shots):
        circuit = random_connected_circuit(n, 2 * n, seed)
        cut = random_small_cut(circuit, seed + 1)
        if cut is None:
            return
        spec = NoisyEvalSpec(
            noise=NOISE,
            method="trajectory",
            trajectories=6,
            shots=256 if with_shots else None,
            seed=seed % 97,
        )
        for subcircuit in cut.subcircuits:
            batched, _ = batched_noisy_variant_probabilities(subcircuit, spec)
            for variant in generate_variants(subcircuit):
                reference = _serial_trajectory_replay(subcircuit, spec, variant)
                got = batched[(variant.inits, variant.bases)]
                assert np.abs(got - reference).max() <= 1e-10

    def test_noiseless_trajectory_is_exact(self, fig4_cut):
        spec = NoisyEvalSpec(
            noise=NoiseModel(), method="trajectory", shots=None
        )
        for subcircuit in fig4_cut.subcircuits:
            batched, passes = batched_noisy_variant_probabilities(
                subcircuit, spec
            )
            assert passes == 1  # no gate noise: the clean pass suffices
            exact = evaluate_subcircuit(subcircuit, sim_batch=64)
            for key, vector in batched.items():
                assert np.abs(vector - exact.probabilities[key]).max() <= 1e-10

    def test_trajectory_converges_to_density(self, fig4_cut):
        downstream = fig4_cut.subcircuits[1]
        estimate, _ = batched_noisy_variant_probabilities(
            downstream,
            NoisyEvalSpec(
                noise=NOISE,
                method="trajectory",
                trajectories=4000,
                shots=None,
                seed=3,
            ),
        )
        exact, _ = batched_noisy_variant_probabilities(
            downstream,
            NoisyEvalSpec(noise=NOISE, method="density", shots=None),
        )
        for key in exact:
            assert np.abs(estimate[key] - exact[key]).max() <= 5e-3

    def test_chunking_is_bit_identical(self, fig4_cut):
        downstream = fig4_cut.subcircuits[1]
        spec = NoisyEvalSpec(
            noise=NOISE, method="trajectory", trajectories=8, shots=512, seed=7
        )
        whole, _ = batched_noisy_variant_probabilities(downstream, spec)
        chunked, _ = batched_noisy_variant_probabilities(
            downstream, spec, max_batch=1
        )
        assert set(whole) == set(chunked)
        for key in whole:
            assert np.array_equal(whole[key], chunked[key])


# ----------------------------------------------------------------------
# Deterministic seeding under parallelism
# ----------------------------------------------------------------------

class TestWorkerCountInvariance:
    def _device(self):
        return make_device("inv", 5, "line", noise=NOISE, seed=11)

    def test_one_vs_n_workers_bit_identical(self, fig4_cut):
        results = {}
        modes = {}
        for workers in (1, 2):
            executor = VariantExecutor(
                device=self._device(), workers=workers, sim_batch=1, seed=5
            )
            results[workers] = executor.run(fig4_cut.subcircuits)
            modes[workers] = executor.last_report.mode
        assert modes[1] == "batched-noisy"
        assert modes[2] == "batched-noisy-process"
        for a, b in zip(results[1], results[2]):
            assert a.probabilities.keys() == b.probabilities.keys()
            for key in a.probabilities:
                assert np.array_equal(
                    a.probabilities[key], b.probabilities[key]
                )

    def test_worker_pool_transport_bit_identical(self, fig4_cut):
        serial_exec = VariantExecutor(device=self._device(), sim_batch=1, seed=5)
        serial = serial_exec.run(fig4_cut.subcircuits)
        assert serial_exec.last_report.mode == "batched-noisy"
        with WorkerPool(workers=2) as pool:
            pooled_exec = VariantExecutor(
                device=self._device(), worker_pool=pool, sim_batch=1, seed=5
            )
            pooled = pooled_exec.run(fig4_cut.subcircuits)
            assert pooled_exec.last_report.mode == "batched-noisy-pool"
            stats = pool.stats()
            assert stats.tasks_by_kind.get("noisy-variant-batch", 0) >= 2
        for a, b in zip(serial, pooled):
            for key in a.probabilities:
                assert np.array_equal(
                    a.probabilities[key], b.probabilities[key]
                )


# ----------------------------------------------------------------------
# Batching by default: resolution rules and query parity
# ----------------------------------------------------------------------

class TestBatchingDefault:
    def test_resolution_rules(self):
        assert resolve_sim_batch(None) == DEFAULT_SIM_BATCH
        assert resolve_sim_batch(None, backend=lambda c: None) == 0
        assert resolve_sim_batch(0) == 0
        assert resolve_sim_batch(8) == 8
        with pytest.raises(ValueError, match="sim_batch"):
            resolve_sim_batch(-1)
        with pytest.raises(ValueError, match="mutually exclusive"):
            resolve_sim_batch(8, backend=lambda c: None)

    def test_default_flip_changes_no_fd_result(self):
        circuit = bv(6)
        default = CutQC(circuit, max_subcircuit_qubits=5)
        legacy = CutQC(circuit, max_subcircuit_qubits=5, sim_batch=0)
        fd_default = default.fd_query()
        fd_legacy = legacy.fd_query()
        assert default.execution_report.mode == "batched"
        assert default.execution_report.sim_batch == DEFAULT_SIM_BATCH
        assert legacy.execution_report.mode == "serial"
        assert (
            np.abs(fd_default.probabilities - fd_legacy.probabilities).max()
            <= 1e-10
        )
        top_default = default.fd_top_k(2, 3)
        top_legacy = legacy.fd_top_k(2, 3)
        # BV's distribution is one dominant state plus ~0 ties whose
        # ordering is float-noise; pin the winner and the values.
        assert top_default[0][0] == top_legacy[0][0]
        for (_, p), (_, q) in zip(top_default, top_legacy):
            assert abs(p - q) <= 1e-10

    def test_default_flip_changes_no_dd_result(self):
        circuit = bv(6)
        default = CutQC(circuit, max_subcircuit_qubits=5).dd_query(
            max_active_qubits=2
        )
        legacy = CutQC(circuit, max_subcircuit_qubits=5, sim_batch=0).dd_query(
            max_active_qubits=2
        )
        assert [state for state, _ in default.solution_states()] == [
            state for state, _ in legacy.solution_states()
        ]

    def test_device_defaults_to_batched_noisy(self):
        device = make_device("flip", 5, "line", noise=NOISE, seed=3)
        pipeline = CutQC(bv(6), max_subcircuit_qubits=5, device=device)
        pipeline.fd_query()
        assert pipeline.execution_report.mode == "batched-noisy"
        assert pipeline.execution_report.sim_batch == DEFAULT_SIM_BATCH

    def test_explicit_conflicts_still_rejected(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            CutQC(
                bv(6),
                max_subcircuit_qubits=5,
                backend=lambda c: None,
                sim_batch=8,
            )
        with pytest.raises(ValueError, match="not both"):
            CutQC(
                bv(6),
                max_subcircuit_qubits=5,
                backend=lambda c: None,
                device=make_device("x", 5, "line", noise=NOISE),
            )

    def test_noisy_spec_validation(self, fig4_cut):
        with pytest.raises(ValueError, match="method"):
            NoisyEvalSpec(noise=NOISE, method="unitary")
        with pytest.raises(ValueError, match="exactly one"):
            NoisyEvalSpec()
        with pytest.raises(ValueError, match="trajectories"):
            NoisyEvalSpec(noise=NOISE, trajectories=0)
        with pytest.raises(ValueError, match="sim_batch"):
            evaluate_subcircuit(
                fig4_cut.subcircuits[0],
                sim_batch=0,
                noisy=NoisyEvalSpec(noise=NOISE),
            )
        with pytest.raises(ValueError, match="backend"):
            evaluate_subcircuit(
                fig4_cut.subcircuits[0],
                backend=lambda c: None,
                sim_batch=16,
                noisy=NoisyEvalSpec(noise=NOISE),
            )


# ----------------------------------------------------------------------
# Store migration: versioned fingerprints force recomputation
# ----------------------------------------------------------------------

class TestStoreMigration:
    def test_backend_tags_are_versioned(self):
        from repro.service.scheduler import JobSpec

        base = dict(device_size=5, benchmark="bv", qubits=6)
        assert JobSpec(**base).backend_tag() == "statevector:batched:v2"
        assert JobSpec(**base, sim_batch=0).backend_tag() == "statevector"
        assert (
            JobSpec(**base, device="bogota").backend_tag()
            == "device:bogota:trajectory:batched:v1"
        )
        assert (
            JobSpec(
                **base, device="bogota", noisy_method="density"
            ).backend_tag()
            == "device:bogota:density:batched:v1"
        )
        assert (
            JobSpec(**base, device="bogota", sim_batch=0).backend_tag()
            == "device:bogota"
        )

    def test_fingerprint_config_and_version_fragment_keys(self):
        from repro.service.store import evaluation_fingerprint

        old = evaluation_fingerprint("cut", backend="statevector")
        new = evaluation_fingerprint("cut", backend="statevector:batched:v2")
        assert old != new
        # config=None must leave historical digests untouched.
        assert evaluation_fingerprint("cut", config=None) == (
            evaluation_fingerprint("cut")
        )
        assert evaluation_fingerprint(
            "cut", config={"trajectories": 24}
        ) != evaluation_fingerprint("cut")
        assert evaluation_fingerprint(
            "cut", config={"trajectories": 24}
        ) != evaluation_fingerprint("cut", config={"trajectories": 48})

    def test_old_artifacts_recompute_after_bump(self, tmp_path):
        from repro.service.store import ArtifactStore, evaluation_fingerprint

        pipeline = CutQC(bv(6), max_subcircuit_qubits=5)
        results = pipeline.evaluate()
        store = ArtifactStore(tmp_path)
        cut_key = pipeline.cut_fingerprint()
        # An artifact cached under a pre-bump batched tag still answers
        # its own key but never collides with the versioned key: jobs
        # recompute instead of reusing stale batched semantics.
        old_key = evaluation_fingerprint(cut_key, backend="statevector:batched")
        store.put_evaluation(old_key, results)
        assert store.get_evaluation(old_key, pipeline.cut()) is not None
        new_key = evaluation_fingerprint(
            cut_key, backend="statevector:batched:v2"
        )
        assert new_key != old_key
        assert store.get_evaluation(new_key, pipeline.cut()) is None

    def test_scheduler_records_batched_noisy_mode(self, tmp_path):
        from repro.service.scheduler import JobScheduler, JobSpec
        from repro.service.store import ArtifactStore

        scheduler = JobScheduler(
            ArtifactStore(tmp_path), workers=1, autostart=True
        )
        try:
            base = dict(
                device_size=5,
                benchmark="bv",
                qubits=6,
                device="bogota",
                shots=2048,
            )
            first = scheduler.wait(
                scheduler.submit(JobSpec(**base, trajectories=8)),
                timeout=180.0,
            )
            assert first.state == "done"
            assert first.execution["mode"] == "batched-noisy"
            assert first.execution["sim_batch"] == DEFAULT_SIM_BATCH
            # Trajectory count is part of the artifact identity on the
            # batched noisy path: a different count recomputes.
            second = scheduler.wait(
                scheduler.submit(JobSpec(**base, trajectories=16)),
                timeout=180.0,
            )
            assert second.state == "done"
            assert (
                first.fingerprints["evaluate"]
                != second.fingerprints["evaluate"]
            )
            assert second.cache_hits["evaluate"] is False
        finally:
            scheduler.shutdown()
