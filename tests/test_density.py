"""Tests for the density-matrix simulator — and the crucial cross-check
that the Monte-Carlo trajectory sampler converges to the exact channel."""

import numpy as np
import pytest

from repro import QuantumCircuit
from repro.sim import NoiseModel, NoisySimulator, simulate_probabilities
from repro.sim.density import DensityMatrix, DensityMatrixSimulator
from tests.conftest import random_connected_circuit


class TestDensityMatrixBasics:
    def test_initial_state(self):
        state = DensityMatrix(2)
        assert np.isclose(state.probabilities()[0], 1.0)
        assert np.isclose(state.trace().real, 1.0)
        assert np.isclose(state.purity(), 1.0)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            DensityMatrix(0)
        with pytest.raises(ValueError):
            DensityMatrix(15)

    def test_from_statevector(self):
        bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
        state = DensityMatrix.from_statevector(bell)
        assert np.allclose(state.probabilities(), [0.5, 0, 0, 0.5])
        assert np.isclose(state.purity(), 1.0)

    def test_from_labels(self):
        state = DensityMatrix.from_labels(["one", "plus"])
        assert np.allclose(state.probabilities(), [0, 0, 0.5, 0.5])

    def test_data_shape_validated(self):
        with pytest.raises(ValueError):
            DensityMatrix(2, np.eye(3))

    def test_unitary_matches_statevector_sim(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).t(1).cz(1, 2).ry(0.7, 2)
        state = DensityMatrix(3)
        for gate in circuit:
            state.apply_gate(gate)
        assert np.allclose(
            state.probabilities(), simulate_probabilities(circuit), atol=1e-10
        )
        assert np.isclose(state.purity(), 1.0)

    def test_depolarizing_reduces_purity(self):
        state = DensityMatrix(1)
        state.apply_gate(QuantumCircuit(1).h(0)[0])
        state.apply_depolarizing([0], 0.2)
        assert state.purity() < 1.0
        assert np.isclose(state.trace().real, 1.0)

    def test_full_depolarizing_single_qubit(self):
        # p=1 single-qubit depolarizing maps any state to I/2 ... for the
        # uniform-over-XYZ convention only diagonal states stay diagonal;
        # check on |0>: (X|0>, Y|0>, Z|0>) average has p(1) = 2/3.
        state = DensityMatrix(1)
        state.apply_depolarizing([0], 1.0)
        assert np.allclose(state.probabilities(), [1 / 3, 2 / 3])

    def test_two_qubit_depolarizing_trace_preserving(self):
        state = DensityMatrix(2)
        state.apply_gate(QuantumCircuit(2).h(0)[0])
        state.apply_depolarizing([0, 1], 0.3)
        assert np.isclose(state.trace().real, 1.0)


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).t(0)
        out = DensityMatrixSimulator().run(circuit)
        assert np.allclose(out, simulate_probabilities(circuit), atol=1e-10)

    def test_readout_error_applied(self):
        out = DensityMatrixSimulator(NoiseModel(readout=0.1)).run(
            QuantumCircuit(1).x(0)
        )
        assert np.allclose(out, [0.1, 0.9])

    def test_initial_labels(self):
        out = DensityMatrixSimulator().run(
            QuantumCircuit(2).i(0).i(1), initial_labels=["one", "zero"]
        )
        assert np.isclose(out[0b10], 1.0)

    def test_label_count_checked(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(QuantumCircuit(2).h(0), ["zero"])

    def test_noise_spreads_probability(self):
        circuit = QuantumCircuit(2).x(0).cx(0, 1)
        out = DensityMatrixSimulator(NoiseModel(error_2q=0.1)).run(circuit)
        assert out[0b11] < 1.0
        assert np.isclose(out.sum(), 1.0)


class TestTrajectoryConvergence:
    """The trajectory sampler is an unbiased estimator of the channel the
    density-matrix simulator computes exactly."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_trajectories_converge_to_exact_channel(self, seed):
        circuit = random_connected_circuit(3, 6, seed)
        noise = NoiseModel(error_1q=0.02, error_2q=0.05, readout=0.03)
        exact = DensityMatrixSimulator(noise).run(circuit)
        sampled = NoisySimulator(
            noise, trajectories=1500, shots=None, seed=seed
        ).noisy_distribution(circuit)
        assert np.allclose(sampled, exact, atol=0.02), (
            f"max deviation {np.abs(sampled - exact).max():.4f}"
        )

    def test_convergence_improves_with_trajectories(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(0).cx(0, 1)
        noise = NoiseModel(error_1q=0.03, error_2q=0.08)
        exact = DensityMatrixSimulator(noise).run(circuit)

        def deviation(trajectories, seed):
            out = NoisySimulator(
                noise, trajectories=trajectories, shots=None, seed=seed
            ).noisy_distribution(circuit)
            return np.abs(out - exact).max()

        few = np.mean([deviation(8, s) for s in range(8)])
        many = np.mean([deviation(512, s) for s in range(8)])
        assert many < few
