"""Tests for the QuantumCircuit container and builder API."""

import numpy as np
import pytest

from repro import QuantumCircuit
from repro.circuits import Gate
from repro.sim import simulate_probabilities, simulate_statevector


class TestConstruction:
    def test_positive_qubits_required(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_fluent_builders_chain(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rz(0.3, 1)
        assert len(circuit) == 3
        assert circuit[0].name == "h"
        assert circuit[2].params == (0.3,)

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).h(2)

    def test_init_from_gates(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        circuit = QuantumCircuit(2, gates)
        assert circuit.gates == tuple(gates)

    def test_equality(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).h(0)
        assert a == b
        assert a != QuantumCircuit(2).h(1)

    def test_extend(self):
        circuit = QuantumCircuit(2)
        circuit.extend([Gate("h", (0,)), Gate("h", (1,))])
        assert len(circuit) == 2


class TestComposition:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(2).h(0).cx(0, 1)
        outer = QuantumCircuit(2).compose(inner)
        assert outer == inner

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2).cx(0, 1)
        outer = QuantumCircuit(3).compose(inner, qubits=[2, 0])
        assert outer[0].qubits == (2, 0)

    def test_compose_mapping_length_checked(self):
        with pytest.raises(ValueError):
            QuantumCircuit(3).compose(QuantumCircuit(2).h(0), qubits=[0])

    def test_inverse_undoes_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(1).rz(0.7, 2).cz(1, 2).ry(0.4, 0)
        identity = circuit.copy().compose(circuit.inverse())
        probs = simulate_probabilities(identity)
        assert np.isclose(probs[0], 1.0)

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2).h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1

    def test_remapped(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        out = circuit.remapped([3, 1], 4)
        assert out[0].qubits == (3, 1)
        assert out.num_qubits == 4


class TestToffoliNetwork:
    @pytest.mark.parametrize(
        "c1,c2,expect_flip",
        [(0, 0, False), (0, 1, False), (1, 0, False), (1, 1, True)],
    )
    def test_ccx_truth_table(self, c1, c2, expect_flip):
        circuit = QuantumCircuit(3)
        if c1:
            circuit.x(0)
        if c2:
            circuit.x(1)
        circuit.ccx(0, 1, 2)
        probs = simulate_probabilities(circuit)
        target = (c1 << 2) | (c2 << 1) | (1 if expect_flip else 0)
        assert np.isclose(probs[target], 1.0)

    def test_ccz_phase(self):
        # CCZ on |110> leaves it; on |111> flips its sign (invisible in
        # probabilities), so verify via interference: H on target.
        circuit = QuantumCircuit(3).x(0).x(1).h(2).ccz(0, 1, 2).h(2)
        probs = simulate_probabilities(circuit)
        # phase flip turns |+> into |->, so the target reads 1.
        assert np.isclose(probs[0b111], 1.0)

    def test_ccx_only_uses_supported_gates(self):
        circuit = QuantumCircuit(3).ccx(0, 1, 2)
        assert all(gate.num_qubits <= 2 for gate in circuit)


class TestStructuralQueries:
    def test_gates_on_wire(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cz(1, 2).t(1)
        wire1 = circuit.gates_on_wire(1)
        assert [pos for pos, _ in wire1] == [1, 2, 3]

    def test_multiqubit_gate_count(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cz(1, 2)
        assert circuit.multiqubit_gate_count() == 2

    def test_active_qubits(self):
        circuit = QuantumCircuit(4).h(0).cx(2, 3)
        assert circuit.active_qubits() == [0, 2, 3]

    def test_depth(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert circuit.depth() == 2
        assert QuantumCircuit(3).depth() == 0

    def test_two_qubit_depth_ignores_1q(self):
        circuit = QuantumCircuit(2).h(0).t(0).s(0).cx(0, 1)
        assert circuit.two_qubit_depth() == 1

    def test_fully_connected(self):
        connected = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        assert connected.is_fully_connected()
        disconnected = QuantumCircuit(3).cx(0, 1)
        assert not disconnected.is_fully_connected()

    def test_count_ops(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert circuit.count_ops() == {"h": 2, "cx": 1}

    def test_draw_produces_row_per_qubit(self):
        art = QuantumCircuit(3).h(0).cx(0, 2).draw()
        assert len(art.splitlines()) == 3


class TestSemantics:
    def test_gate_order_matters(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).cx(0, 1).h(0)
        pa = simulate_probabilities(a)
        pb = simulate_probabilities(b)
        assert not np.allclose(pa, pb)

    def test_bell_state(self):
        probs = simulate_probabilities(QuantumCircuit(2).h(0).cx(0, 1))
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_swap_gate_semantics(self):
        circuit = QuantumCircuit(2).x(0).swap(0, 1)
        state = simulate_statevector(circuit)
        assert np.isclose(state.probability_of("01"), 1.0)
