"""Tests for the cut-search front-end."""

import pytest

from repro import CutSearchError, QuantumCircuit, find_cuts, supremacy
from repro.cutting.searcher import cut_positions
from repro.library import bv


class TestFindCuts:
    def test_auto_uses_mip_for_small_circuits(self, fig4_circuit):
        solution = find_cuts(fig4_circuit, 3)
        assert solution.method == "mip"
        assert solution.num_cuts == 1

    def test_auto_uses_heuristic_for_large_circuits(self):
        solution = find_cuts(bv(30), 16)
        assert solution.method == "heuristic"

    def test_forced_methods(self, fig4_circuit):
        assert find_cuts(fig4_circuit, 3, method="mip").method == "mip"
        assert (
            find_cuts(fig4_circuit, 3, method="heuristic").method == "heuristic"
        )

    def test_unknown_method(self, fig4_circuit):
        with pytest.raises(ValueError):
            find_cuts(fig4_circuit, 3, method="quantum")

    def test_infeasible_raises(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        with pytest.raises(CutSearchError):
            find_cuts(circuit, 2, max_subcircuits=2, max_cuts=1)

    def test_solution_apply_respects_budget(self, fig4_circuit):
        solution = find_cuts(fig4_circuit, 3)
        cut = solution.apply(fig4_circuit)
        assert cut.max_subcircuit_width() <= 3
        assert cut.num_cuts == solution.num_cuts

    def test_objective_positive_for_real_cut(self, fig4_circuit):
        solution = find_cuts(fig4_circuit, 3)
        assert solution.objective > 0

    def test_cut_positions_round_trip(self, fig4_circuit):
        solution = find_cuts(fig4_circuit, 3)
        positions = cut_positions(solution, fig4_circuit)
        from repro import cut_circuit

        cut = cut_circuit(fig4_circuit, positions)
        assert cut.num_cuts == solution.num_cuts

    def test_more_than_double_expansion(self):
        """Paper contribution 1: circuits > 2x the device size map fine."""
        circuit = bv(11)
        solution = find_cuts(circuit, 5)
        cut = solution.apply(circuit)
        assert cut.max_subcircuit_width() <= 5
        assert circuit.num_qubits > 2 * 5

    def test_supremacy_on_quarter_device(self):
        circuit = supremacy(16, seed=0)
        solution = find_cuts(circuit, 12)
        cut = solution.apply(circuit)
        assert cut.max_subcircuit_width() <= 12
