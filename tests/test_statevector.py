"""Tests for the exact statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit
from repro.sim import (
    INITIAL_STATES,
    Statevector,
    initial_state,
    simulate_probabilities,
    simulate_statevector,
)
from tests.conftest import random_connected_circuit


class TestStatevectorBasics:
    def test_initial_all_zero(self):
        state = Statevector(3)
        probs = state.probabilities()
        assert np.isclose(probs[0], 1.0) and np.isclose(probs.sum(), 1.0)

    def test_from_data_validates_size(self):
        with pytest.raises(ValueError):
            Statevector(2, np.zeros(3))

    def test_positive_qubits(self):
        with pytest.raises(ValueError):
            Statevector(0)

    def test_amplitudes_round_trip(self):
        amps = np.array([0.6, 0.0, 0.0, 0.8j])
        state = Statevector(2, amps)
        assert np.allclose(state.amplitudes(), amps)

    def test_norm(self):
        assert np.isclose(Statevector(2).norm(), 1.0)

    def test_from_product_order(self):
        # qubit 0 = |1>, qubit 1 = |0> -> index 0b10
        state = Statevector.from_product(
            [np.array([0, 1]), np.array([1, 0])]
        )
        assert np.isclose(state.probabilities()[0b10], 1.0)

    def test_from_labels(self):
        state = Statevector.from_labels(["plus", "zero"])
        probs = state.probabilities()
        assert np.allclose(probs, [0.5, 0.0, 0.5, 0.0])

    def test_initial_state_lookup(self):
        assert np.allclose(initial_state("one"), [0, 1])
        with pytest.raises(ValueError):
            initial_state("bogus")

    def test_initial_states_normalized(self):
        for label, vector in INITIAL_STATES.items():
            assert np.isclose(np.linalg.norm(vector), 1.0), label

    def test_probability_of(self):
        state = simulate_statevector(QuantumCircuit(2).x(0))
        assert np.isclose(state.probability_of("10"), 1.0)


class TestGateApplication:
    def test_hadamard_uniform(self):
        probs = simulate_probabilities(QuantumCircuit(1).h(0))
        assert np.allclose(probs, [0.5, 0.5])

    def test_x_flips(self):
        probs = simulate_probabilities(QuantumCircuit(2).x(1))
        assert np.isclose(probs[0b01], 1.0)

    def test_ghz(self):
        circuit = QuantumCircuit(4).h(0)
        for q in range(3):
            circuit.cx(q, q + 1)
        probs = simulate_probabilities(circuit)
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[-1], 0.5)

    def test_cx_control_qubit_order(self):
        # control=1 (second qubit): |01> -> |11>
        circuit = QuantumCircuit(2).x(1).cx(1, 0)
        probs = simulate_probabilities(circuit)
        assert np.isclose(probs[0b11], 1.0)

    def test_apply_matrix_validates_shape(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_matrix(np.eye(2), [0, 1])

    def test_apply_circuit_validates_width(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_circuit(QuantumCircuit(3).h(0))

    def test_rx_pi_is_x(self):
        a = simulate_probabilities(QuantumCircuit(1).rx(np.pi, 0))
        b = simulate_probabilities(QuantumCircuit(1).x(0))
        assert np.allclose(a, b)

    def test_rz_invisible_on_basis_state(self):
        probs = simulate_probabilities(QuantumCircuit(1).rz(1.234, 0))
        assert np.allclose(probs, [1.0, 0.0])

    def test_cz_symmetric(self):
        a = QuantumCircuit(2).h(0).h(1).cz(0, 1)
        b = QuantumCircuit(2).h(0).h(1).cz(1, 0)
        sa = simulate_statevector(a).amplitudes()
        sb = simulate_statevector(b).amplitudes()
        assert np.allclose(sa, sb)

    def test_initial_labels_argument(self):
        probs = simulate_probabilities(QuantumCircuit(2).i(0).i(1), ["one", "zero"])
        assert np.isclose(probs[0b10], 1.0)

    def test_initial_labels_length_checked(self):
        with pytest.raises(ValueError):
            simulate_probabilities(QuantumCircuit(2).h(0), ["zero"])


class TestUnitarityProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_circuit_preserves_norm(self, n, seed):
        circuit = random_connected_circuit(n, 3 * n, seed)
        probs = simulate_probabilities(circuit)
        assert np.isclose(probs.sum(), 1.0, atol=1e-9)
        assert np.all(probs >= -1e-12)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_inverse_property(self, n, seed):
        circuit = random_connected_circuit(n, 2 * n, seed)
        round_trip = circuit.copy().compose(circuit.inverse())
        probs = simulate_probabilities(round_trip)
        assert np.isclose(probs[0], 1.0, atol=1e-9)

    def test_inner_product_of_orthogonal_states(self):
        zero = Statevector(1)
        one = simulate_statevector(QuantumCircuit(1).x(0))
        assert np.isclose(abs(one.inner(zero)), 0.0)
