"""The shared contraction engine: strategy parity and scalability.

Covers the tentpole guarantees of :mod:`repro.postprocess.engine`:

* every strategy (``kron``, ``tensor_network``, ``auto``), worker count,
  and the DD path with all qubits active compute the *same* distribution
  on real library circuits (BV, QAOA, supremacy);
* the tensor-network path has no symbol pool — it contracts networks
  whose ``num_cuts + num_subcircuits`` exceeds the 52 letters of the old
  ``string.ascii_letters`` subscript scheme (which raised
  ``StopIteration`` there);
* the ``auto`` cost model refuses intractable ``4^K`` enumerations.
"""

import numpy as np
import pytest

from repro import CutQC, QuantumCircuit, simulate_probabilities
from repro.cutting import cut_circuit_from_assignment, evaluate_subcircuit
from repro.library import bv, qaoa_maxcut, supremacy
from repro.postprocess import (
    ContractionEngine,
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
    contract_terms,
    reconstruct_full,
    resolve_strategy,
)
from repro.postprocess.attribution import TermTensor
from repro.postprocess.engine import _accumulate_range


def _library_cases():
    return [
        ("bv", bv(8), 5),
        ("qaoa", qaoa_maxcut(8, seed=3), 5),
        ("supremacy", supremacy(9, seed=1, depth=8), 6),
    ]


class TestStrategyParity:
    """Satellite: FD kron == tensor_network == auto == parallel workers
    == DD-with-all-qubits-active, on 3+ library circuits."""

    @pytest.mark.parametrize(
        "name,circuit,device",
        _library_cases(),
        ids=[case[0] for case in _library_cases()],
    )
    def test_all_paths_agree(self, name, circuit, device):
        pipeline = CutQC(circuit, max_subcircuit_qubits=device)
        truth = simulate_probabilities(circuit)
        kron = pipeline.fd_query(strategy="kron")
        assert np.allclose(kron.probabilities, truth, atol=1e-8)

        network = pipeline.fd_query(strategy="tensor_network")
        auto = pipeline.fd_query(strategy="auto")
        parallel = pipeline.fd_query(strategy="kron", workers=2)
        for result in (network, auto, parallel):
            assert np.allclose(
                result.probabilities, kron.probabilities, atol=1e-10
            )
        assert network.stats.strategy == "tensor_network"
        assert auto.stats.strategy in ("kron", "tensor_network")

        # DD with every qubit active in one recursion is the FD query.
        provider = PrecomputedTensorProvider(
            pipeline.cut(), results=pipeline.evaluate()
        )
        n = circuit.num_qubits
        query = DynamicDefinitionQuery(provider, max_active_qubits=n)
        recursion = query.step()
        assert recursion.active == tuple(range(n))
        assert np.allclose(
            recursion.probabilities, kron.probabilities, atol=1e-8
        )


# ----------------------------------------------------------------------
# Synthetic chains (engine-level, no circuit evaluation)
# ----------------------------------------------------------------------

def _chain_tensors(num_tensors, rng):
    """A linear tensor network: cut ``i`` joins tensors ``i`` and ``i+1``.

    End tensors carry one effective qubit; middles carry none, so the
    contracted output stays tiny no matter how long the chain is.
    """
    tensors = []
    for index in range(num_tensors):
        cut_order = []
        if index > 0:
            cut_order.append(index - 1)
        if index < num_tensors - 1:
            cut_order.append(index)
        num_effective = 1 if index in (0, num_tensors - 1) else 0
        data = rng.uniform(
            0.1, 1.0, size=(4 ** len(cut_order), 1 << num_effective)
        )
        tensors.append(
            TermTensor(
                subcircuit_index=index,
                cut_order=cut_order,
                num_effective=num_effective,
                data=data,
                nonzero=np.any(data != 0.0, axis=1),
            )
        )
    return tensors


def _chain_reference(tensors):
    """Closed-form contraction of the chain as a matrix product."""
    carry = tensors[0].data.T  # (out_first, cut_0)
    for tensor in tensors[1:-1]:
        carry = carry @ tensor.data.reshape(4, 4)  # (cut_prev, cut_next)
    return (carry @ tensors[-1].data).reshape(-1)  # (out_first, out_last)


class TestSymbolExhaustionRegression:
    def test_network_contraction_beyond_52_labels(self):
        rng = np.random.default_rng(7)
        num_tensors = 28  # 28 subcircuits + 27 cuts = 55 labels > 52
        tensors = _chain_tensors(num_tensors, rng)
        order = list(range(num_tensors))
        num_cuts = num_tensors - 1
        result = contract_terms(
            tensors, order, num_cuts, strategy="tensor_network"
        )
        assert result.strategy == "tensor_network"
        assert np.allclose(result.vector, _chain_reference(tensors), rtol=1e-9)

    def test_auto_refuses_intractable_enumeration(self):
        rng = np.random.default_rng(11)
        tensors = _chain_tensors(30, rng)
        order = list(range(30))
        # 4^29 kron terms: only the network path can run this at all.
        assert (
            resolve_strategy("auto", tensors, order, 29) == "tensor_network"
        )
        result = contract_terms(tensors, order, 29, strategy="auto")
        assert np.allclose(result.vector, _chain_reference(tensors), rtol=1e-9)

    def test_real_cut_circuit_beyond_52_labels(self):
        """End-to-end: a 2-qubit circuit cut into 20 per-gate subcircuits
        (38 cuts + 20 subcircuits = 58 labels) reconstructs exactly."""
        num_gates = 20
        circuit = QuantumCircuit(2)
        circuit.ry(0.4, 0).ry(1.1, 1)
        for index in range(num_gates):
            circuit.cx(0, 1)
            circuit.rz(0.05 * (index + 1), 1)
        cut = cut_circuit_from_assignment(circuit, list(range(num_gates)))
        assert cut.num_cuts + cut.num_subcircuits > 52
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        reconstruction = reconstruct_full(
            cut, results, strategy="tensor_network"
        )
        truth = simulate_probabilities(circuit)
        assert np.allclose(reconstruction.probabilities, truth, atol=1e-8)

    def test_small_chain_kron_network_cross_check(self):
        rng = np.random.default_rng(3)
        tensors = _chain_tensors(5, rng)
        order = list(range(5))
        kron = contract_terms(tensors, order, 4, strategy="kron")
        network = contract_terms(tensors, order, 4, strategy="tensor_network")
        reference = _chain_reference(tensors)
        assert np.allclose(kron.vector, reference, rtol=1e-9)
        assert np.allclose(network.vector, kron.vector, rtol=1e-12)


class TestEngineInternals:
    def test_unknown_strategy_rejected(self):
        rng = np.random.default_rng(0)
        tensors = _chain_tensors(3, rng)
        with pytest.raises(ValueError, match="strategy"):
            contract_terms(tensors, [0, 1, 2], 2, strategy="magic")
        with pytest.raises(ValueError, match="strategy"):
            ContractionEngine(strategy="magic")
        with pytest.raises(ValueError, match="workers"):
            ContractionEngine(workers=0)

    def test_single_tensor_no_cuts(self):
        data = np.array([[0.25, 0.75]])
        tensor = TermTensor(
            subcircuit_index=0,
            cut_order=[],
            num_effective=1,
            data=data,
            nonzero=np.array([True]),
        )
        for strategy in ("kron", "tensor_network", "auto"):
            result = contract_terms([tensor], [0], 0, strategy=strategy)
            assert np.allclose(result.vector, data[0])

    def test_blocked_accumulation_matches_unblocked(self):
        rng = np.random.default_rng(5)
        tensors = _chain_tensors(4, rng)
        order = [0, 1, 2, 3]
        full, _ = _accumulate_range(tensors, order, 3, 0, 4**3, False)
        tiny_blocks, _ = _accumulate_range(
            tensors, order, 3, 0, 4**3, False, block_elements=1
        )
        assert np.allclose(tiny_blocks, full, rtol=1e-12)

    def test_early_termination_counts_zero_rows(self):
        rng = np.random.default_rng(9)
        tensors = _chain_tensors(3, rng)
        # Kill half of the middle tensor's rows.
        tensors[1].data[::2] = 0.0
        tensors[1].nonzero[:] = np.any(tensors[1].data != 0.0, axis=1)
        pruned = contract_terms(
            tensors, [0, 1, 2], 2, strategy="kron", early_termination=True
        )
        dense = contract_terms(
            tensors, [0, 1, 2], 2, strategy="kron", early_termination=False
        )
        assert pruned.num_skipped > 0
        assert np.allclose(pruned.vector, dense.vector, rtol=1e-12)

    def test_engine_defaults_flow_through(self):
        rng = np.random.default_rng(1)
        tensors = _chain_tensors(3, rng)
        engine = ContractionEngine(strategy="tensor_network")
        result = engine.contract(tensors, [0, 1, 2], 2)
        assert result.strategy == "tensor_network"
        override = engine.contract(tensors, [0, 1, 2], 2, strategy="kron")
        assert override.strategy == "kron"
        assert np.allclose(result.vector, override.vector, rtol=1e-12)
