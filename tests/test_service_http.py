"""HTTP job service smoke: ephemeral-port server, warm-cache proof, CLI.

This module is also the CI "service smoke" job: it starts the real
``ThreadingHTTPServer`` on an ephemeral port, submits a small BV job over
HTTP, polls it to completion, and asserts the second identical
submission reports stage-level cache hits with an identical result — the
end-to-end warm-cache acceptance proof.
"""

import json
import time

import pytest

from repro.cli import main
from repro.service import JobServer, ServiceClientError, request_json


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    instance = JobServer(
        store_dir=tmp_path_factory.mktemp("store"), port=0, workers=2
    ).start()
    yield instance
    instance.close()


_BV_JOB = {
    "circuit": {"benchmark": "bv", "qubits": 6, "seed": 0},
    "device_size": 5,
    "query": {"type": "fd", "top": 3},
}


def _poll(server, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        document = request_json("GET", f"{server.url}/jobs/{job_id}")
        if document["state"] in ("done", "failed", "cancelled"):
            return document
        assert time.monotonic() < deadline, f"job stuck: {document}"
        time.sleep(0.01)


class TestHttpApi:
    def test_healthz(self, server):
        assert request_json("GET", f"{server.url}/healthz") == {"status": "ok"}

    def test_submit_poll_result_then_warm_resubmit(self, server):
        created = request_json("POST", f"{server.url}/jobs", payload=_BV_JOB)
        assert created["state"] == "queued"
        status = _poll(server, created["job_id"])
        assert status["state"] == "done", status.get("error")
        assert status["cache_hits"] == {"cut": False, "evaluate": False}
        cold = request_json(
            "GET", f"{server.url}/jobs/{created['job_id']}/result"
        )
        assert cold["result"]["top_states"][0]["state"] == "111111"

        # The acceptance proof: an identical second submission runs warm —
        # cut search and variant evaluation are both served by the store.
        resubmitted = request_json("POST", f"{server.url}/jobs",
                                   payload=_BV_JOB)
        assert resubmitted["job_id"] != created["job_id"]
        warm_status = _poll(server, resubmitted["job_id"])
        assert warm_status["state"] == "done"
        assert warm_status["cache_hits"] == {"cut": True, "evaluate": True}
        warm = request_json(
            "GET", f"{server.url}/jobs/{resubmitted['job_id']}/result"
        )
        assert warm["result"]["top_states"] == cold["result"]["top_states"]

        stats = request_json("GET", f"{server.url}/stats")
        assert stats["cache"]["stage_hits"]["cut"] >= 1
        assert stats["cache"]["stage_hits"]["evaluate"] >= 1
        assert stats["store"]["artifacts"]["cuts"] >= 1

    def test_result_conflict_before_done(self, server):
        # A queued/running job's result is a 409, not garbage.
        created = request_json("POST", f"{server.url}/jobs", payload={
            **_BV_JOB, "circuit": {"benchmark": "bv", "qubits": 8, "seed": 0},
            "device_size": 7,
        })
        try:
            request_json(
                "GET", f"{server.url}/jobs/{created['job_id']}/result"
            )
        except ServiceClientError as error:
            assert error.status == 409
        else:
            # Scheduler may legitimately have finished already.
            assert _poll(server, created["job_id"])["state"] == "done"

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServiceClientError) as excinfo:
            request_json("GET", f"{server.url}/jobs/job-nope")
        assert excinfo.value.status == 404

    def test_bad_payload_is_400(self, server):
        with pytest.raises(ServiceClientError) as excinfo:
            request_json("POST", f"{server.url}/jobs",
                         payload={"circuit": {"benchmark": "bv", "qubits": 6}})
        assert excinfo.value.status == 400
        assert "device_size" in excinfo.value.document["error"]

    def test_unknown_route_is_404(self, server):
        with pytest.raises(ServiceClientError) as excinfo:
            request_json("GET", f"{server.url}/nope")
        assert excinfo.value.status == 404

    def test_method_not_allowed_is_405(self, server):
        with pytest.raises(ServiceClientError) as excinfo:
            request_json("POST", f"{server.url}/jobs/whatever/result",
                         payload={})
        assert excinfo.value.status == 405

    def test_jobs_listing(self, server):
        listing = request_json("GET", f"{server.url}/jobs")
        assert isinstance(listing["jobs"], list)
        assert all("job_id" in job for job in listing["jobs"])


class TestServiceCli:
    def test_submit_wait_json(self, server, capsys):
        code = main([
            "submit", "--url", server.url, "--benchmark", "bv",
            "--qubits", "6", "--device-size", "5", "--wait", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["state"] == "done"
        assert document["result"]["top_states"][0]["state"] == "111111"
        # Warm by now: earlier tests ran the same job through this store.
        assert document["cache_hits"] == {"cut": True, "evaluate": True}

    def test_submit_then_status(self, server, capsys):
        code = main([
            "submit", "--url", server.url, "--benchmark", "bv",
            "--qubits", "6", "--device-size", "5",
        ])
        assert code == 0
        job_id = capsys.readouterr().out.split()[1].rstrip(":")
        for _ in range(500):
            code = main(["status", "--url", server.url, "--job", job_id,
                         "--json"])
            assert code == 0
            document = json.loads(capsys.readouterr().out)
            if document["state"] == "done":
                break
            time.sleep(0.01)
        assert document["state"] == "done"
        code = main(["status", "--url", server.url, "--job", job_id,
                     "--result"])
        out = capsys.readouterr().out
        assert code == 0
        assert "|111111>" in out

    def test_jobs_listing_cli(self, server, capsys):
        assert main(["jobs", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "cache hits" in out
        assert main(["jobs", "--url", server.url, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["stats"]["jobs"]["submitted"] >= 1

    def test_unreachable_server_is_a_clean_error(self, capsys):
        """Connection refused must exit 1 with an error line, never a
        traceback (URLError is wrapped like HTTPError)."""
        dead = "http://127.0.0.1:9"  # discard port; nothing listens
        assert main(["status", "--url", dead, "--job", "job-x"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["jobs", "--url", dead]) == 1
        assert "cannot reach" in capsys.readouterr().err
        assert main(["submit", "--url", dead, "--benchmark", "bv",
                     "--qubits", "6", "--device-size", "5"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_validates_circuit_source(self, server, capsys):
        code = main(["submit", "--url", server.url, "--device-size", "5"])
        assert code == 2
        assert "either" in capsys.readouterr().err

    def test_submit_dd_query(self, server, capsys):
        code = main([
            "submit", "--url", server.url, "--benchmark", "bv",
            "--qubits", "6", "--device-size", "5", "--query", "dd",
            "--active", "2", "--recursions", "4", "--wait", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["result"]["mode"] == "dd"
        assert document["result"]["solution_states"][0]["state"] == "111111"

    def test_cancel_endpoint(self, server):
        created = request_json("POST", f"{server.url}/jobs", payload=_BV_JOB)
        response = request_json(
            "POST", f"{server.url}/jobs/{created['job_id']}/cancel",
            payload={},
        )
        assert response["job_id"] == created["job_id"]
        final = _poll(server, created["job_id"])
        assert final["state"] in ("done", "cancelled")


class TestPooledService:
    """A server holding one persistent worker pool across all jobs."""

    @pytest.fixture(scope="class")
    def pooled_server(self, tmp_path_factory):
        instance = JobServer(
            store_dir=tmp_path_factory.mktemp("pooled-store"),
            port=0,
            workers=1,
            pool_workers=1,
        ).start()
        yield instance
        instance.close()

    def test_stats_reports_pool_utilization(self, pooled_server):
        # Before any job: the pool exists but has not started workers.
        stats = request_json("GET", f"{pooled_server.url}/stats")
        assert stats["pool"]["workers"] == 1
        assert stats["pool"]["started"] is False

        job = {
            "circuit": {"benchmark": "bv", "qubits": 6, "seed": 0},
            "device_size": 5,
            "query": {"type": "top_k", "top": 3, "shard_qubits": 2},
        }
        created = request_json(
            "POST", f"{pooled_server.url}/jobs", payload=job
        )
        done = _poll(pooled_server, created["job_id"])
        assert done["state"] == "done", done.get("error")
        result = request_json(
            "GET", f"{pooled_server.url}/jobs/{created['job_id']}/result"
        )
        assert result["result"]["top_states"][0]["state"] == "111111"
        assert result["result"]["stream"]["transport"] == "pool"

        stats = request_json("GET", f"{pooled_server.url}/stats")
        pool_stats = stats["pool"]
        assert pool_stats["started"] is True
        assert pool_stats["tasks_completed"] > 0
        assert pool_stats["busy_seconds"] > 0
        assert 0.0 <= pool_stats["utilization"] <= 1.0
        assert pool_stats["tasks_by_kind"].get("plan", 0) > 0
        assert "busy_seconds_by_kind" in pool_stats
        assert "wall_seconds" in pool_stats

    def test_unpooled_server_reports_null_pool(self, server):
        stats = request_json("GET", f"{server.url}/stats")
        assert stats["pool"] is None
