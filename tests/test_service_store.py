"""Artifact store: fingerprints, bit-identical round trips, corruption."""

import json
import os

import numpy as np
import pytest

from repro import CutQC, evaluate_subcircuit, find_cuts
from repro.library import bv, supremacy
from repro.service.store import (
    ArtifactStore,
    circuit_digest,
    cut_fingerprint,
    evaluation_fingerprint,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _cut_bv(qubits=6, device=5):
    circuit = bv(qubits)
    solution = find_cuts(circuit, device)
    return circuit, solution, solution.apply(circuit)


class TestFingerprints:
    def test_circuit_digest_stable_and_content_sensitive(self):
        assert circuit_digest(bv(6)) == circuit_digest(bv(6))
        assert circuit_digest(bv(6)) != circuit_digest(bv(7))
        assert circuit_digest(supremacy(8, seed=0)) != circuit_digest(
            supremacy(8, seed=1)
        )

    def test_option_key_order_is_irrelevant(self):
        circuit = bv(6)
        a = cut_fingerprint(circuit, {"max_cuts": 10, "method": "auto",
                                      "max_subcircuit_qubits": 5})
        b = cut_fingerprint(circuit, {"max_subcircuit_qubits": 5,
                                      "method": "auto", "max_cuts": 10})
        assert a == b

    def test_none_options_treated_as_absent(self):
        circuit = bv(6)
        assert cut_fingerprint(circuit, {"max_cuts": 10, "cuts": None}) == (
            cut_fingerprint(circuit, {"max_cuts": 10})
        )

    def test_explicit_cut_order_is_irrelevant(self):
        circuit = bv(8)
        a = cut_fingerprint(circuit, {"cuts": [(2, 1), (4, 1)]})
        b = cut_fingerprint(circuit, {"cuts": [(4, 1), (2, 1)]})
        assert a == b

    def test_option_values_change_the_fingerprint(self):
        circuit = bv(6)
        base = cut_fingerprint(circuit, {"max_subcircuit_qubits": 5})
        assert base != cut_fingerprint(circuit, {"max_subcircuit_qubits": 4})
        assert base != cut_fingerprint(bv(8), {"max_subcircuit_qubits": 5})

    def test_evaluation_fingerprint_covers_backend_config(self):
        base = evaluation_fingerprint("cutkey")
        assert base == evaluation_fingerprint("cutkey", "statevector")
        assert base != evaluation_fingerprint("cutkey", "device:bogota")
        assert base != evaluation_fingerprint("cutkey", shots=1024)
        assert base != evaluation_fingerprint("cutkey", seed=7)
        assert base != evaluation_fingerprint("otherkey")

    def test_pipeline_fingerprint_hooks(self):
        pipeline = CutQC(bv(6), 5)
        again = CutQC(bv(6), 5)
        assert pipeline.cut_fingerprint() == again.cut_fingerprint()
        assert pipeline.cut_fingerprint() != CutQC(bv(6), 4).cut_fingerprint()
        assert (
            pipeline.evaluation_fingerprint()
            != pipeline.evaluation_fingerprint(backend="device:bogota")
        )


class TestCutRoundTrip:
    def test_solution_restored_bit_identically(self, store):
        circuit, solution, cut = _cut_bv()
        key = cut_fingerprint(circuit, {"max_subcircuit_qubits": 5})
        store.put_cut(key, circuit, cut, solution)
        restored_cut, restored_solution = store.get_cut(key, circuit)
        assert restored_cut.assignment == cut.assignment
        assert restored_cut.num_cuts == cut.num_cuts
        assert [s.circuit for s in restored_cut.subcircuits] == [
            s.circuit for s in cut.subcircuits
        ]
        assert restored_solution.assignment == solution.assignment
        assert restored_solution.method == solution.method
        assert restored_solution.objective == solution.objective
        assert restored_solution.cost.to_dict() == solution.cost.to_dict()
        assert store.stats.hits == 1

    def test_missing_cut_is_a_miss(self, store):
        assert store.get_cut("deadbeef", bv(6)) is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0

    def test_cut_for_wrong_circuit_is_rejected(self, store):
        circuit, solution, cut = _cut_bv()
        key = "samekey"
        store.put_cut(key, circuit, cut, solution)
        # Same key, different circuit (fingerprint collision / tampering):
        # the embedded circuit digest catches it.
        assert store.get_cut(key, bv(8)) is None
        assert store.stats.corrupt == 1

    def test_tampered_cut_detected(self, store):
        circuit, solution, cut = _cut_bv()
        key = cut_fingerprint(circuit, {})
        path = store.put_cut(key, circuit, cut, solution)
        document = json.loads(path.read_text())
        document["payload"]["assignment"][0] ^= 1
        path.write_text(json.dumps(document))
        assert store.get_cut(key, circuit) is None
        assert store.stats.corrupt == 1
        # The corrupt file is removed so the slot self-heals.
        assert not path.exists()


class TestEvaluationRoundTrip:
    def test_results_restored_bit_identically(self, store):
        circuit, solution, cut = _cut_bv()
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        key = evaluation_fingerprint("cutkey")
        store.put_evaluation(key, results)
        restored = store.get_evaluation(key, cut)
        assert restored is not None
        assert len(restored) == len(results)
        for original, loaded in zip(results, restored):
            assert loaded.subcircuit is cut.subcircuits[original.subcircuit.index]
            assert loaded.num_variants == original.num_variants
            assert loaded.num_unique_circuits == original.num_unique_circuits
            assert set(loaded.probabilities) == set(original.probabilities)
            for variant_key, vector in original.probabilities.items():
                loaded_vector = loaded.probabilities[variant_key]
                assert loaded_vector.dtype == vector.dtype
                # Bit-identical, not merely close.
                assert np.array_equal(loaded_vector, vector)

    def test_restored_results_preserve_dedup_sharing(self, store):
        circuit, solution, cut = _cut_bv()
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        key = "dedupkey"
        store.put_evaluation(key, results)
        restored = store.get_evaluation(key, cut)
        for original, loaded in zip(results, restored):
            original_unique = len({id(v) for v in original.probabilities.values()})
            loaded_unique = len({id(v) for v in loaded.probabilities.values()})
            assert loaded_unique == original_unique

    def test_restored_results_reconstruct_identically(self, store):
        circuit, solution, cut = _cut_bv()
        pipeline = CutQC(circuit, 5)
        pipeline.load_cut(cut, solution)
        truth = pipeline.fd_query().probabilities
        key = "reconkey"
        store.put_evaluation(key, pipeline.evaluate())
        warm = CutQC(circuit, 5)
        warm.load_cut(cut, solution)
        warm.load_results(store.get_evaluation(key, warm.cut()))
        assert np.array_equal(warm.fd_query().probabilities, truth)

    def test_corrupted_tensor_payload_detected(self, store):
        circuit, solution, cut = _cut_bv()
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        key = "corruptkey"
        store.put_evaluation(key, results)
        _, tensor_path = store.evaluation_path(key)
        raw = bytearray(tensor_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        tensor_path.write_bytes(bytes(raw))
        assert store.get_evaluation(key, cut) is None
        assert store.stats.corrupt == 1
        assert not tensor_path.exists()  # self-healed

    def test_truncated_tensor_payload_detected(self, store):
        circuit, solution, cut = _cut_bv()
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        key = "shortkey"
        store.put_evaluation(key, results)
        _, tensor_path = store.evaluation_path(key)
        tensor_path.write_bytes(tensor_path.read_bytes()[:16])
        assert store.get_evaluation(key, cut) is None
        assert store.stats.corrupt == 1

    def test_artifact_counts(self, store):
        circuit, solution, cut = _cut_bv()
        store.put_cut("c1", circuit, cut, solution)
        store.put_evaluation(
            "e1", [evaluate_subcircuit(s) for s in cut.subcircuits]
        )
        assert store.artifact_counts() == {
            "cuts": 1, "evaluations": 1, "traces": 0,
        }
        assert store.as_dict()["writes"] == 2


class TestLruBudget:
    """Bounded mode: byte budget, LRU order, pin protection, counters."""

    def _three_cuts(self, root):
        """Three cut artifacts with mtimes forced oldest -> newest."""
        store = ArtifactStore(root)
        keys = []
        for index, qubits in enumerate((6, 7, 8)):
            circuit = bv(qubits)
            solution = find_cuts(circuit, 5)
            key = f"cut{index}"
            path = store.put_cut(
                key, circuit, solution.apply(circuit), solution
            )
            os.utime(path, (1_000 + index, 1_000 + index))
            keys.append(key)
        return store, keys

    def test_budget_evicts_oldest_first_and_counts(self, tmp_path):
        unbounded, keys = self._three_cuts(tmp_path / "store")
        total = unbounded.total_bytes()
        bounded = ArtifactStore(tmp_path / "store", max_bytes=total - 1)
        evicted = bounded.enforce_budget()
        assert evicted == [keys[0]]  # least recently used goes first
        assert not bounded.has_cut(keys[0])
        assert bounded.has_cut(keys[1]) and bounded.has_cut(keys[2])
        assert bounded.stats.evictions == 1
        assert bounded.stats.evicted_bytes > 0
        assert bounded.total_bytes() <= bounded.max_bytes

    def test_pinned_artifact_is_never_evicted(self, tmp_path):
        unbounded, keys = self._three_cuts(tmp_path / "store")
        total = unbounded.total_bytes()
        bounded = ArtifactStore(tmp_path / "store", max_bytes=total - 1)
        bounded.pin("cut", keys[0])
        try:
            evicted = bounded.enforce_budget()
            # The pinned oldest survives; the next-oldest pays instead.
            assert keys[0] not in evicted
            assert bounded.has_cut(keys[0])
            assert evicted == [keys[1]]
        finally:
            bounded.unpin("cut", keys[0])
        # Unpinned, it becomes evictable again.
        tight = ArtifactStore(tmp_path / "store", max_bytes=1)
        assert keys[0] in tight.enforce_budget()

    def test_hits_refresh_recency(self, tmp_path):
        unbounded, keys = self._three_cuts(tmp_path / "store")
        # Touch the oldest through a read: it becomes the newest.
        assert unbounded.get_cut(keys[0], bv(6)) is not None
        total = unbounded.total_bytes()
        bounded = ArtifactStore(tmp_path / "store", max_bytes=total - 1)
        evicted = bounded.enforce_budget()
        assert keys[0] not in evicted
        assert evicted == [keys[1]]

    def test_write_protects_itself_and_triggers_enforcement(self, tmp_path):
        unbounded, keys = self._three_cuts(tmp_path / "store")
        total = unbounded.total_bytes()
        bounded = ArtifactStore(tmp_path / "store", max_bytes=total)
        circuit = bv(9)
        solution = find_cuts(circuit, 5)
        # This put pushes the footprint over budget; the enforcement it
        # triggers must evict old artifacts, never the fresh write.
        bounded.put_cut("fresh", circuit, solution.apply(circuit), solution)
        assert bounded.has_cut("fresh")
        assert not bounded.has_cut(keys[0])
        assert bounded.total_bytes() <= bounded.max_bytes

    def test_job_documents_do_not_count_toward_budget(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=64)
        store.put_job_document("job-1", {"state": "done", "blob": "x" * 4096})
        assert store.total_bytes() == 0
        assert store.enforce_budget() == []
        assert store.get_job_document("job-1")["state"] == "done"

    def test_eviction_feeds_the_metrics_registry(self, tmp_path):
        from repro.obs.metrics import get_registry

        counter = get_registry().counter(
            "repro_store_evictions_total", "", ("kind",)
        )
        before = counter.value(kind="cut")
        unbounded, keys = self._three_cuts(tmp_path / "store")
        bounded = ArtifactStore(
            tmp_path / "store", max_bytes=unbounded.total_bytes() - 1
        )
        bounded.enforce_budget()
        assert counter.value(kind="cut") == before + 1
        assert "repro_store_bytes" in get_registry().render()

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactStore(tmp_path / "store", max_bytes=0)
