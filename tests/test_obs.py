"""Tests for the observability subsystem: tracing spans + metrics registry."""

import json
import threading

import numpy as np
import pytest

from repro import CutQC, evaluate_subcircuit
from repro.library import bv
from repro.obs import trace
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.postprocess.parallel import WorkerPool


def _span_names(doc, acc=None):
    acc = [] if acc is None else acc
    acc.append(doc["name"])
    for child in doc.get("children", []):
        _span_names(child, acc)
    return acc


def _bv8_contract_batch():
    """A one-item contraction batch over a cut bv-8 (cheap pool work)."""
    from repro.postprocess.attribution import build_term_tensor

    cut = CutQC(bv(8), max_subcircuit_qubits=5).cut()
    tensors = [build_term_tensor(evaluate_subcircuit(s))
               for s in cut.subcircuits]
    return cut, [(tensors, list(range(len(tensors))), cut.num_cuts)]


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        assert registry.counter("x_total") is first

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_counter_monotonic(self):
        counter = Counter("c_total", "", ())
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_label_mismatch_raises(self):
        counter = Counter("c_total", "", ("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc()  # missing the label
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc(kind="a", extra="b")

    def test_thread_safety_under_concurrent_increments(self):
        """N threads x M increments must land exactly N*M on the counter
        and fill the histogram with exactly N*M observations."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "", ("worker",))
        histogram = registry.histogram(
            "hammer_seconds", "", (), buckets=(0.5, 1.0)
        )
        threads, increments = 8, 2000

        def hammer(index):
            for _ in range(increments):
                counter.inc(worker=str(index % 2))
                histogram.observe(0.25)

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads * increments
        count, total_sum = histogram.value()
        assert count == threads * increments
        assert total_sum == pytest.approx(0.25 * threads * increments)

    def test_histogram_bucket_edges(self):
        """An observation equal to a bucket edge belongs to that bucket
        (Prometheus ``le`` semantics), and overflow goes to +Inf only."""
        histogram = Histogram("h", "", (), buckets=(0.1, 1.0, 10.0))
        for value in (0.1, 0.05, 1.0, 1.0001, 10.0, 99.0):
            histogram.observe(value)
        # cumulative: le=0.1 -> 2, le=1.0 -> 3, le=10.0 -> 5, +Inf -> 6
        assert histogram.bucket_counts() == [2, 3, 5, 6]
        count, total = histogram.value()
        assert count == 6
        assert total == pytest.approx(0.1 + 0.05 + 1.0 + 1.0001 + 10.0 + 99.0)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "", (), buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "", (), buckets=(1.0, 1.0))

    def test_render_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things counted", ("kind",)).inc(
            3, kind="x"
        )
        registry.gauge("b").set(1.5)
        registry.histogram("c_seconds", "", (), buckets=(1.0,)).observe(0.5)
        text = registry.render()
        assert "# HELP a_total things counted" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{kind="x"} 3' in text
        assert "b 1.5" in text
        assert 'c_seconds_bucket{le="1"} 1' in text
        assert 'c_seconds_bucket{le="+Inf"} 1' in text
        assert "c_seconds_sum 0.5" in text
        assert "c_seconds_count 1" in text

    def test_snapshot_merge_accumulates(self):
        """A worker snapshot folds in: counters/histograms add, gauges
        overwrite — the cross-process merge contract."""
        worker = MetricsRegistry()
        worker.counter("m_total", "", ("k",)).inc(2, k="a")
        worker.gauge("g", "", ("pid",)).set(7, pid="123")
        worker.histogram("h_seconds", "", (), buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("m_total", "", ("k",)).inc(1, k="a")
        snapshot = worker.snapshot(run_collectors=False)
        # Snapshots must survive JSON (they cross process boundaries).
        parent.merge(json.loads(json.dumps(snapshot)))
        parent.merge(json.loads(json.dumps(snapshot)))
        assert parent.counter("m_total").value(k="a") == 5
        assert parent.gauge("g").value(pid="123") == 7
        count, _ = parent.histogram("h_seconds", buckets=(1.0,)).value()
        assert count == 2

    def test_collector_refreshes_gauges_on_render(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pull_me")
        state = {"value": 0}
        registry.add_collector(
            lambda _reg: gauge.set(state["value"])
        )
        state["value"] = 42
        assert "pull_me 42" in registry.render()

    def test_collector_failure_does_not_break_render(self):
        registry = MetricsRegistry()
        registry.counter("ok_total").inc()

        def broken(_registry):
            raise RuntimeError("boom")

        registry.add_collector(broken)
        assert "ok_total 1" in registry.render()


class TestTrace:
    def test_disabled_span_is_shared_noop(self):
        assert not trace.enabled()
        first = trace.span("anything")
        second = trace.span("else", {"k": 1})
        assert first is second  # the allocation-free singleton
        with first as handle:
            assert handle.set(x=1) is handle
        assert trace.current() is None

    def test_span_tree_structure_and_attrs(self):
        with trace.start("root", {"job": "j1"}) as root:
            with trace.span("child_a", {"n": 3}):
                with trace.span("grandchild"):
                    pass
            with trace.span("child_b") as child:
                child.set(late="yes")
        doc = root.to_dict()
        assert _span_names(doc) == ["root", "child_a", "grandchild", "child_b"]
        assert doc["attrs"]["job"] == "j1"
        assert doc["children"][0]["attrs"] == {"n": 3}
        assert doc["children"][1]["attrs"] == {"late": "yes"}
        assert doc["wall_seconds"] >= 0.0
        assert not trace.enabled()

    def test_error_recorded_and_reraised(self):
        with pytest.raises(ValueError, match="boom"):
            with trace.start("root") as root:
                with trace.span("inner"):
                    raise ValueError("boom")
        doc = root.to_dict()
        assert doc["children"][0]["error"] == "ValueError: boom"
        assert doc["error"] == "ValueError: boom"
        assert not trace.enabled()  # context restored despite the raise

    def test_round_trip_through_dict(self):
        with trace.start("root") as root:
            with trace.span("child", {"k": "v"}):
                pass
        doc = root.to_dict()
        restored = trace.Span.from_dict(json.loads(json.dumps(doc)))
        assert restored.to_dict() == doc

    def test_attach_grafts_serialized_tree(self):
        worker_doc = {"name": "worker.plan", "wall_seconds": 0.1}
        trace.attach(worker_doc)  # disabled: silently dropped
        with trace.start("root") as root:
            with trace.span("submit"):
                trace.attach(worker_doc)
        names = _span_names(root.to_dict())
        assert names == ["root", "submit", "worker.plan"]

    def test_format_tree_percentages(self):
        doc = {
            "name": "root",
            "wall_seconds": 2.0,
            "children": [
                {"name": "half", "wall_seconds": 1.0, "attrs": {"n": 4}},
            ],
        }
        rendered = trace.format_tree(doc)
        assert "root" in rendered
        assert "100.0%" in rendered
        assert "50.0%" in rendered
        assert "half (n=4)" in rendered


class TestWorkerSpanPropagation:
    def test_span_tree_round_trip_through_spawn_workers(self):
        """Pool tasks submitted under a trace must come home as
        ``worker.*`` child spans — across a *spawn* boundary, the
        strictest start method."""
        cut, batch = _bv8_contract_batch()
        with WorkerPool(workers=1, context="spawn") as pool:
            with trace.start("root") as root:
                with trace.span("submit"):
                    results = pool.contract_batch(batch)
        names = _span_names(root.to_dict())
        assert names[:2] == ["root", "submit"]
        assert "worker.contract" in names
        # The worker-side root records its own pid and the task's
        # internal spans (the contraction) underneath.
        worker = root.children[0].children[0]
        assert worker.attrs.get("pid")
        assert "contract" in _span_names(worker.to_dict())
        assert results[0].vector is not None

    def test_untraced_submission_returns_bare_results(self):
        cut, batch = _bv8_contract_batch()
        with WorkerPool(workers=1) as pool:
            assert not trace.enabled()
            results = pool.contract_batch(batch)
        assert results[0].vector is not None


class TestTracingParity:
    def test_traced_query_is_bit_identical(self):
        """Tracing must observe, never perturb: the FD distribution with
        spans enabled is byte-for-byte the untraced one."""
        plain = CutQC(bv(9), max_subcircuit_qubits=5)
        plain.cut()
        plain.evaluate()
        baseline = plain.fd_query().probabilities

        traced = CutQC(bv(9), max_subcircuit_qubits=5)
        with trace.start("parity") as root:
            traced.cut()
            traced.evaluate()
            probabilities = traced.fd_query().probabilities
        assert np.array_equal(probabilities, baseline)
        names = _span_names(root.to_dict())
        assert "cut.search" in names
        assert "query.fd" in names

    def test_pipeline_metrics_flow_to_process_registry(self):
        pipeline = CutQC(bv(8), max_subcircuit_qubits=5)
        pipeline.cut()
        pipeline.evaluate()
        pipeline.fd_query()
        text = get_registry().render()
        assert "repro_query_seconds" in text
        assert "repro_eval_variants_total" in text
