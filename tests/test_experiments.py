"""Tests for the programmatic experiment runners (artifact workflow)."""

import numpy as np
import pytest

from repro.devices import make_device
from repro.experiments import (
    FidelityExperimentConfig,
    RuntimeExperimentConfig,
    run_fidelity_experiment,
    run_runtime_experiment,
)
from repro.sim import NoiseModel


class TestRuntimeExperiment:
    def test_explicit_cases(self):
        config = RuntimeExperimentConfig(cases=[("bv", 8, 6), ("bv", 10, 6)])
        records = run_runtime_experiment(config)
        assert len(records) == 2
        assert all(r.status == "ok" for r in records)
        assert all(r.speedup is not None and r.speedup > 0 for r in records)

    def test_uncuttable_case_reported(self):
        config = RuntimeExperimentConfig(cases=[("grover", 7, 6)])
        (record,) = run_runtime_experiment(config)
        assert record.status == "uncuttable"
        assert record.speedup is None
        assert record.row()[3] == "--"

    def test_flop_budget_skips(self):
        config = RuntimeExperimentConfig(
            cases=[("supremacy", 12, 6)], flop_budget=1.0
        )
        (record,) = run_runtime_experiment(config)
        assert record.status == "too costly"

    def test_sweep_covers_devices_and_benchmarks(self):
        config = RuntimeExperimentConfig(
            benchmarks=("bv",), device_sizes=(5, 6), max_circuit_qubits=9
        )
        records = run_runtime_experiment(config)
        assert {r.device_size for r in records} == {5, 6}
        assert all(r.benchmark == "bv" for r in records)

    def test_rows_are_printable(self):
        config = RuntimeExperimentConfig(cases=[("hwea", 8, 6)])
        (record,) = run_runtime_experiment(config)
        row = record.row()
        assert row[0] == "hwea" and row[7] == "ok"
        assert row[6].endswith("x")

    def test_streamed_fd_verifies(self):
        config = RuntimeExperimentConfig(
            cases=[("bv", 8, 6), ("bv", 10, 6)], stream_shard_qubits=3
        )
        records = run_runtime_experiment(config)
        # Streamed shards must concatenate to the verified distribution.
        assert all(r.status == "ok" for r in records)
        assert all(r.postprocess_seconds is not None for r in records)


class TestFidelityExperiment:
    @pytest.fixture
    def small_noisy_devices(self):
        large = make_device(
            "big", 8, "line",
            noise=NoiseModel(error_1q=0.002, error_2q=0.03, readout=0.04),
            seed=3,
        )
        small = make_device(
            "small", 4, "line",
            noise=NoiseModel(error_1q=0.0005, error_2q=0.006, readout=0.01),
            seed=3,
        )
        return large, small

    def test_records_and_reduction(self, small_noisy_devices):
        large, small = small_noisy_devices
        config = FidelityExperimentConfig(
            cases=(("bv", 5),),
            shots=4096,
            trajectories=12,
            large_device=large,
            small_device=small,
        )
        (record,) = run_fidelity_experiment(config)
        assert record.status == "ok"
        assert record.chi2_direct > 0
        assert record.reduction_percent is not None

    def test_cutqc_beats_direct_on_skewed_devices(self, small_noisy_devices):
        large, small = small_noisy_devices
        config = FidelityExperimentConfig(
            cases=(("bv", 5), ("hwea", 5)),
            shots=8192,
            trajectories=16,
            large_device=large,
            small_device=small,
        )
        records = run_fidelity_experiment(config)
        reductions = [r.reduction_percent for r in records]
        assert np.mean(reductions) > 0

    def test_mitigation_flag(self, small_noisy_devices):
        large, small = small_noisy_devices
        config = FidelityExperimentConfig(
            cases=(("bv", 5),),
            shots=4096,
            trajectories=8,
            large_device=large,
            small_device=small,
            mitigate=True,
        )
        (record,) = run_fidelity_experiment(config)
        assert record.status == "ok"
