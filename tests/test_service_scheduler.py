"""Job scheduler: stage checkpointing, warm-cache reuse, failure paths."""

import numpy as np
import pytest

from repro import CutQC
from repro.library import bv
from repro.service import ArtifactStore, JobScheduler, JobSpec


@pytest.fixture
def scheduler(tmp_path):
    instance = JobScheduler(ArtifactStore(tmp_path / "store"), workers=2)
    yield instance
    instance.shutdown()


def _bv_spec(**overrides):
    spec = {"benchmark": "bv", "qubits": 6, "device_size": 5, "query": "fd",
            "top": 3}
    spec.update(overrides)
    return JobSpec(**spec)


def _stable(result):
    """A result document with the measured-latency fields dropped."""
    document = dict(result)
    document.pop("elapsed_seconds", None)
    document.pop("stats", None)
    document.pop("stream", None)
    return document


class TestSpecValidation:
    def test_requires_exactly_one_circuit_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(device_size=5).validate()
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(device_size=5, benchmark="bv", qubits=6,
                    qasm="OPENQASM 2.0;").validate()

    def test_rejects_unknown_benchmark_and_query(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            JobSpec(device_size=5, benchmark="shor", qubits=6).validate()
        with pytest.raises(ValueError, match="unknown query"):
            _bv_spec(query="magic").validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            JobSpec.from_dict({"device_size": 5, "benchmark": "bv",
                               "qubits": 6, "frobnicate": True})

    def test_round_trip(self):
        spec = _bv_spec(query="dd", active=3)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestJobExecution:
    def test_fd_job_matches_direct_pipeline(self, scheduler):
        record = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        assert record.state == "done"
        assert record.error is None
        assert record.cache_hits == {"cut": False, "evaluate": False}
        assert set(record.timings) == {"cut", "evaluate", "query", "total"}
        direct = CutQC(bv(6), 5).fd_query().probabilities
        top = record.result["top_states"][0]
        assert top["state"] == "111111"
        assert top["probability"] == pytest.approx(float(direct.max()))

    def test_second_job_is_fully_warm_and_identical(self, scheduler):
        cold = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        warm = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        assert warm.cache_hits == {"cut": True, "evaluate": True}
        assert _stable(warm.result) == _stable(cold.result)
        assert warm.fingerprints == cold.fingerprints
        stats = scheduler.stats()
        assert stats["cache"]["stage_hits"] == {"cut": 1, "evaluate": 1}
        assert stats["cache"]["stage_misses"] == {"cut": 1, "evaluate": 1}
        assert stats["jobs"]["by_state"]["done"] == 2

    def test_sibling_query_reuses_cut_and_evaluation(self, scheduler):
        scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        sibling = scheduler.wait(
            scheduler.submit(_bv_spec(query="dd", active=2, recursions=4)),
            timeout=60,
        )
        assert sibling.state == "done"
        # Different query, same circuit+cut+backend: both stages warm.
        assert sibling.cache_hits == {"cut": True, "evaluate": True}
        assert sibling.result["solution_states"][0]["state"] == "111111"

    def test_seed_is_inert_for_deterministic_backend(self, scheduler):
        """bv ignores the generator seed and statevector evaluation is
        deterministic, so a different seed must still run fully warm."""
        scheduler.wait(scheduler.submit(_bv_spec(seed=0)), timeout=60)
        warm = scheduler.wait(scheduler.submit(_bv_spec(seed=1)), timeout=60)
        assert warm.cache_hits == {"cut": True, "evaluate": True}

    def test_top_k_query(self, scheduler):
        record = scheduler.wait(
            scheduler.submit(_bv_spec(query="top_k", shard_qubits=2)),
            timeout=60,
        )
        assert record.state == "done"
        assert record.result["mode"] == "top_k"
        assert record.result["top_states"][0]["state"] == "111111"
        assert record.result["stream"]["num_shards_emitted"] == 4

    def test_qasm_job(self, scheduler):
        from repro.circuits.qasm import to_qasm

        spec = JobSpec(device_size=5, qasm=to_qasm(bv(6)), query="fd", top=1)
        record = scheduler.wait(scheduler.submit(spec), timeout=60)
        assert record.state == "done"
        assert record.result["top_states"][0]["state"] == "111111"

    def test_infeasible_cut_fails_cleanly(self, scheduler):
        spec = JobSpec(benchmark="grover", qubits=5, device_size=4,
                       max_cuts=2)
        record = scheduler.wait(scheduler.submit(spec), timeout=60)
        assert record.state == "failed"
        assert "CutSearchError" in record.error
        assert scheduler.stats()["jobs"]["by_state"]["failed"] == 1

    def test_queued_job_cancellation(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False
        )
        job_id = scheduler.submit(_bv_spec())
        assert scheduler.cancel(job_id) is True
        scheduler.start()
        record = scheduler.wait(job_id, timeout=10)
        assert record.state == "cancelled"
        assert record.result is None
        assert scheduler.cancel(job_id) is False  # already terminal
        scheduler.shutdown()

    def test_corrupted_artifact_recomputed_not_served(self, scheduler):
        cold = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        _, tensor_path = scheduler.store.evaluation_path(
            cold.fingerprints["evaluate"]
        )
        tensor_path.write_bytes(b"not an npz archive")
        recomputed = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        assert recomputed.state == "done"
        # Cut artifact still intact; evaluation detected corrupt -> miss.
        assert recomputed.cache_hits == {"cut": True, "evaluate": False}
        assert scheduler.store.stats.corrupt == 1
        assert _stable(recomputed.result) == _stable(cold.result)
        # And the recomputed artifact is healthy again.
        warm = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        assert warm.cache_hits == {"cut": True, "evaluate": True}

    def test_stats_shape(self, scheduler):
        scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
        stats = scheduler.stats()
        assert stats["jobs"]["submitted"] == 1
        assert stats["workers"] == 2
        assert stats["uptime_seconds"] > 0
        assert "cut" in stats["stage_seconds_mean"]
        assert stats["store"]["artifacts"] == {
            "cuts": 1, "evaluations": 1, "traces": 1,
        }


class TestPipelinePreloading:
    def test_load_cut_rejects_budget_violation(self):
        circuit = bv(6)
        cut = CutQC(circuit, 5).cut()
        with pytest.raises(ValueError, match="budget"):
            CutQC(circuit, 3).load_cut(cut)

    def test_load_cut_rejects_wrong_circuit(self):
        cut = CutQC(bv(6), 5).cut()
        with pytest.raises(ValueError, match="circuit"):
            CutQC(bv(8), 7).load_cut(cut)

    def test_load_results_requires_matching_count(self):
        pipeline = CutQC(bv(6), 5)
        results = pipeline.evaluate()
        fresh = CutQC(bv(6), 5)
        with pytest.raises(ValueError, match="subcircuits"):
            fresh.load_results(results[:1])

    def test_preloaded_pipeline_reproduces_fd(self):
        pipeline = CutQC(bv(6), 5)
        truth = pipeline.fd_query().probabilities
        warm = CutQC(bv(6), 5)
        warm.load_cut(pipeline.cut(), pipeline.solution)
        warm.load_results(pipeline.evaluate())
        assert np.array_equal(warm.fd_query().probabilities, truth)
