"""Tests for shot-level DD evaluation and shot-budget estimation."""

import numpy as np
import pytest

from repro import cut_circuit
from repro.library import bv, bv_solution
from repro.postprocess.dd import DynamicDefinitionQuery
from repro.postprocess.shots import (
    ShotBasedTensorProvider,
    estimate_required_shots,
)
from repro.sim import simulate_probabilities
from repro.utils import marginalize


class TestShotBasedProvider:
    def test_protocol_fields(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        provider = ShotBasedTensorProvider(cut, shots=128, seed=0)
        assert provider.num_qubits == 5
        assert provider.num_cuts == 1

    def test_shots_validated(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            ShotBasedTensorProvider(cut, shots=0)

    def test_converges_to_exact_marginal(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        provider = ShotBasedTensorProvider(cut, shots=200_000, seed=1)
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        recursion = query.step()
        truth = marginalize(simulate_probabilities(fig4_circuit), [0, 1], 5)
        assert np.allclose(recursion.probabilities, truth, atol=0.02)

    def test_more_shots_less_error(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        truth = marginalize(simulate_probabilities(fig4_circuit), [0, 1], 5)

        def error(shots):
            deviations = []
            for seed in range(4):
                provider = ShotBasedTensorProvider(cut, shots=shots, seed=seed)
                query = DynamicDefinitionQuery(provider, max_active_qubits=2)
                recursion = query.step()
                deviations.append(np.abs(recursion.probabilities - truth).max())
            return float(np.mean(deviations))

        assert error(50_000) < error(500)

    def test_locates_bv_solution_with_shots(self):
        circuit = bv(6)
        cut = cut_circuit(circuit, [(5, 1)])
        provider = ShotBasedTensorProvider(cut, shots=4096, seed=3)
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(3)
        states = query.solution_states(threshold=0.5)
        assert states and states[0][0] == bv_solution(6)

    def test_distribution_cache_reused(self, fig4_circuit):
        calls = []

        def backend(circuit):
            calls.append(1)
            return simulate_probabilities(circuit)

        cut = cut_circuit(fig4_circuit, [(2, 1)])
        provider = ShotBasedTensorProvider(cut, shots=64, backend=backend, seed=0)
        query = DynamicDefinitionQuery(provider, max_active_qubits=1)
        query.run(2)
        # 7 physical variants total, simulated once despite 2 recursions.
        assert sum(calls) == 7

    def test_bins_roughly_normalized(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        provider = ShotBasedTensorProvider(cut, shots=20_000, seed=5)
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        recursion = query.step()
        assert np.isclose(recursion.probabilities.sum(), 1.0, atol=0.05)


class TestShotEstimator:
    def test_scaling_with_cuts(self, fig4_circuit):
        one_cut = cut_circuit(fig4_circuit, [(2, 1)])
        needed_1 = estimate_required_shots(one_cut, target_error=0.01)
        from repro import QuantumCircuit

        chain = QuantumCircuit(6)
        for q in range(5):
            chain.cx(q, q + 1)
        two_cuts = cut_circuit(chain, [(2, 1), (4, 1)])
        needed_2 = estimate_required_shots(two_cuts, target_error=0.01)
        assert needed_2 > needed_1

    def test_scaling_with_target(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        loose = estimate_required_shots(cut, target_error=0.1)
        tight = estimate_required_shots(cut, target_error=0.01)
        assert tight == pytest.approx(loose * 100, rel=0.01)

    def test_target_validated(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            estimate_required_shots(cut, target_error=0.0)

    def test_bound_is_sufficient_in_practice(self, fig4_circuit):
        """Shots at the bound achieve the target error (it is loose)."""
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        target = 0.05
        shots = estimate_required_shots(cut, target_error=target)
        provider = ShotBasedTensorProvider(cut, shots=shots, seed=11)
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        recursion = query.step()
        truth = marginalize(simulate_probabilities(fig4_circuit), [0, 1], 5)
        assert np.abs(recursion.probabilities - truth).max() < target
