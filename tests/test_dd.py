"""Tests for the dynamic-definition query (Algorithm 1)."""

import numpy as np
import pytest

from repro import (
    CutQC,
    QuantumCircuit,
    cut_circuit,
    evaluate_subcircuit,
    simulate_probabilities,
    supremacy,
)
from repro.library import bv, bv_solution
from repro.metrics import chi_square_loss
from repro.postprocess import (
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
    binned_tensor,
    build_term_tensor,
)
from repro.utils import marginalize


def _provider(circuit, cuts):
    cut = cut_circuit(circuit, cuts)
    results = [evaluate_subcircuit(s) for s in cut.subcircuits]
    return cut, PrecomputedTensorProvider(cut, results=results)


class TestBinnedTensor:
    def test_merged_matches_marginal(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        sub = cut.subcircuits[0]
        tensor = build_term_tensor(evaluate_subcircuit(sub))
        roles = {w: ("merged",) for w in range(5)}
        for line in sub.output_lines:
            roles[line.wire] = ("active",)
        collapsed, wires = binned_tensor(tensor, sub, roles)
        assert wires == [line.wire for line in sub.output_lines]
        assert np.allclose(collapsed.data, tensor.data)

    def test_full_merge_sums_rows(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        sub = cut.subcircuits[0]
        tensor = build_term_tensor(evaluate_subcircuit(sub))
        roles = {w: ("merged",) for w in range(5)}
        collapsed, wires = binned_tensor(tensor, sub, roles)
        assert wires == []
        assert np.allclose(collapsed.data[:, 0], tensor.data.sum(axis=1))

    def test_fixed_selects_bit(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        sub = cut.subcircuits[0]
        tensor = build_term_tensor(evaluate_subcircuit(sub))
        wire0 = sub.output_lines[0].wire
        roles = {w: ("merged",) for w in range(5)}
        roles[wire0] = ("fixed", 1)
        collapsed, _ = binned_tensor(tensor, sub, roles)
        full = tensor.data.reshape(4, 2, 2)
        assert np.allclose(collapsed.data[:, 0], full[:, 1, :].sum(axis=1))

    def test_unknown_role_rejected(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        sub = cut.subcircuits[0]
        tensor = build_term_tensor(evaluate_subcircuit(sub))
        roles = {w: ("bogus",) for w in range(5)}
        with pytest.raises(ValueError):
            binned_tensor(tensor, sub, roles)


class TestDDRecursions:
    def test_first_recursion_bins_sum_to_one(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        recursion = query.step()
        assert np.isclose(recursion.probabilities.sum(), 1.0, atol=1e-9)
        assert recursion.active == (0, 1)
        assert recursion.fixed == {}

    def test_bins_match_true_marginal(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        recursion = query.step()
        truth = simulate_probabilities(fig4_circuit)
        expected = marginalize(truth, [0, 1], 5)
        assert np.allclose(recursion.probabilities, expected, atol=1e-9)

    def test_zoomed_recursion_matches_conditional(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.step()
        second = query.step()
        # The second recursion fixes the highest-probability first-bin
        # state and activates the next two wires.
        assert set(second.fixed) == {0, 1}
        assert second.active == (2, 3)
        truth = simulate_probabilities(fig4_circuit).reshape((2,) * 5)
        conditional = truth[second.fixed[0], second.fixed[1]].sum(axis=2)
        assert np.allclose(second.probabilities, conditional.reshape(-1), atol=1e-9)

    def test_bv_solution_located_like_fig7(self):
        """The paper's Fig. 7: 4-qubit BV on 3-qubit devices, 1 active
        qubit per recursion, solution found in 4 recursions."""
        circuit = bv(4)
        pipeline = CutQC(circuit, max_subcircuit_qubits=3)
        query = pipeline.dd_query(max_active_qubits=1, max_recursions=4)
        assert len(query.recursions) == 4
        states = query.solution_states(threshold=0.9)
        assert states[0][0] == bv_solution(4)
        assert states[0][1] == pytest.approx(1.0, abs=1e-9)

    def test_recursion_vector_lengths_bounded(self):
        circuit = bv(4)
        pipeline = CutQC(circuit, max_subcircuit_qubits=3)
        query = pipeline.dd_query(max_active_qubits=1, max_recursions=4)
        for recursion in query.recursions:
            assert recursion.probabilities.size == 2  # 2^1 per Fig. 7

    def test_active_order_override(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(
            provider, max_active_qubits=2, active_order=[4, 3, 2, 1, 0]
        )
        recursion = query.step()
        assert recursion.active == (4, 3)

    def test_invalid_active_order(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            DynamicDefinitionQuery(provider, 2, active_order=[0, 0, 1, 2, 3])

    def test_max_active_validation(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            DynamicDefinitionQuery(provider, 0)

    def test_run_stops_when_fully_resolved(self):
        circuit = bv(4)
        pipeline = CutQC(circuit, max_subcircuit_qubits=3)
        query = pipeline.dd_query(max_active_qubits=2, max_recursions=50)
        # 4 qubits at 2 active per recursion: after a couple of recursions
        # the top bin is fully resolved; run() must terminate early rather
        # than loop 50 times.
        assert len(query.recursions) < 50


class TestApproximateDistribution:
    def test_partition_tiles_space(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(3)
        approx = query.approximate_distribution()
        assert np.isclose(approx.sum(), 1.0, atol=1e-8)

    def test_chi2_decreases_with_recursions_like_fig8(self):
        circuit = supremacy(4, seed=0)
        truth = simulate_probabilities(circuit)
        pipeline = CutQC(circuit, max_subcircuit_qubits=3)
        query = pipeline.dd_query(max_active_qubits=2, max_recursions=1)
        losses = [chi_square_loss(query.approximate_distribution(), truth)]
        for _ in range(3):
            query.step()
            losses.append(chi_square_loss(query.approximate_distribution(), truth))
        assert losses[-1] <= losses[0]

    def test_exact_when_all_qubits_active(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=5)
        query.step()
        truth = simulate_probabilities(fig4_circuit)
        assert np.allclose(query.approximate_distribution(), truth, atol=1e-9)

    def test_current_partition_excludes_zoomed(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(2)
        zoomed = [b for b in query.bins if b.zoomed]
        assert len(zoomed) == 1
        assert all(not b.zoomed for b in query.current_partition)


class TestBinSemantics:
    def test_bin_assignment_decoding(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.step()
        bin_10 = next(b for b in query.bins if b.index == 0b10)
        assert bin_10.assignment == {0: 1, 1: 0}
        assert bin_10.merged_wires(5) == [2, 3, 4]

    def test_num_resolved_matches_assignment(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(2)
        for candidate in query.bins:
            assert candidate.num_resolved == len(candidate.assignment)


class TestBatchedZoom:
    def test_zoom_width_locates_bv_solution(self):
        circuit = bv(6)
        pipeline = CutQC(circuit, max_subcircuit_qubits=4)
        query = pipeline.dd_query(
            max_active_qubits=2, max_recursions=8, zoom_width=3
        )
        states = query.solution_states(threshold=0.9)
        assert states and states[0][0] == bv_solution(6)

    def test_rounds_fewer_than_recursions(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(
            provider, max_active_qubits=1, zoom_width=4
        )
        query.run(9)
        stats = query.stats()
        assert stats.num_recursions == len(query.recursions)
        # Root round is width 1, then each round expands up to 4 bins.
        assert stats.num_rounds < stats.num_recursions

    def test_round_bins_sum_to_parent_mass(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(
            provider, max_active_qubits=2, zoom_width=2
        )
        query.run(3)
        for recursion in query.recursions[1:]:
            parent = recursion.parent_bin
            assert parent is not None and parent.zoomed
            assert np.isclose(
                recursion.probabilities.sum(), parent.probability, atol=1e-9
            )

    def test_parallel_zoom_matches_serial(self, fig4_circuit):
        _, provider_a = _provider(fig4_circuit, [(2, 1)])
        _, provider_b = _provider(fig4_circuit, [(2, 1)])
        from repro.postprocess import ContractionEngine

        serial = DynamicDefinitionQuery(
            provider_a,
            max_active_qubits=1,
            zoom_width=2,
            engine=ContractionEngine(strategy="kron", workers=1),
        )
        parallel = DynamicDefinitionQuery(
            provider_b,
            max_active_qubits=1,
            zoom_width=2,
            engine=ContractionEngine(strategy="kron", workers=2),
        )
        serial.run(5)
        parallel.run(5)
        assert len(serial.recursions) == len(parallel.recursions)
        for got, want in zip(parallel.recursions, serial.recursions):
            assert got.fixed == want.fixed
            assert np.allclose(got.probabilities, want.probabilities, atol=1e-12)


class TestDDStats:
    def test_stats_fields(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(3)
        stats = query.stats()
        assert stats.num_recursions == 3
        assert stats.num_bins == len(query.bins)
        assert stats.total_elapsed_seconds >= 0.0
        assert stats.cache_hits + stats.cache_misses == 3 * 2  # 2 subcircuits
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        document = stats.as_dict()
        assert document["num_recursions"] == 3
        assert "cache_hit_rate" in document

    def test_cache_disabled_reports_zero(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results, cache=False)
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(3)
        stats = query.stats()
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0

    def test_stats_snapshot_on_reused_provider(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        first = DynamicDefinitionQuery(provider, max_active_qubits=2)
        first.run(3)
        second = DynamicDefinitionQuery(provider, max_active_qubits=2)
        second.run(3)
        stats = second.stats()
        # The second query's counters cover only its own collapses, not
        # the provider's lifetime (2 subcircuits x 3 recursions).
        assert stats.cache_hits + stats.cache_misses == 3 * 2


class TestProgressiveRun:
    def test_repeated_run_deepens(self, fig4_circuit):
        _, provider = _provider(fig4_circuit, [(2, 1)])
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.run(2)
        assert len(query.recursions) == 2
        query.run(1)  # run() adds *further* recursions on repeat calls
        assert len(query.recursions) == 3
