"""Tests for cut-term attribution (Eqs. 2-3 of the paper)."""


import numpy as np
import pytest

from repro import QuantumCircuit, cut_circuit, evaluate_subcircuit
from repro.postprocess import (
    DOWNSTREAM_TERMS,
    UPSTREAM_TERMS,
    attributed_vector,
    build_term_tensor,
)
from repro.sim import simulate_probabilities


@pytest.fixture
def fig4_cut(fig4_circuit):
    return cut_circuit(fig4_circuit, [(2, 1)])


class TestTransformMatrices:
    def test_upstream_rows_match_eq2(self):
        # t1 = I + Z, t2 = I - Z, t3 = X, t4 = Y over basis order I,X,Y,Z.
        assert np.array_equal(
            UPSTREAM_TERMS,
            [[1, 0, 0, 1], [1, 0, 0, -1], [0, 1, 0, 0], [0, 0, 1, 0]],
        )

    def test_downstream_rows_match_eq2(self):
        assert np.array_equal(
            DOWNSTREAM_TERMS,
            [[1, 0, 0, 0], [0, 1, 0, 0], [-1, -1, 2, 0], [-1, -1, 0, 2]],
        )

    def test_single_qubit_wire_identity(self):
        # The 4-term expansion must resolve the identity channel: for any
        # single-qubit state rho prepared upstream and read downstream,
        # 1/2 sum_t p_up(t) * q_down(t) must equal the original
        # distribution.  Check with a one-gate circuit cut in half.
        circuit = QuantumCircuit(2)
        circuit.ry(0.9, 0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)  # second gate so there is an edge to cut
        circuit.ry(0.4, 1)
        cut = cut_circuit(circuit, [(0, 1), (1, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        from repro.postprocess import reconstruct_full

        reconstruction = reconstruct_full(cut, results)
        assert np.allclose(
            reconstruction.probabilities, simulate_probabilities(circuit), atol=1e-10
        )


class TestAttributedVector:
    def test_i_basis_is_marginal(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        result = evaluate_subcircuit(up)
        raw = result.vector((), ("Z",))
        attributed = attributed_vector(up, raw, ("I",))
        # I-basis attribution sums both outcomes: a plain marginal.
        from repro.utils import marginalize

        keep = [line.line for line in up.output_lines]
        assert np.allclose(attributed, marginalize(raw, keep, up.width))

    def test_z_basis_signs(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        result = evaluate_subcircuit(up)
        raw = result.vector((), ("Z",))
        attributed = attributed_vector(up, raw, ("Z",))
        # By Eq. 3: p(x) with meas-qubit 0 enters +, 1 enters -.
        tensor = raw.reshape((2,) * up.width)
        meas_axis = up.meas_lines[0].line
        signed = np.take(tensor, 0, axis=meas_axis) - np.take(
            tensor, 1, axis=meas_axis
        )
        assert np.allclose(attributed, signed.reshape(-1))

    def test_basis_count_checked(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        with pytest.raises(ValueError):
            attributed_vector(up, np.zeros(8), ())

    def test_attributed_vector_can_be_negative(self, fig4_cut):
        up = fig4_cut.subcircuits[0]
        result = evaluate_subcircuit(up)
        attributed = attributed_vector(up, result.vector((), ("X",)), ("X",))
        # Signed pseudo-probabilities are not distributions in general.
        assert attributed.min() < 0 or not np.isclose(attributed.sum(), 1.0)


class TestTermTensor:
    def test_shape_and_order(self, fig4_cut):
        for sub in fig4_cut.subcircuits:
            tensor = build_term_tensor(evaluate_subcircuit(sub))
            assert tensor.data.shape == (4, 1 << sub.num_effective)
            assert tensor.cut_order == [0]

    def test_row_for_terms(self, fig4_cut):
        tensor = build_term_tensor(
            evaluate_subcircuit(fig4_cut.subcircuits[0])
        )
        assert tensor.row_for({0: 2}) == 2
        assert np.array_equal(tensor.vector({0: 1}), tensor.data[1])

    def test_upstream_terms_hand_computed(self, fig4_cut):
        """Check t1..t4 against direct formulas on raw variant outputs."""
        up = fig4_cut.subcircuits[0]
        result = evaluate_subcircuit(up)
        tensor = build_term_tensor(result)

        def attributed(basis):
            physical = "Z" if basis == "I" else basis
            return attributed_vector(up, result.vector((), (physical,)), (basis,))

        p_i, p_x, p_y, p_z = (attributed(b) for b in "IXYZ")
        assert np.allclose(tensor.data[0], p_i + p_z)
        assert np.allclose(tensor.data[1], p_i - p_z)
        assert np.allclose(tensor.data[2], p_x)
        assert np.allclose(tensor.data[3], p_y)

    def test_downstream_terms_hand_computed(self, fig4_cut):
        down = fig4_cut.subcircuits[1]
        result = evaluate_subcircuit(down)
        tensor = build_term_tensor(result)
        q = {label: result.vector((label,), ()) for label in
             ("zero", "one", "plus", "plus_i")}
        assert np.allclose(tensor.data[0], q["zero"])
        assert np.allclose(tensor.data[1], q["one"])
        assert np.allclose(tensor.data[2], 2 * q["plus"] - q["zero"] - q["one"])
        assert np.allclose(tensor.data[3], 2 * q["plus_i"] - q["zero"] - q["one"])

    def test_multi_cut_axis_order_sorted_by_cut_id(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 2).cx(0, 1)
        cut = cut_circuit(circuit, [(0, 1), (0, 2)])
        for sub in cut.subcircuits:
            tensor = build_term_tensor(evaluate_subcircuit(sub))
            assert tensor.cut_order == sorted(tensor.cut_order)
            assert tensor.data.shape[0] == 4 ** len(tensor.cut_order)

    def test_nonzero_flags(self, fig4_cut):
        tensor = build_term_tensor(
            evaluate_subcircuit(fig4_cut.subcircuits[0])
        )
        for row in range(4):
            assert tensor.nonzero[row] == bool(np.any(tensor.data[row] != 0))


class TestPaperExampleSection32:
    """Replicate the p_{1,i} / p_{2,i} bookkeeping of §3.2 numerically."""

    def test_reconstructed_state_matches_manual_sum(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        up, down = cut.subcircuits
        up_result = evaluate_subcircuit(up)
        down_result = evaluate_subcircuit(down)
        up_tensor = build_term_tensor(up_result)
        down_tensor = build_term_tensor(down_result)

        # Manual reconstruction of p(|01010>).
        target = "01010"
        # Upstream effective outputs are wires 0,1; downstream wires 2,3,4.
        up_index = int(target[:2], 2)
        down_index = int(target[2:], 2)
        manual = 0.5 * sum(
            up_tensor.data[t][up_index] * down_tensor.data[t][down_index]
            for t in range(4)
        )
        truth = simulate_probabilities(fig4_circuit)
        from repro.utils import bitstring_to_index

        assert np.isclose(manual, truth[bitstring_to_index(target)], atol=1e-10)
