"""Tests for the QAOA extension workload."""

import numpy as np
import pytest

from repro import CutQC, simulate_probabilities
from repro.library.qaoa import (
    maxcut_cost,
    qaoa_maxcut,
    random_regular_graph,
    ring_graph,
)


class TestGraphs:
    def test_ring_edges(self):
        assert ring_graph(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_regular_graph_degree(self):
        edges = random_regular_graph(8, degree=3, seed=0)
        degree = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        assert all(d == 3 for d in degree.values())

    def test_regular_graph_validation(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, degree=4)
        with pytest.raises(ValueError):
            random_regular_graph(5, degree=3)


class TestCircuit:
    def test_structure(self):
        circuit = qaoa_maxcut(5, layers=2, seed=1)
        ops = circuit.count_ops()
        assert ops["h"] == 5
        assert ops["rzz"] == 2 * len(ring_graph(5))
        assert ops["rx"] == 10

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(4, layers=2, parameters=[0.1])
        with pytest.raises(ValueError):
            qaoa_maxcut(4, edges=[(0, 0)])
        with pytest.raises(ValueError):
            qaoa_maxcut(4, layers=0)

    def test_deterministic_by_seed(self):
        assert qaoa_maxcut(5, seed=3) == qaoa_maxcut(5, seed=3)

    def test_fully_connected(self):
        assert qaoa_maxcut(6, seed=0).is_fully_connected()


class TestCost:
    def test_known_states(self):
        edges = ring_graph(4)
        # |0101> cuts every ring edge.
        probs = np.zeros(16)
        probs[0b0101] = 1.0
        assert maxcut_cost(probs, edges, 4) == 4.0
        # |0000> cuts nothing.
        probs = np.zeros(16)
        probs[0] = 1.0
        assert maxcut_cost(probs, edges, 4) == 0.0

    def test_size_checked(self):
        with pytest.raises(ValueError):
            maxcut_cost(np.ones(8) / 8, ring_graph(4), 4)

    def test_qaoa_beats_random_guessing(self):
        edges = ring_graph(6)
        # gamma/beta near the p=1 ring optimum (grid-searched offline).
        circuit = qaoa_maxcut(6, edges=edges, parameters=[1.2, 0.4])
        probs = simulate_probabilities(circuit)
        uniform = np.full(64, 1 / 64)
        assert maxcut_cost(probs, edges, 6) > maxcut_cost(uniform, edges, 6)


class TestCutting:
    def test_ring_qaoa_cuts_and_reconstructs(self):
        edges = ring_graph(6)
        circuit = qaoa_maxcut(6, edges=edges, seed=2)
        pipeline = CutQC(circuit, max_subcircuit_qubits=5)
        result = pipeline.fd_query()
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-8)

    def test_cost_preserved_through_cutting(self):
        edges = ring_graph(6)
        circuit = qaoa_maxcut(6, edges=edges, seed=2)
        pipeline = CutQC(circuit, max_subcircuit_qubits=5)
        reconstructed = pipeline.fd_query().probabilities
        truth = simulate_probabilities(circuit)
        assert maxcut_cost(reconstructed, edges, 6) == pytest.approx(
            maxcut_cost(truth, edges, 6), abs=1e-8
        )

    def test_dense_graph_is_harder_to_cut(self):
        from repro.circuits.analysis import min_bipartition_cuts

        ring = qaoa_maxcut(8, edges=ring_graph(8), seed=0)
        dense = qaoa_maxcut(8, edges=random_regular_graph(8, 3, seed=0), seed=0)
        assert min_bipartition_cuts(dense) >= min_bipartition_cuts(ring)
