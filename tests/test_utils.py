"""Tests for bit/distribution helpers in repro.utils."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    bitstring_to_index,
    index_to_bitstring,
    is_distribution,
    kron_all,
    marginalize,
    normalize_distribution,
    permute_qubits,
)


class TestBitstringConversions:
    def test_round_trip_examples(self):
        assert bitstring_to_index("010") == 2
        assert bitstring_to_index("101") == 5
        assert index_to_bitstring(2, 3) == "010"
        assert index_to_bitstring(0, 4) == "0000"

    def test_qubit_zero_is_msb(self):
        assert bitstring_to_index("100") == 4

    def test_accepts_integer_sequences(self):
        assert bitstring_to_index([1, 0, 1]) == 5

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bitstring_to_index("012")

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bitstring(8, 3)
        with pytest.raises(ValueError):
            index_to_bitstring(-1, 3)

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_round_trip_property(self, n, data):
        index = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        assert bitstring_to_index(index_to_bitstring(index, n)) == index


class TestPermuteQubits:
    def test_identity(self):
        vector = np.arange(8.0)
        assert np.array_equal(permute_qubits(vector, [0, 1, 2]), vector)

    def test_swap_two_qubits(self):
        # |01> (index 1) becomes |10> (index 2) when qubits swap.
        vector = np.zeros(4)
        vector[1] = 1.0
        swapped = permute_qubits(vector, [1, 0])
        assert swapped[2] == 1.0 and swapped.sum() == 1.0

    def test_three_cycle(self):
        vector = np.zeros(8)
        vector[0b011] = 1.0  # q0=0, q1=1, q2=1
        # new qubit i takes old qubit perm[i]: perm = [2, 0, 1]
        out = permute_qubits(vector, [2, 0, 1])
        assert out[0b101] == 1.0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            permute_qubits(np.zeros(8), [0, 1])

    def test_invalid_permutation(self):
        with pytest.raises(ValueError):
            permute_qubits(np.zeros(4), [0, 0])

    @given(
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_permutation_preserves_multiset(self, n, rand):
        rng = np.random.default_rng(rand.randint(0, 2**31))
        vector = rng.random(1 << n)
        perm = list(range(n))
        rand.shuffle(perm)
        out = permute_qubits(vector, perm)
        assert np.allclose(sorted(out), sorted(vector))

    @given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
    def test_permutation_inverse_round_trip(self, n, rand):
        rng = np.random.default_rng(rand.randint(0, 2**31))
        vector = rng.random(1 << n)
        perm = list(range(n))
        rand.shuffle(perm)
        inverse = [perm.index(i) for i in range(n)]
        assert np.allclose(
            permute_qubits(permute_qubits(vector, perm), inverse), vector
        )


class TestMarginalize:
    def test_keep_all_identity(self):
        vector = np.arange(8.0)
        assert np.array_equal(marginalize(vector, [0, 1, 2], 3), vector)

    def test_marginal_of_product(self):
        p = np.array([0.25, 0.75])
        q = np.array([0.4, 0.6])
        joint = np.kron(p, q)
        assert np.allclose(marginalize(joint, [0], 2), p)
        assert np.allclose(marginalize(joint, [1], 2), q)

    def test_keep_order_respected(self):
        p = np.array([0.25, 0.75])
        q = np.array([0.4, 0.6])
        joint = np.kron(p, q)
        assert np.allclose(marginalize(joint, [1, 0], 2), np.kron(q, p))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            marginalize(np.zeros(4), [0, 0], 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            marginalize(np.zeros(4), [2], 2)

    def test_total_probability_preserved(self):
        rng = np.random.default_rng(0)
        vector = rng.random(32)
        out = marginalize(vector, [1, 3], 5)
        assert np.isclose(out.sum(), vector.sum())


class TestKronAll:
    def test_two_vectors(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        assert np.array_equal(kron_all([a, b]), np.kron(a, b))

    def test_single_vector_copied(self):
        a = np.array([1.0, 2.0])
        out = kron_all([a])
        out[0] = 99
        assert a[0] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kron_all([])

    def test_associativity(self):
        vs = [np.array([1.0, 2.0]), np.array([0.5, 3.0]), np.array([2.0, 0.0])]
        left = np.kron(np.kron(vs[0], vs[1]), vs[2])
        assert np.allclose(kron_all(vs), left)


class TestDistributionHelpers:
    def test_normalize(self):
        out = normalize_distribution(np.array([1.0, 3.0]))
        assert np.allclose(out, [0.25, 0.75])

    def test_normalize_zero_vector_passthrough(self):
        out = normalize_distribution(np.zeros(4))
        assert np.allclose(out, 0.0)

    def test_is_distribution(self):
        assert is_distribution(np.array([0.5, 0.5]))
        assert not is_distribution(np.array([0.5, 0.6]))
        assert not is_distribution(np.array([-0.1, 1.1]))
