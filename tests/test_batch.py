"""Batched+fused variant simulation: parity with the per-variant path.

The batched engine must be a pure performance change: for any
subcircuit, every ``(inits, bases)`` distribution derived from fused
init-batch body passes has to match the serial per-variant simulation to
1e-10, and the executor's dedup/strategy accounting must stay coherent
under the ``batched`` strategy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CutQC, QuantumCircuit, cut_circuit_from_assignment
from repro.circuits import build_circuit_graph
from repro.core.executor import VariantExecutor
from repro.cutting import (
    batched_variant_probabilities,
    evaluate_subcircuit,
    num_physical_variants,
)
from repro.cutting.variants import VariantCircuitFactory, generate_variants
from repro.library import get_benchmark
from repro.postprocess import ShotBasedTensorProvider, WorkerPool
from repro.sim import (
    BatchedStatevector,
    Statevector,
    fuse_gates,
    simulate_probabilities,
)
from repro.sim.statevector import INITIAL_STATES
from tests.conftest import random_connected_circuit


def random_small_cut(circuit, seed, max_cuts=2):
    """A random bipartition whose implied cut set is small (or None)."""
    graph = build_circuit_graph(circuit)
    rng = np.random.default_rng(seed)
    for _ in range(60):
        assignment = rng.integers(0, 2, size=graph.num_vertices)
        if not (0 < assignment.sum() < graph.num_vertices):
            continue
        num_cuts = sum(
            1
            for edge in graph.edges
            if assignment[edge.source] != assignment[edge.target]
        )
        if num_cuts <= max_cuts:
            return cut_circuit_from_assignment(
                circuit, list(assignment), graph=graph
            )
    return None


# ----------------------------------------------------------------------
# Gate fusion
# ----------------------------------------------------------------------

class TestFusion:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=4),
    )
    def test_fused_matches_unfused(self, n, seed, width):
        circuit = random_connected_circuit(n, 2 * n, seed)
        truth = simulate_probabilities(circuit)
        state = BatchedStatevector(n, 1)
        state.apply_fused(fuse_gates(circuit, width))
        assert np.allclose(state.probabilities()[0], truth, atol=1e-10)

    def test_fusion_reduces_op_count(self):
        circuit = get_benchmark("bv", 8)
        ops = fuse_gates(circuit, 2)
        assert len(ops) < len(circuit)
        for op in ops:
            assert 1 <= op.num_qubits <= 2
            assert op.matrix.shape == (1 << op.num_qubits,) * 2

    def test_width_one_folds_single_qubit_runs(self):
        circuit = QuantumCircuit(2).h(0).t(0).s(0).cx(0, 1).h(1)
        ops = fuse_gates(circuit, 1)
        # h/t/s fold into one 1q block; cx stays alone (wider than the
        # cap but always allowed its own block); h(1) folds after.
        widths = [op.num_qubits for op in ops]
        assert widths == [1, 2, 1]

    def test_commuting_gate_merges_past_disjoint_block(self):
        # h(0) arrives after cx(1, 2) but commutes with it, so it fuses
        # into the earlier block containing h(0)'s qubit.
        circuit = QuantumCircuit(3).h(0).cx(1, 2).h(0)
        ops = fuse_gates(circuit, 2)
        assert len(ops) == 2
        assert np.allclose(
            [op.matrix for op in ops if op.qubits == (0,)][0],
            np.eye(2),
            atol=1e-12,
        )

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError, match="fusion_width"):
            fuse_gates(QuantumCircuit(1).h(0), 0)
        # Unbounded widths would let one shared qubit grow a block (and
        # its dense unitary) to the whole circuit — hard-capped instead.
        with pytest.raises(ValueError, match="fusion_width"):
            fuse_gates(QuantumCircuit(1).h(0), 11)


# ----------------------------------------------------------------------
# Batched statevector
# ----------------------------------------------------------------------

class TestBatchedStatevector:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_members_match_serial_statevector(self, n, seed):
        circuit = random_connected_circuit(n, 2 * n, seed)
        rng = np.random.default_rng(seed)
        labels = list(INITIAL_STATES)
        members = [
            [INITIAL_STATES[labels[rng.integers(4)]] for _ in range(n)]
            for _ in range(5)
        ]
        batch = BatchedStatevector.from_product_batch(members)
        batch.apply_circuit(circuit, fusion_width=2)
        probabilities = batch.probabilities()
        assert probabilities.shape == (5, 1 << n)
        for row, states in enumerate(members):
            serial = Statevector.from_product(states).apply_circuit(circuit)
            assert np.allclose(
                probabilities[row], serial.probabilities(), atol=1e-10
            )
            assert np.allclose(
                batch.member(row).amplitudes(),
                serial.amplitudes(),
                atol=1e-10,
            )

    def test_applied_leaves_parent_untouched(self):
        batch = BatchedStatevector(2, 3)
        before = batch.amplitudes()
        rotated = batch.applied(np.array([[0, 1], [1, 0]], complex), [0])
        assert np.allclose(batch.amplitudes(), before)
        assert not np.allclose(rotated.amplitudes(), before)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchedStatevector(0, 1)
        with pytest.raises(ValueError):
            BatchedStatevector(2, 0)
        with pytest.raises(ValueError, match="does not act"):
            BatchedStatevector(2, 1).apply_matrix(np.eye(4), [0])
        with pytest.raises(ValueError, match="qubits"):
            BatchedStatevector(2, 1).apply_circuit(QuantumCircuit(3).h(0))


# ----------------------------------------------------------------------
# Batched variant evaluation parity (the tentpole's contract)
# ----------------------------------------------------------------------

class TestBatchedVariantParity:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=3),
    )
    def test_batched_matches_serial_all_combos(self, n, seed, width):
        circuit = random_connected_circuit(n, 2 * n, seed)
        cut = random_small_cut(circuit, seed + 1)
        if cut is None:
            return
        for subcircuit in cut.subcircuits:
            serial = evaluate_subcircuit(subcircuit)
            batched, passes = batched_variant_probabilities(
                subcircuit, fusion_width=width
            )
            assert passes == 1
            assert set(batched) == set(serial.probabilities)
            for key, vector in batched.items():
                assert np.abs(
                    vector - serial.probabilities[key]
                ).max() <= 1e-10

    def test_chunked_batches_cover_the_init_space(self, fig4_circuit):
        from repro import cut_circuit

        cut = cut_circuit(fig4_circuit, [(2, 1)])
        downstream = cut.subcircuits[1]  # one init line: 4 combos
        full, one_pass = batched_variant_probabilities(downstream)
        chunked, passes = batched_variant_probabilities(
            downstream, max_batch=1
        )
        assert one_pass == 1 and passes == 4
        assert set(full) == set(chunked)
        for key in full:
            assert np.allclose(full[key], chunked[key], atol=1e-12)

    def test_evaluate_subcircuit_fast_path_fields(self, fig4_circuit):
        from repro import cut_circuit

        cut = cut_circuit(fig4_circuit, [(2, 1)])
        for subcircuit in cut.subcircuits:
            result = evaluate_subcircuit(subcircuit, sim_batch=64)
            assert result.mode == "batched"
            assert result.num_body_passes == 1
            assert result.num_variants == num_physical_variants(subcircuit)
            assert result.dedup_ratio >= 1.0

    def test_fast_path_rejects_custom_backend(self, fig4_circuit):
        from repro import cut_circuit

        cut = cut_circuit(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError, match="sim_batch"):
            evaluate_subcircuit(
                cut.subcircuits[0],
                backend=lambda c: np.ones(1 << c.num_qubits),
                sim_batch=8,
            )

    def test_structural_key_matches_fingerprint_dedup(self, fig4_circuit):
        from repro import cut_circuit
        from repro.core.executor import circuit_fingerprint

        cut = cut_circuit(fig4_circuit, [(2, 1)])
        for subcircuit in cut.subcircuits:
            factory = VariantCircuitFactory(subcircuit)
            keys = set()
            fingerprints = set()
            for variant in generate_variants(subcircuit):
                keys.add(factory.structural_key(variant))
                circuit = factory.circuit(variant)
                fingerprints.add(circuit_fingerprint(circuit))
            assert len(keys) == len(fingerprints)


# ----------------------------------------------------------------------
# Executor strategy + report coherence
# ----------------------------------------------------------------------

class TestBatchedExecutor:
    @pytest.fixture
    def bv_cut(self):
        return CutQC(get_benchmark("bv", 11), max_subcircuit_qubits=6).cut()

    def test_parity_and_report(self, bv_cut):
        serial = VariantExecutor().run(bv_cut.subcircuits)
        executor = VariantExecutor(sim_batch=64)
        batched = executor.run(bv_cut.subcircuits)
        report = executor.last_report
        assert report.mode == "batched"
        assert report.sim_batch == 64 and report.fusion_width == 2
        assert report.num_variants == sum(
            num_physical_variants(s) for s in bv_cut.subcircuits
        )
        assert report.num_unique_circuits <= report.num_variants
        assert report.num_body_passes >= len(bv_cut.subcircuits)
        for a, b in zip(serial, batched):
            assert set(a.probabilities) == set(b.probabilities)
            for key in a.probabilities:
                assert np.abs(
                    a.probabilities[key] - b.probabilities[key]
                ).max() <= 1e-10

    def test_twin_subcircuits_share_batched_results(self, bv_cut):
        twin = [bv_cut.subcircuits[0], bv_cut.subcircuits[0]]
        executor = VariantExecutor(sim_batch=64)
        results = executor.run(twin)
        report = executor.last_report
        assert report.num_variants == 2 * report.num_unique_circuits
        assert report.dedup_ratio == pytest.approx(2.0)
        for key in results[0].probabilities:
            assert (
                results[0].probabilities[key]
                is results[1].probabilities[key]
            )

    def test_init_batches_ship_over_worker_pool(self, bv_cut):
        serial = VariantExecutor().run(bv_cut.subcircuits)
        with WorkerPool(workers=2) as pool:
            executor = VariantExecutor(sim_batch=1, worker_pool=pool)
            pooled = executor.run(bv_cut.subcircuits)
            stats = pool.stats()
        assert executor.last_report.mode == "batched-pool"
        assert stats.tasks_by_kind.get("variant-batch", 0) >= 2
        for a, b in zip(serial, pooled):
            for key in a.probabilities:
                assert np.abs(
                    a.probabilities[key] - b.probabilities[key]
                ).max() <= 1e-10

    def test_sim_batch_conflicts_rejected(self):
        with pytest.raises(ValueError, match="sim_batch"):
            VariantExecutor(
                backend=simulate_probabilities, sim_batch=8
            )
        with pytest.raises(ValueError, match="sim_batch"):
            VariantExecutor(sim_batch=-1)
        with pytest.raises(ValueError, match="fusion_width"):
            VariantExecutor(fusion_width=0)
        with pytest.raises(ValueError, match="fusion_width"):
            VariantExecutor(fusion_width=64)

    def test_pipeline_fd_query_parity(self):
        circuit = get_benchmark("bv", 10)
        pipeline = CutQC(circuit, max_subcircuit_qubits=6, sim_batch=64)
        result = pipeline.fd_query()
        truth = simulate_probabilities(circuit)
        assert np.abs(result.probabilities - truth).max() <= 1e-10
        assert pipeline.execution_report.mode == "batched"

    def test_pipeline_rejects_conflicting_backends(self):
        circuit = get_benchmark("bv", 6)
        with pytest.raises(ValueError, match="sim_batch"):
            CutQC(
                circuit,
                max_subcircuit_qubits=4,
                backend=simulate_probabilities,
                sim_batch=8,
            )


# ----------------------------------------------------------------------
# Shot provider: sampling from basis-rotated retained states
# ----------------------------------------------------------------------

class TestShotProviderBatched:
    def test_distribution_cache_filled_from_batched_states(self):
        circuit = get_benchmark("bv", 8)
        pipeline = CutQC(circuit, max_subcircuit_qubits=5)
        cut = pipeline.cut()
        provider = ShotBasedTensorProvider(
            cut, shots=512, seed=3, sim_batch=64
        )
        roles = {wire: ("active", None) for wire in range(8)}
        provider.collapsed(roles)
        assert provider._distribution_cache
        for subcircuit in cut.subcircuits:
            exact = evaluate_subcircuit(subcircuit)
            for (inits, bases), vector in exact.probabilities.items():
                key = (subcircuit.index, inits, bases)
                assert np.abs(
                    provider._distribution_cache[key] - vector
                ).max() <= 1e-10

    def test_dd_query_with_sim_batch_resolves_solution(self):
        circuit = get_benchmark("bv", 9)
        pipeline = CutQC(circuit, max_subcircuit_qubits=5, sim_batch=32)
        query = pipeline.dd_query(
            max_active_qubits=3,
            max_recursions=4,
            shots_per_variant=4096,
            seed=11,
        )
        assert len(query.recursions) >= 1
