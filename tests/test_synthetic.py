"""Tests for the synthetic (beyond-simulation-limit) tensor provider."""

import numpy as np
import pytest

from repro import cut_circuit, evaluate_subcircuit
from repro.library import bv, supremacy
from repro.postprocess import PrecomputedTensorProvider, RandomTensorProvider
from repro.postprocess.dd import DynamicDefinitionQuery
from repro.cutting import find_cuts


class TestRandomTensorProvider:
    def test_protocol_fields(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        provider = RandomTensorProvider(cut, seed=0)
        assert provider.num_qubits == 5
        assert provider.num_cuts == 1

    def test_collapsed_shapes_match_precomputed(self, fig4_circuit):
        """Synthetic tensors have exactly the shapes real ones would."""
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        real = PrecomputedTensorProvider(cut, results=results)
        fake = RandomTensorProvider(cut, seed=0)
        roles = {0: ("active",), 1: ("active",), 2: ("merged",),
                 3: ("fixed", 1), 4: ("merged",)}
        for (rt, rw), (ft, fw) in zip(real.collapsed(roles), fake.collapsed(roles)):
            assert rt.data.shape == ft.data.shape
            assert rw == fw
            assert rt.cut_order == ft.cut_order

    def test_uniform_distribution_mode(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        provider = RandomTensorProvider(cut, seed=0, distribution="uniform")
        roles = {w: ("active",) if w < 2 else ("merged",) for w in range(5)}
        collapsed = provider.collapsed(roles)
        # Uniform outputs kill every X/Y attributed term: rows 2 and 3 of
        # the upstream tensor are zero.
        upstream = next(
            t for t, _ in collapsed if t.subcircuit_index == 0
        )
        assert not upstream.nonzero[2] and not upstream.nonzero[3]

    def test_unknown_distribution_rejected(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            RandomTensorProvider(cut, distribution="gaussian")

    def test_seeded_reproducibility(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        roles = {w: ("merged",) if w else ("active",) for w in range(5)}
        a = RandomTensorProvider(cut, seed=9).collapsed(roles)
        b = RandomTensorProvider(cut, seed=9).collapsed(roles)
        for (ta, _), (tb, _) in zip(a, b):
            assert np.allclose(ta.data, tb.data)

    def test_memory_guard(self):
        circuit = supremacy(42, seed=0, depth=8)
        solution = find_cuts(circuit, 30, method="heuristic", max_cuts=8)
        cut = solution.apply(circuit)
        provider = RandomTensorProvider(cut, seed=0)
        # All 42 qubits active would need astronomically large tensors.
        roles = {w: ("active",) for w in range(42)}
        with pytest.raises(MemoryError):
            provider.collapsed(roles)


class TestLargeScaleDD:
    def test_dd_recursion_beyond_simulation_limit(self):
        """A 48-qubit BV DD recursion runs without any simulation."""
        circuit = bv(48)
        solution = find_cuts(circuit, 30, method="heuristic", max_cuts=8)
        cut = solution.apply(circuit)
        provider = RandomTensorProvider(cut, seed=2)
        query = DynamicDefinitionQuery(provider, max_active_qubits=10)
        recursion = query.step()
        assert recursion.probabilities.size == 1 << 10
        assert len(query.bins) == 1 << 10

    def test_multiple_recursions_zoom(self):
        circuit = bv(32)
        solution = find_cuts(circuit, 20, method="heuristic", max_cuts=8)
        cut = solution.apply(circuit)
        provider = RandomTensorProvider(cut, seed=3)
        query = DynamicDefinitionQuery(provider, max_active_qubits=6)
        query.run(3)
        assert len(query.recursions) == 3
        # Each later recursion fixes more qubits.
        fixed_counts = [len(r.fixed) for r in query.recursions]
        assert fixed_counts == sorted(fixed_counts)
