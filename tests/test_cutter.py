"""Tests for circuit cutting (subcircuit extraction + metadata)."""

import pytest

from repro import QuantumCircuit, cut_circuit, cut_circuit_from_assignment


class TestFig4Example:
    """The paper's worked example: one cut on q2 between the cZ ladder."""

    def test_two_subcircuits_of_three_qubits(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        assert cut.num_subcircuits == 2
        assert cut.num_cuts == 1
        assert [sub.width for sub in cut.subcircuits] == [3, 3]

    def test_line_roles(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        up, down = cut.subcircuits
        # Upstream subcircuit: q0, q1 outputs plus q2's measured segment.
        assert len(up.meas_lines) == 1 and len(up.init_lines) == 0
        assert up.num_effective == 2
        # Downstream: initialization line for q2's second segment, q3, q4.
        assert len(down.init_lines) == 1 and len(down.meas_lines) == 0
        assert down.num_effective == 3

    def test_cut_metadata(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        (wire_cut,) = cut.cuts
        assert wire_cut.wire == 2
        assert wire_cut.wire_index == 1
        assert wire_cut.upstream_subcircuit != wire_cut.downstream_subcircuit

    def test_single_qubit_gate_stays_upstream(self, fig4_circuit):
        # fig4 has t(2) between the cz(1,2) and cz(2,3): the cut at (2,1)
        # sits before cz(2,3), so the T belongs to the upstream piece.
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        up, down = cut.subcircuits
        assert "t" in up.circuit.count_ops()
        assert "t" not in down.circuit.count_ops()

    def test_gate_counts_preserved(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        total = sum(len(sub.circuit) for sub in cut.subcircuits)
        assert total == len(fig4_circuit)

    def test_output_wire_order_covers_all_wires(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        assert sorted(cut.output_wire_order()) == [0, 1, 2, 3, 4]

    def test_summary_mentions_cuts(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        assert "1 cut" in cut.summary()


class TestCutValidation:
    def test_incomplete_cut_set_rejected(self):
        # Two parallel wires connect the same pair of gates; cutting only
        # one of them does not disconnect the gate graph.
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        with pytest.raises(ValueError, match="does not cleanly separate"):
            cut_circuit(circuit, [(0, 1)])

    def test_single_edge_cut_is_clean(self, fig4_circuit):
        # Removing one bridge edge is a valid separating cut.
        cut = cut_circuit(fig4_circuit, [(1, 1)])
        assert cut.num_cuts == 1
        assert cut.num_subcircuits == 2

    def test_nonexistent_cut_position(self, fig4_circuit):
        with pytest.raises(KeyError):
            cut_circuit(fig4_circuit, [(0, 1)])

    def test_assignment_length_checked(self, fig4_circuit):
        with pytest.raises(ValueError):
            cut_circuit_from_assignment(fig4_circuit, [0, 1])


class TestMultiCut:
    def test_two_cuts_three_subcircuits(self):
        # A 6-qubit CX chain cut twice.
        circuit = QuantumCircuit(6)
        for q in range(5):
            circuit.cx(q, q + 1)
        cut = cut_circuit(circuit, [(2, 1), (4, 1)])
        assert cut.num_subcircuits == 3
        assert cut.num_cuts == 2
        assert sum(sub.num_effective for sub in cut.subcircuits) == 6

    def test_wire_returning_to_cluster_gets_new_line(self):
        # q0 interacts with q1 (cluster A), then q2 (cluster B), then q1
        # again -> cutting around the middle gives q0 three segments.
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 2).cx(0, 1)
        cut = cut_circuit(circuit, [(0, 1), (0, 2)])
        assert cut.num_cuts == 2
        widths = sorted(sub.width for sub in cut.subcircuits)
        assert widths == [2, 3]  # A holds q0(a), q0(c), q1; B holds q0(b), q2

    def test_middle_segment_has_both_roles(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 2).cx(0, 1)
        cut = cut_circuit(circuit, [(0, 1), (0, 2)])
        middle = [
            line
            for sub in cut.subcircuits
            for line in sub.lines
            if line.init_cut is not None and line.meas_cut is not None
        ]
        assert len(middle) == 1
        assert not middle[0].is_output

    def test_effective_counts_match_eq7(self):
        circuit = QuantumCircuit(6)
        for q in range(5):
            circuit.cx(q, q + 1)
        cut = cut_circuit(circuit, [(2, 1), (4, 1)])
        for sub in cut.subcircuits:
            alpha = sum(
                1 for line in sub.lines if line.init_cut is None
            )
            rho = len(sub.init_lines)
            O = len(sub.meas_lines)
            assert sub.num_effective == alpha + rho - O

    def test_assignment_relabelled_in_first_appearance_order(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        cut = cut_circuit_from_assignment(circuit, [5, 5, 2])
        assert cut.assignment == [0, 0, 1]


class TestGateEmission:
    def test_trailing_1q_gates_follow_last_segment(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1).t(0)
        cut = cut_circuit(circuit, [(0, 1), (1, 1)])
        later = cut.subcircuits[1]
        assert "t" in later.circuit.count_ops()

    def test_leading_1q_gates_go_to_first_segment(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1).cx(0, 1)
        cut = cut_circuit(circuit, [(0, 1), (1, 1)])
        first = cut.subcircuits[0]
        assert first.circuit.count_ops().get("h") == 2

    def test_subcircuit_gates_reference_local_lines(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        for sub in cut.subcircuits:
            for gate in sub.circuit:
                for qubit in gate.qubits:
                    assert 0 <= qubit < sub.width

    def test_max_subcircuit_width(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        assert cut.max_subcircuit_width() == 3
