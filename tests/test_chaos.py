"""Deterministic fault injection (:mod:`repro.chaos`) end to end.

This module is the fault-tolerance acceptance suite: every scenario
drives a *real* pipeline — pooled contractions, scheduler jobs, the HTTP
front — with chaos configured, and asserts the system recovers to the
bit-identical answer an unfaulted run produces:

* a worker SIGKILL'd mid-task is respawned and its task transparently
  re-executed (``worker_respawns``/``task_retries`` observable);
* a hung worker is detected via the per-task deadline, killed and its
  task retried;
* a task that kills its worker on *every* attempt is quarantined after
  its attempt budget — it fails alone, the pool survives;
* a pool whose respawn budget is exhausted turns unrecoverable, and the
  scheduler degrades the job to serial in-process evaluation
  (``degraded=true``) instead of failing it;
* transient store IO errors are absorbed by the staged-retry policy;
* a corrupted artifact is detected by checksum and recomputed;
* the overloaded front door answers a typed 503.
"""

import numpy as np
import pytest

from repro import CutQC, chaos, evaluate_subcircuit
from repro.faults import (
    ChaosInjectedError,
    PoisonedTaskError,
    PoolUnrecoverableError,
    TransientFault,
    WorkerCrashError,
    is_transient,
)
from repro.library import bv
from repro.obs.metrics import get_registry
from repro.postprocess import ContractionEngine, WorkerPool
from repro.postprocess.attribution import build_term_tensor
from repro.service import ArtifactStore, JobScheduler, JobSpec
from repro.service.api import ApiError, JobServiceAPI


@pytest.fixture(autouse=True)
def _chaos_off():
    """Every test starts and ends with chaos fully deactivated."""
    chaos.configure(None)
    yield
    chaos.configure(None)


@pytest.fixture(scope="module")
def contraction_case():
    """A small contraction batch plus its serially computed truth."""
    cut = CutQC(bv(8), max_subcircuit_qubits=5).cut()
    tensors = [build_term_tensor(evaluate_subcircuit(s))
               for s in cut.subcircuits]
    order = list(range(len(tensors)))
    batch = [(tensors, order, cut.num_cuts)] * 3
    serial = ContractionEngine(strategy="kron").contract_batch(batch)
    return batch, serial


def _bv_spec(**overrides):
    spec = {"benchmark": "bv", "qubits": 6, "device_size": 5, "query": "fd",
            "top": 3}
    spec.update(overrides)
    return JobSpec(**spec)


def _stable(result):
    document = dict(result)
    document.pop("elapsed_seconds", None)
    document.pop("stats", None)
    document.pop("stream", None)
    return document


class TestSpecGrammar:
    def test_parse_full_grammar(self):
        rules = chaos.parse_spec(
            "worker_exit@task=7;store_ioerror@p=0.1;slow_task=2.5s;"
            "corrupt_artifact@nth=3"
        )
        by_name = {rule.name: rule for rule in rules}
        assert by_name["worker_exit"].at == 7
        assert by_name["store_ioerror"].p == 0.1
        assert by_name["slow_task"].param == "2.5s"
        assert by_name["corrupt_artifact"].nth == 3

    def test_unknown_rule_and_selector_raise(self):
        with pytest.raises(ValueError, match="unknown chaos rule"):
            chaos.parse_spec("frobnicate")
        with pytest.raises(ValueError, match="unknown chaos selector"):
            chaos.parse_spec("worker_exit@when=later")

    def test_at_fires_once_and_skips_retries_unless_every(self):
        once, = chaos.parse_spec("worker_exit@task=3")
        assert not once.fires(ordinal=2, attempt=1)
        assert once.fires(ordinal=3, attempt=1)
        assert not once.fires(ordinal=3, attempt=2)  # retry survives
        always, = chaos.parse_spec("worker_exit@task=3@every")
        assert always.fires(ordinal=3, attempt=1)
        assert always.fires(ordinal=3, attempt=2)  # poisoned outright

    def test_p_selector_is_seed_deterministic(self):
        draws = []
        for _ in range(2):
            rule, = chaos.parse_spec("store_ioerror@p=0.5", seed=7)
            draws.append([rule.fires() for _ in range(32)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_configure_exports_and_clears_environment(self, monkeypatch):
        import os
        chaos.configure("slow_task=0.1", seed=3)
        assert chaos.enabled()
        assert chaos.active_spec() == "slow_task=0.1"
        assert os.environ["CHAOS_SPEC"] == "slow_task=0.1"
        assert os.environ["CHAOS_SEED"] == "3"
        chaos.configure(None)
        assert not chaos.enabled()
        assert "CHAOS_SPEC" not in os.environ
        assert "CHAOS_SEED" not in os.environ

    def test_disabled_hooks_are_inert(self):
        assert not chaos.enabled()
        chaos.on_worker_task(1, 1)
        chaos.on_pool_dispatch()
        chaos.on_store_read("cut")
        chaos.on_journal_append()
        assert chaos.on_store_write(b"payload") == b"payload"

    def test_taxonomy(self):
        assert is_transient(WorkerCrashError("boom"))
        assert is_transient(TransientFault("boom"))
        assert is_transient(OSError("disk sneeze"))
        assert not is_transient(PoolUnrecoverableError("dead"))
        assert not is_transient(PoisonedTaskError("poisoned"))
        assert not is_transient(ValueError("caller bug"))
        assert isinstance(ChaosInjectedError("x"), RuntimeError)


class TestPoolChaos:
    def test_worker_kill_respawns_and_matches_serial(self, contraction_case):
        """The headline recovery proof: SIGKILL mid-batch, bit-identical
        answer, one respawn and one retry on the books."""
        batch, serial = contraction_case
        respawns = get_registry().counter("repro_pool_worker_respawns_total")
        before = respawns.value()
        chaos.configure("worker_exit@task=2")
        with WorkerPool(workers=2) as pool:
            pooled = pool.contract_batch(batch, strategy="kron")
            stats = pool.stats()
        assert stats.worker_respawns == 1
        assert stats.task_retries == 1
        assert stats.tasks_failed == 0
        assert stats.tasks_quarantined == 0
        assert not pool.broken
        assert respawns.value() == before + 1
        for got, want in zip(pooled, serial):
            assert np.array_equal(got.vector, want.vector)
            np.testing.assert_allclose(got.vector, want.vector, atol=1e-10)
            assert got.num_skipped == want.num_skipped

    def test_hung_worker_is_killed_and_task_retried(self, contraction_case):
        """A task sleeping past ``task_timeout`` is treated as a death:
        the worker is killed, respawned, and the task re-run cleanly."""
        batch, serial = contraction_case
        chaos.configure("slow_task=30@task=1")
        with WorkerPool(workers=1, task_timeout=1.0) as pool:
            pooled = pool.contract_batch(batch[:1], strategy="kron")
            stats = pool.stats()
        assert stats.worker_respawns >= 1
        assert stats.task_retries >= 1
        assert stats.tasks_failed == 0
        assert np.array_equal(pooled[0].vector, serial[0].vector)

    def test_poisoned_task_is_quarantined_pool_survives(
        self, contraction_case
    ):
        """``@every`` re-kills on retry: after the attempt budget the task
        fails alone with PoisonedTaskError; the pool keeps serving."""
        batch, serial = contraction_case
        chaos.configure("worker_exit@task=1@every")
        with WorkerPool(
            workers=1, max_task_attempts=2, max_worker_respawns=10
        ) as pool:
            with pytest.raises(PoisonedTaskError, match="quarantined"):
                pool.contract_batch(batch[:1], strategy="kron")
            assert not pool.broken
            assert pool.stats().tasks_quarantined == 1
            # The next task (global id 2) is untargeted and sails through.
            pooled = pool.contract_batch(batch[:1], strategy="kron")
        assert np.array_equal(pooled[0].vector, serial[0].vector)

    def test_respawn_budget_exhaustion_marks_pool_broken(
        self, contraction_case
    ):
        batch, _ = contraction_case
        chaos.configure("worker_exit@task=1@every")
        with WorkerPool(workers=1, max_worker_respawns=0) as pool:
            with pytest.raises(PoolUnrecoverableError, match="respawn"):
                pool.contract_batch(batch[:1], strategy="kron")
            assert pool.broken
            # Once broken, every dispatch refuses fast — no new workers.
            with pytest.raises(PoolUnrecoverableError):
                pool.contract_batch(batch[:1], strategy="kron")

    def test_injected_task_error_is_not_retried(self, contraction_case):
        """Task exceptions are the caller's bug, not the pool's: they
        surface on first occurrence instead of burning retries."""
        batch, _ = contraction_case
        chaos.configure("task_error@task=1")
        with WorkerPool(workers=1) as pool:
            with pytest.raises(ChaosInjectedError):
                pool.contract_batch(batch[:1], strategy="kron")
            stats = pool.stats()
        assert stats.task_retries == 0
        assert stats.tasks_failed == 1
        assert not pool.broken


class TestSchedulerChaos:
    def test_transient_store_error_is_retried(self, tmp_path):
        """One injected OSError on the first cut-cache read: the stage
        retries and the job completes as if nothing happened."""
        retries = get_registry().counter(
            "repro_scheduler_stage_retries_total", labelnames=("stage",)
        )
        before = retries.value(stage="cut")
        scheduler = JobScheduler(ArtifactStore(tmp_path / "store"), workers=1)
        try:
            chaos.configure("store_ioerror@at=1")
            record = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
            assert record.state == "done", record.error
            assert record.attempts["cut"] == 2
            assert record.degraded is False
            assert record.result["top_states"][0]["state"] == "111111"
            assert retries.value(stage="cut") == before + 1
            assert record.as_dict()["attempts"]["cut"] == 2
        finally:
            scheduler.shutdown()

    def test_permanent_store_error_fails_after_budget(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1,
            max_retries=1, retry_backoff=0.01,
        )
        try:
            chaos.configure("store_ioerror@nth=1")  # every consultation
            record = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
            assert record.state == "failed"
            assert "chaos: injected store read error" in record.error
            assert record.attempts["cut"] == 2  # 1 try + max_retries
        finally:
            scheduler.shutdown()

    def test_corrupt_artifact_is_detected_and_recomputed(self, tmp_path):
        """Bit-flipped cut artifact: the checksum turns the warm read
        into a recorded corrupt miss and the stage recomputes."""
        store = ArtifactStore(tmp_path / "store")
        scheduler = JobScheduler(store, workers=1)
        try:
            chaos.configure("corrupt_artifact@at=1")  # first store write
            cold = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
            assert cold.state == "done", cold.error
            chaos.configure(None)
            second = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
            assert second.state == "done", second.error
            # The corrupted cut can't serve the warm path; the evaluation
            # artifact (written after the targeted first write) still does.
            assert second.cache_hits == {"cut": False, "evaluate": True}
            assert _stable(second.result) == _stable(cold.result)
            assert store.as_dict()["corrupt"] >= 1
        finally:
            scheduler.shutdown()

    def test_pool_down_degrades_job_instead_of_failing(self, tmp_path):
        degraded_gauge = get_registry().gauge("repro_scheduler_degraded_mode")
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, pool_workers=1
        )
        try:
            chaos.configure("pool_down")
            record = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
            assert record.state == "done", record.error
            assert record.degraded is True
            assert record.as_dict()["degraded"] is True
            assert record.result["top_states"][0]["state"] == "111111"
            assert degraded_gauge.value() == 1
            assert scheduler.stats()["jobs"]["degraded"] == 1
        finally:
            scheduler.shutdown()
            degraded_gauge.set(0)

    def test_no_degrade_surfaces_pool_failure(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, pool_workers=1,
            degrade=False,
        )
        try:
            chaos.configure("pool_down")
            record = scheduler.wait(scheduler.submit(_bv_spec()), timeout=60)
            assert record.state == "failed"
            assert "unrecoverable" in record.error
            assert record.degraded is False
        finally:
            scheduler.shutdown()


class TestOverload:
    def test_typed_503_mirrors_quota_shape(self, tmp_path, monkeypatch):
        rejections = get_registry().counter("repro_overload_rejections_total")
        scheduler = JobScheduler(ArtifactStore(tmp_path / "store"), workers=1)
        try:
            api = JobServiceAPI(scheduler, max_pending=2)
            monkeypatch.setattr(scheduler, "queue_depth", lambda: 2)
            before = rejections.value()
            with pytest.raises(ApiError) as excinfo:
                api.create_job(_bv_spec().to_dict())
            assert excinfo.value.status == 503
            document = excinfo.value.as_dict()
            assert document["code"] == "overloaded"
            assert document["limit"] == 2
            assert document["pending"] == 2
            assert rejections.value() == before + 1
            # Below the bound, submissions are admitted normally.
            monkeypatch.setattr(scheduler, "queue_depth", lambda: 1)
            created = api.create_job(_bv_spec().to_dict())
            assert scheduler.wait(
                created["job_id"], timeout=60
            ).state == "done"
        finally:
            scheduler.shutdown()

    def test_max_pending_validation(self, tmp_path):
        scheduler = JobScheduler(ArtifactStore(tmp_path / "store"), workers=1)
        try:
            with pytest.raises(ValueError, match="max_pending"):
                JobServiceAPI(scheduler, max_pending=0)
        finally:
            scheduler.shutdown()


class TestHttpChaos:
    def test_faulted_job_recovers_end_to_end_with_metrics(self, tmp_path):
        """The acceptance scenario over the real HTTP surface: a worker
        kill plus a transient store error inside one job, which still
        completes with the right answer; /metrics shows the respawn and
        the stage retry; overload answers a typed 503."""
        import time

        from repro.service import JobServer, ServiceClientError, request_json

        respawns = get_registry().counter("repro_pool_worker_respawns_total")
        retries = get_registry().counter(
            "repro_scheduler_stage_retries_total", labelnames=("stage",)
        )
        respawns_before = respawns.value()
        retries_before = retries.value(stage="cut")
        with JobServer(
            store_dir=tmp_path / "store", port=0, workers=1,
            pool_workers=2, max_pending=8,
        ) as server:
            server.start()
            chaos.configure("worker_exit@task=1;store_ioerror@at=1")
            created = request_json(
                "POST", f"{server.url}/jobs",
                payload={
                    "circuit": {"benchmark": "bv", "qubits": 6, "seed": 0},
                    "device_size": 5,
                    "query": {"type": "fd", "top": 3},
                },
            )
            deadline = time.monotonic() + 120
            while True:
                status = request_json(
                    "GET", f"{server.url}/jobs/{created['job_id']}"
                )
                if status["state"] in ("done", "failed", "cancelled"):
                    break
                assert time.monotonic() < deadline, f"job stuck: {status}"
                time.sleep(0.02)
            assert status["state"] == "done", status.get("error")
            assert status["attempts"]["cut"] == 2
            assert status["degraded"] is False
            result = request_json(
                "GET", f"{server.url}/jobs/{created['job_id']}/result"
            )
            assert result["result"]["top_states"][0]["state"] == "111111"
            assert respawns.value() == respawns_before + 1
            assert retries.value(stage="cut") == retries_before + 1

            import urllib.request
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                text = response.read().decode()
            assert "repro_pool_worker_respawns_total" in text
            assert "repro_scheduler_stage_retries_total" in text
            assert "repro_chaos_injections_total" in text

            # Front-door overload: force the accept queue over max_pending.
            original = server.scheduler.queue_depth
            server.scheduler.queue_depth = lambda: 8
            try:
                with pytest.raises(ServiceClientError) as excinfo:
                    request_json(
                        "POST", f"{server.url}/jobs",
                        payload={"benchmark": "bv", "qubits": 6,
                                 "device_size": 5, "query": "fd"},
                    )
                assert excinfo.value.status == 503
                assert excinfo.value.document["code"] == "overloaded"
            finally:
                server.scheduler.queue_depth = original
