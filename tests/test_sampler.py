"""Tests for shot-based sampling."""

import numpy as np
import pytest

from repro import QuantumCircuit
from repro.sim import (
    ShotSampler,
    counts_to_probabilities,
    probabilities_to_counts_dict,
    sample_counts,
    sample_distribution,
)


class TestSampleCounts:
    def test_counts_sum_to_shots(self):
        rng = np.random.default_rng(0)
        counts = sample_counts(np.array([0.5, 0.5]), 1000, rng)
        assert counts.sum() == 1000

    def test_deterministic_distribution(self):
        counts = sample_counts(np.array([0.0, 1.0]), 50)
        assert counts[1] == 50 and counts[0] == 0

    def test_positive_shots_required(self):
        with pytest.raises(ValueError):
            sample_counts(np.array([1.0]), 0)

    def test_zero_distribution_rejected(self):
        with pytest.raises(ValueError):
            sample_counts(np.zeros(4), 10)

    def test_negative_entries_clipped(self):
        # Reconstructed quasi-distributions can have tiny negatives.
        counts = sample_counts(np.array([-0.01, 1.0]), 100, np.random.default_rng(1))
        assert counts[0] == 0

    def test_seeded_reproducibility(self):
        p = np.array([0.3, 0.7])
        a = sample_counts(p, 500, np.random.default_rng(42))
        b = sample_counts(p, 500, np.random.default_rng(42))
        assert np.array_equal(a, b)


class TestConversions:
    def test_counts_to_probabilities(self):
        probs = counts_to_probabilities(np.array([25, 75]))
        assert np.allclose(probs, [0.25, 0.75])

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            counts_to_probabilities(np.zeros(4))

    def test_counts_dict_format(self):
        counts = probabilities_to_counts_dict(
            np.array([0.0, 1.0, 0.0, 0.0]), 10, 2, np.random.default_rng(0)
        )
        assert counts == {"01": 10}

    def test_sample_distribution_normalized(self):
        out = sample_distribution(np.array([0.2, 0.8]), 999, np.random.default_rng(3))
        assert np.isclose(out.sum(), 1.0)


class TestShotSampler:
    def test_converges_to_exact(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        sampler = ShotSampler(shots=200_000, seed=7)
        empirical = sampler.run(circuit)
        assert np.allclose(empirical, [0.5, 0, 0, 0.5], atol=0.01)

    def test_shots_positive(self):
        with pytest.raises(ValueError):
            ShotSampler(shots=0)

    def test_deterministic_circuit_exact(self):
        sampler = ShotSampler(shots=100, seed=1)
        assert np.allclose(sampler.run(QuantumCircuit(1).x(0)), [0.0, 1.0])

    def test_initial_labels_passthrough(self):
        sampler = ShotSampler(shots=100, seed=1)
        out = sampler.run(QuantumCircuit(1).i(0), initial_labels=["one"])
        assert np.allclose(out, [0.0, 1.0])
