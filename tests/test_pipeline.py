"""Tests for the end-to-end CutQC pipeline (paper Fig. 5)."""

import numpy as np
import pytest

from repro import (
    CutQC,
    QuantumCircuit,
    evaluate_with_cutqc,
    make_device,
    simulate_probabilities,
)
from repro.library import adder, aqft, bv, hwea, supremacy
from repro.metrics import chi_square_loss
from repro.sim import NoiseModel, ShotSampler


class TestAutomaticPipeline:
    @pytest.mark.parametrize(
        "circuit,device_size",
        [
            (bv(6), 5),
            (aqft(6), 5),
            (hwea(6), 5),
            (adder(6, seed=1), 5),
            (supremacy(8, seed=3), 6),
        ],
        ids=["bv", "aqft", "hwea", "adder", "supremacy"],
    )
    def test_fd_query_matches_ground_truth(self, circuit, device_size):
        pipeline = CutQC(circuit, max_subcircuit_qubits=device_size)
        result = pipeline.fd_query()
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-8)

    def test_subcircuits_respect_budget(self):
        pipeline = CutQC(bv(7), max_subcircuit_qubits=4)
        cut = pipeline.cut()
        assert cut.max_subcircuit_width() <= 4

    def test_explicit_cuts_skip_search(self, fig4_circuit):
        pipeline = CutQC(fig4_circuit, max_subcircuit_qubits=3, cuts=[(2, 1)])
        cut = pipeline.cut()
        assert pipeline.solution is None
        assert cut.num_cuts == 1

    def test_evaluate_caches_results(self, fig4_circuit):
        pipeline = CutQC(fig4_circuit, max_subcircuit_qubits=3)
        first = pipeline.evaluate()
        assert pipeline.evaluate() is first

    def test_one_call_helper(self, fig4_circuit):
        probs = evaluate_with_cutqc(fig4_circuit, 3)
        truth = simulate_probabilities(fig4_circuit)
        assert np.allclose(probs, truth, atol=1e-8)

    def test_device_and_backend_mutually_exclusive(self, fig4_circuit):
        device = make_device("d", 3, "line")
        with pytest.raises(ValueError):
            CutQC(
                fig4_circuit,
                3,
                device=device,
                backend=lambda c: np.ones(2),
            )


class TestBackends:
    def test_shot_backend_approximates_truth(self, fig4_circuit):
        sampler = ShotSampler(shots=100_000, seed=11)
        pipeline = CutQC(fig4_circuit, 3, backend=sampler.run)
        result = pipeline.fd_query()
        truth = simulate_probabilities(fig4_circuit)
        assert chi_square_loss(np.clip(result.probabilities, 0, None), truth) < 0.02

    def test_noiseless_device_backend_exact(self, fig4_circuit):
        device = make_device("ideal", 3, "line", noise=NoiseModel(), seed=0)
        pipeline = CutQC(fig4_circuit, 3, backend=device.backend(shots=0))
        result = pipeline.fd_query()
        truth = simulate_probabilities(fig4_circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-8)

    def test_noisy_device_backend_reasonable(self):
        """CutQC on a small noisy device still lands near the truth."""
        circuit = bv(5)
        device = make_device(
            "noisy",
            4,
            "line",
            noise=NoiseModel(error_1q=0.001, error_2q=0.01, readout=0.01),
            seed=3,
        )
        pipeline = CutQC(circuit, 4, backend=device.backend(shots=8192, trajectories=16))
        result = pipeline.fd_query()
        truth = simulate_probabilities(circuit)
        # Noisy, but the solution state still dominates.
        assert int(np.argmax(result.probabilities)) == int(np.argmax(truth))


class TestQueries:
    def test_dd_query_returns_query_object(self, fig4_circuit):
        pipeline = CutQC(fig4_circuit, 3)
        query = pipeline.dd_query(max_active_qubits=2, max_recursions=3)
        assert len(query.recursions) >= 1
        assert np.isclose(
            query.recursions[0].probabilities.sum(), 1.0, atol=1e-8
        )

    def test_fd_and_dd_agree_on_marginal(self, fig4_circuit):
        from repro.utils import marginalize

        pipeline = CutQC(fig4_circuit, 3)
        fd = pipeline.fd_query().probabilities
        dd = pipeline.dd_query(max_active_qubits=2, max_recursions=1)
        first = dd.recursions[0]
        assert np.allclose(
            first.probabilities,
            marginalize(fd, list(first.active), 5),
            atol=1e-8,
        )

    def test_fd_query_workers(self, fig4_circuit):
        pipeline = CutQC(fig4_circuit, 3)
        serial = pipeline.fd_query(workers=1)
        parallel = pipeline.fd_query(workers=2)
        assert np.allclose(
            serial.probabilities, parallel.probabilities, atol=1e-12
        )


class TestShotLevelDD:
    def test_dd_query_with_shots_per_variant(self):
        from repro.library import bv, bv_solution

        pipeline = CutQC(bv(6), max_subcircuit_qubits=5)
        query = pipeline.dd_query(
            max_active_qubits=2,
            max_recursions=3,
            shots_per_variant=8192,
            seed=4,
        )
        states = query.solution_states(threshold=0.5)
        assert states and states[0][0] == bv_solution(6)

    def test_shot_level_dd_through_noisy_device(self):
        from repro.library import bv, bv_solution

        device = make_device(
            "noisy",
            5,
            "line",
            noise=NoiseModel(error_1q=0.001, error_2q=0.005, readout=0.01),
            seed=9,
        )
        pipeline = CutQC(
            bv(6), max_subcircuit_qubits=5,
            backend=device.backend(shots=0, trajectories=12),
        )
        query = pipeline.dd_query(
            max_active_qubits=3, max_recursions=2,
            shots_per_variant=4096, seed=2,
        )
        states = query.solution_states(threshold=0.3)
        assert states and states[0][0] == bv_solution(6)
