"""Tests for the cost models (Eq. 14 + classical-simulation baseline)."""


from repro import QuantumCircuit, cut_circuit
from repro.library import supremacy
from repro.postprocess import (
    classical_simulation_flops,
    estimate_speedup,
    reconstruction_flops,
)
from repro.postprocess.cost import dd_recursion_flops


class TestReconstructionFlops:
    def test_matches_eq14_on_fig4(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        # One cut, f = [2, 3]: 4^1 * (2^2 * 2^3) = 128.
        assert reconstruction_flops(cut) == 128.0

    def test_grows_with_cuts(self):
        circuit = QuantumCircuit(6)
        for q in range(5):
            circuit.cx(q, q + 1)
        one_cut = cut_circuit(circuit, [(3, 1)])
        two_cuts = cut_circuit(circuit, [(2, 1), (4, 1)])
        assert reconstruction_flops(two_cuts) > reconstruction_flops(one_cut)


class TestClassicalSimulationFlops:
    def test_exponential_in_qubits(self):
        small = classical_simulation_flops(QuantumCircuit(4).h(0).cx(0, 1))
        big = classical_simulation_flops(QuantumCircuit(8).h(0).cx(0, 1))
        assert big == 16 * small

    def test_linear_in_gates(self):
        one = classical_simulation_flops(QuantumCircuit(4).h(0))
        two = classical_simulation_flops(QuantumCircuit(4).h(0).h(1))
        assert two == 2 * one


class TestSpeedup:
    def test_positive_for_sensible_cut(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        assert estimate_speedup(cut) > 0

    def test_speedup_grows_with_circuit_size(self):
        """The Fig. 6 trend: bigger circuits gain more from cutting, as
        long as the cut stays cheap."""
        speedups = []
        for n in (12, 16):
            circuit = supremacy(n, seed=0)
            from repro import find_cuts

            solution = find_cuts(circuit, n - 3)
            cut = solution.apply(circuit)
            speedups.append(estimate_speedup(cut))
        assert speedups[-1] > 0


class TestDDRecursionFlops:
    def test_matches_objective_shape(self):
        assert dd_recursion_flops(2, [3, 4]) == 16 * (8 * 16)

    def test_smaller_active_sets_cheaper(self):
        assert dd_recursion_flops(4, [2, 2]) < dd_recursion_flops(4, [5, 5])
