"""Tests for the query-plan layer and the incremental collapse cache.

The headline property: the cached/incremental DD path (generalized
collapse + fixed-axis derivation) *bit-matches* the naive per-recursion
collapse on random cut circuits — not just within tolerance, exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    cut_circuit,
    cut_circuit_from_assignment,
    evaluate_subcircuit,
    simulate_probabilities,
)
from repro.circuits import build_circuit_graph
from repro.postprocess import (
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
    QueryPlan,
    generalized_signature,
    reconstruct_full,
    restricted_signature,
)
from repro.postprocess.engine import ContractionEngine
from repro.utils import marginalize
from tests.conftest import random_connected_circuit


def _cut_and_provider(circuit, cuts, **kwargs):
    cut = cut_circuit(circuit, cuts)
    results = [evaluate_subcircuit(s) for s in cut.subcircuits]
    return cut, PrecomputedTensorProvider(cut, results=results, **kwargs)


class TestSignatures:
    def test_restricted_to_output_wires(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        roles = {w: ("merged",) for w in range(5)}
        roles[0] = ("active",)
        for sub in cut.subcircuits:
            signature = restricted_signature(sub, roles)
            wires = [wire for wire, _ in signature]
            assert wires == [line.wire for line in sub.output_lines]

    def test_generalized_promotes_fixed(self):
        signature = (
            (0, ("fixed", 1)),
            (1, ("active",)),
            (2, ("merged",)),
        )
        assert generalized_signature(signature) == (
            (0, ("active",)),
            (1, ("active",)),
            (2, ("merged",)),
        )

    def test_signature_independent_of_other_wires(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        sub = cut.subcircuits[0]
        own = {line.wire for line in sub.output_lines}
        roles_a = {w: ("active",) if w in own else ("merged",) for w in range(5)}
        roles_b = {w: ("active",) if w in own else ("fixed", 1) for w in range(5)}
        assert restricted_signature(sub, roles_a) == restricted_signature(
            sub, roles_b
        )


class TestCollapseCache:
    def test_repeat_collapse_hits(self, fig4_circuit):
        cut, provider = _cut_and_provider(fig4_circuit, [(2, 1)])
        roles = {w: ("merged",) for w in range(5)}
        roles[0] = ("active",)
        provider.collapsed(roles)
        assert provider.cache_stats.misses == cut.num_subcircuits
        assert provider.cache_stats.hits == 0
        provider.collapsed(roles)
        assert provider.cache_stats.hits == cut.num_subcircuits

    def test_fixed_variants_share_generalized_entry(self, fig4_circuit):
        cut, provider = _cut_and_provider(fig4_circuit, [(2, 1)])
        for bit in (0, 1):
            roles = {w: ("merged",) for w in range(5)}
            roles[0] = ("fixed", bit)
            roles[1] = ("active",)
            provider.collapsed(roles)
        # The two fixed-bit variants differ only in a derived index, so
        # the second pass is all hits.
        assert provider.cache_stats.misses == cut.num_subcircuits
        assert provider.cache_stats.hits == cut.num_subcircuits

    def test_derived_bitmatches_naive(self, fig4_circuit):
        _, cached = _cut_and_provider(fig4_circuit, [(2, 1)])
        _, naive = _cut_and_provider(fig4_circuit, [(2, 1)], cache=False)
        roles = {
            0: ("fixed", 1),
            1: ("active",),
            2: ("merged",),
            3: ("fixed", 0),
            4: ("active",),
        }
        # Warm the generalized entries first, then derive.
        cached.collapsed({w: ("active",) if r[0] == "fixed" else r
                          for w, r in roles.items()})
        for (got, got_wires), (want, want_wires) in zip(
            cached.collapsed(roles), naive.collapsed(roles)
        ):
            assert got_wires == want_wires
            assert got.num_effective == want.num_effective
            assert np.array_equal(got.data, want.data)
            assert np.array_equal(got.nonzero, want.nonzero)

    def test_cache_limit_evicts(self, fig4_circuit):
        cut, provider = _cut_and_provider(fig4_circuit, [(2, 1)])
        provider.cache_limit = cut.num_subcircuits  # room for one role map
        roles_a = {w: ("merged",) for w in range(5)}
        roles_a[0] = ("active",)
        roles_b = {w: ("active",) for w in range(5)}
        provider.collapsed(roles_a)
        provider.collapsed(roles_b)  # evicts roles_a's entries
        provider.collapsed(roles_a)
        assert provider.cache_stats.misses == 3 * cut.num_subcircuits

    def test_clear_cache_resets(self, fig4_circuit):
        cut, provider = _cut_and_provider(fig4_circuit, [(2, 1)])
        roles = {w: ("active",) for w in range(5)}
        provider.collapsed(roles)
        provider.clear_cache()
        assert provider.cache_stats.hits == 0
        assert provider.cache_stats.misses == 0
        provider.collapsed(roles)
        assert provider.cache_stats.misses == cut.num_subcircuits

    def test_cache_disabled_never_counts(self, fig4_circuit):
        _, provider = _cut_and_provider(fig4_circuit, [(2, 1)], cache=False)
        roles = {w: ("active",) for w in range(5)}
        provider.collapsed(roles)
        provider.collapsed(roles)
        assert provider.cache_stats.hits == 0
        assert provider.cache_stats.misses == 0


class TestQueryPlan:
    def test_full_plan_matches_reconstruct(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results)
        plan = QueryPlan.full(5, cut.num_cuts)
        execution = plan.execute(provider, ContractionEngine(strategy="kron"))
        want = reconstruct_full(cut, results).probabilities
        assert np.allclose(execution.probabilities, want, atol=1e-12)

    def test_binned_plan_matches_marginal(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results)
        plan = QueryPlan.binned(5, cut.num_cuts, fixed={}, active=[1, 3])
        execution = plan.execute(provider, ContractionEngine(strategy="kron"))
        truth = marginalize(simulate_probabilities(fig4_circuit), [1, 3], 5)
        assert np.allclose(execution.probabilities, truth, atol=1e-9)

    def test_active_order_respected(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results)
        engine = ContractionEngine(strategy="kron")
        forward = QueryPlan.binned(5, cut.num_cuts, {}, [0, 1]).execute(
            provider, engine
        )
        reverse = QueryPlan.binned(5, cut.num_cuts, {}, [1, 0]).execute(
            provider, engine
        )
        assert np.allclose(
            forward.probabilities.reshape(2, 2),
            reverse.probabilities.reshape(2, 2).T,
            atol=1e-12,
        )


class TestCachedDDBitMatchesNaive:
    """The ISSUE's property: cached/incremental DD == naive DD, bitwise."""

    def _compare(self, circuit, assignment, max_active, zoom_width=1):
        cut = cut_circuit_from_assignment(circuit, assignment)
        if cut.num_cuts > 6:
            return  # keep runtime bounded
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        engine = ContractionEngine(strategy="kron")
        cached = DynamicDefinitionQuery(
            PrecomputedTensorProvider(cut, results=results, cache=True),
            max_active_qubits=max_active,
            engine=engine,
            zoom_width=zoom_width,
        )
        naive = DynamicDefinitionQuery(
            PrecomputedTensorProvider(cut, results=results, cache=False),
            max_active_qubits=max_active,
            engine=engine,
            zoom_width=zoom_width,
        )
        cached.run(6)
        naive.run(6)
        assert len(cached.recursions) == len(naive.recursions)
        for got, want in zip(cached.recursions, naive.recursions):
            assert got.fixed == want.fixed
            assert got.active == want.active
            assert np.array_equal(got.probabilities, want.probabilities)
        # The cached path must never collapse more than the naive one
        # (misses + hits together cover the same requests).
        stats = cached.provider.cache_stats
        assert stats.hits + stats.misses == len(cached.recursions) * len(
            cut.subcircuits
        )

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=2),
    )
    def test_random_circuits_random_cuts(self, n, seed, max_active):
        circuit = random_connected_circuit(n, 2 * n, seed)
        graph = build_circuit_graph(circuit)
        rng = np.random.default_rng(seed + 1)
        for _ in range(20):
            assignment = rng.integers(0, 2, size=graph.num_vertices)
            if 0 < assignment.sum() < graph.num_vertices:
                break
        self._compare(circuit, list(assignment), max_active)

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=4, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_batched_zoom_bitmatches_too(self, n, seed):
        circuit = random_connected_circuit(n, 2 * n, seed)
        graph = build_circuit_graph(circuit)
        rng = np.random.default_rng(seed + 1)
        for _ in range(20):
            assignment = rng.integers(0, 2, size=graph.num_vertices)
            if 0 < assignment.sum() < graph.num_vertices:
                break
        self._compare(circuit, list(assignment), 1, zoom_width=2)


class TestHeapFrontierParity:
    """The heap frontier must choose exactly what the old linear scan did."""

    def _linear_scan_choice(self, query):
        best = None
        total = query.provider.num_qubits
        for candidate in query.bins:
            if candidate.zoomed:
                continue
            if len(candidate.assignment) >= total:
                continue
            if best is None or candidate.probability > best.probability:
                best = candidate
        return best

    def test_choice_matches_linear_scan(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results)
        query = DynamicDefinitionQuery(provider, max_active_qubits=2)
        query.step()
        for _ in range(2):
            want = self._linear_scan_choice(query)
            got = query._choose_bin()
            assert got is want
            query.step()


class TestZoomWidthValidation:
    def test_zoom_width_positive(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results)
        with pytest.raises(ValueError):
            DynamicDefinitionQuery(provider, 2, zoom_width=0)
