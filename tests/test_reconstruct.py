"""FD reconstruction correctness: the paper's central identity.

The theory (§3.2.3) guarantees that the CutQC output *strictly equals*
the uncut circuit's output when subcircuits are evaluated exactly.  These
tests enforce that equality across circuits, cut shapes, option
combinations, and (via hypothesis) randomized circuits/cuts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    QuantumCircuit,
    cut_circuit,
    cut_circuit_from_assignment,
    evaluate_subcircuit,
    reconstruct_full,
    simulate_probabilities,
)
from repro.circuits import build_circuit_graph
from repro.postprocess import Reconstructor
from tests.conftest import random_connected_circuit


def _reconstruct(circuit, cuts, **kwargs):
    cut = cut_circuit(circuit, cuts)
    results = [evaluate_subcircuit(s) for s in cut.subcircuits]
    return cut, reconstruct_full(cut, results, **kwargs)


class TestExactEquality:
    def test_fig4_single_cut(self, fig4_circuit):
        _, result = _reconstruct(fig4_circuit, [(2, 1)])
        truth = simulate_probabilities(fig4_circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-10)

    def test_chain_two_cuts(self):
        circuit = QuantumCircuit(6)
        for q in range(6):
            circuit.ry(0.3 + 0.2 * q, q)
        for q in range(5):
            circuit.cx(q, q + 1)
        for q in range(6):
            circuit.rz(0.1 * q, q)
        _, result = _reconstruct(circuit, [(2, 1), (4, 1)])
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-10)

    def test_wire_revisiting_cluster(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1)
        circuit.cx(0, 1).cx(0, 2).cx(0, 1)
        circuit.ry(0.5, 0)
        cut = cut_circuit(circuit, [(0, 1), (0, 2)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        result = reconstruct_full(cut, results)
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-10)

    def test_entangled_across_cut(self):
        # Bell pair split across the cut: tests sign bookkeeping hard.
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        circuit.h(1)
        cut = cut_circuit(circuit, [(0, 1), (1, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        result = reconstruct_full(cut, results)
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_circuits_random_cuts_property(self, n, seed):
        """The headline property: cut anywhere valid, rebuild exactly."""
        circuit = random_connected_circuit(n, 2 * n, seed)
        graph = build_circuit_graph(circuit)
        rng = np.random.default_rng(seed + 1)
        # Random bipartition of gate vertices (retry until both sides
        # non-empty); the implied edge cuts are always a valid cut set.
        for _ in range(20):
            assignment = rng.integers(0, 2, size=graph.num_vertices)
            if 0 < assignment.sum() < graph.num_vertices:
                break
        cut = cut_circuit_from_assignment(circuit, list(assignment))
        if cut.num_cuts > 7:
            return  # keep runtime bounded
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        result = reconstruct_full(cut, results)
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-8)


class TestOptions:
    @pytest.fixture
    def cut_and_results(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        return fig4_circuit, cut, results

    def test_greedy_order_sorts_by_effective_size(self, cut_and_results):
        _, cut, results = cut_and_results
        rec = Reconstructor(cut, results=results)
        order = rec.subcircuit_order(greedy=True)
        sizes = [rec.tensors[i].num_effective for i in order]
        assert sizes == sorted(sizes)

    def test_natural_order_option(self, cut_and_results):
        _, cut, results = cut_and_results
        rec = Reconstructor(cut, results=results)
        assert rec.subcircuit_order(greedy=False) == [0, 1]

    def test_all_option_combinations_agree(self, cut_and_results):
        circuit, cut, results = cut_and_results
        truth = simulate_probabilities(circuit)
        for greedy in (True, False):
            for early in (True, False):
                result = reconstruct_full(
                    cut, results, greedy_order=greedy, early_termination=early
                )
                assert np.allclose(result.probabilities, truth, atol=1e-10)

    def test_tensor_network_strategy_matches(self, cut_and_results):
        circuit, cut, results = cut_and_results
        kron = reconstruct_full(cut, results, strategy="kron")
        tn = reconstruct_full(cut, results, strategy="tensor_network")
        assert np.allclose(kron.probabilities, tn.probabilities, atol=1e-10)

    def test_unknown_strategy_rejected(self, cut_and_results):
        _, cut, results = cut_and_results
        with pytest.raises(ValueError):
            reconstruct_full(cut, results, strategy="magic")

    def test_parallel_workers_match_serial(self):
        circuit = QuantumCircuit(5)
        for q in range(5):
            circuit.ry(0.2 * (q + 1), q)
        for q in range(4):
            circuit.cx(q, q + 1)
        cut = cut_circuit(circuit, [(1, 1), (3, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        serial = reconstruct_full(cut, results, workers=1)
        parallel = reconstruct_full(cut, results, workers=2)
        assert np.allclose(serial.probabilities, parallel.probabilities, atol=1e-12)
        assert parallel.stats.workers == 2

    def test_stats_fields(self, cut_and_results):
        _, cut, results = cut_and_results
        result = reconstruct_full(cut, results)
        stats = result.stats
        assert stats.num_cuts == 1
        assert stats.num_terms == 4
        assert stats.elapsed_seconds >= 0.0
        assert stats.strategy == "kron"
        assert 0 <= stats.num_skipped <= stats.num_terms

    def test_early_termination_skips_zero_rows(self):
        # BV subcircuits have deterministic outputs -> many zero terms.
        from repro.library import bv

        circuit = bv(5)
        cut = cut_circuit(circuit, [(4, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        result = reconstruct_full(cut, results, early_termination=True)
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-10)


class TestReconstructorValidation:
    def test_requires_results_or_tensors(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            Reconstructor(cut)

    def test_tensor_count_checked(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(cut.subcircuits[0])]
        with pytest.raises(ValueError):
            Reconstructor(cut, results=results)

    def test_output_is_normalized_distribution(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        probs = reconstruct_full(cut, results).probabilities
        assert np.isclose(probs.sum(), 1.0, atol=1e-9)
        assert np.all(probs >= -1e-9)


class TestExhaustiveCutPositions:
    """Every single-edge cut of a fixed circuit reconstructs exactly —
    sweeps all wires and positions rather than sampling."""

    def test_all_single_cuts_of_cx_chain(self):
        circuit = QuantumCircuit(5)
        for q in range(5):
            circuit.ry(0.3 + 0.1 * q, q)
        for q in range(4):
            circuit.cx(q, q + 1)
            circuit.t(q)
        circuit.cz(3, 4).cx(2, 3)  # extra depth near the tail
        for q in range(5):
            circuit.rz(0.2 * q, q)
        truth = simulate_probabilities(circuit)
        graph = build_circuit_graph(circuit)
        tested = 0
        for edge in graph.edges:
            try:
                cut = cut_circuit(circuit, [(edge.wire, edge.wire_index)])
            except ValueError:
                continue  # not a separating single cut
            results = [evaluate_subcircuit(s) for s in cut.subcircuits]
            result = reconstruct_full(cut, results)
            assert np.allclose(result.probabilities, truth, atol=1e-9), (
                f"cut ({edge.wire}, {edge.wire_index}) failed"
            )
            tested += 1
        assert tested >= 2  # the chain has several bridge edges

    def test_all_two_cut_pairs_of_short_chain(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q)
        for q in range(3):
            circuit.cx(q, q + 1)
        circuit.t(1).t(2)
        for q in range(3):
            circuit.cz(q, q + 1)
        truth = simulate_probabilities(circuit)
        graph = build_circuit_graph(circuit)
        positions = [(e.wire, e.wire_index) for e in graph.edges]
        tested = 0
        import itertools

        for pair in itertools.combinations(positions, 2):
            try:
                cut = cut_circuit(circuit, list(pair))
            except ValueError:
                continue
            if cut.num_cuts != 2:
                continue
            results = [evaluate_subcircuit(s) for s in cut.subcircuits]
            result = reconstruct_full(cut, results)
            assert np.allclose(result.probabilities, truth, atol=1e-9), pair
            tested += 1
        assert tested >= 3
