"""Golden end-to-end checks: every paper benchmark, cut and rebuilt.

Larger sizes than the unit tests, using the tensor-network strategy so
the suite stays fast; the kron path's equivalence is covered elsewhere.
"""

import numpy as np
import pytest

from repro import CutQC, simulate_probabilities
from repro.library import (
    adder,
    adder_solution,
    aqft,
    bv,
    bv_solution,
    grover,
    grover_data_qubits,
    hwea,
    supremacy,
)
from repro.utils import bitstring_to_index

_CASES = [
    ("supremacy-12/8", lambda: supremacy(12, seed=1, depth=8), 8),
    ("aqft-8/6", lambda: aqft(8), 6),
    ("grover-9/8", lambda: grover(9), 8),
    ("bv-12/8", lambda: bv(12), 8),
    ("adder-10/6", lambda: adder(10, a_value=11, b_value=6), 6),
    ("hwea-12/8", lambda: hwea(12), 8),
]


@pytest.mark.parametrize("label,factory,device", _CASES,
                         ids=[c[0] for c in _CASES])
def test_benchmark_reconstructs_exactly(label, factory, device):
    circuit = factory()
    pipeline = CutQC(circuit, max_subcircuit_qubits=device)
    cut = pipeline.cut()
    assert cut.max_subcircuit_width() <= device
    result = pipeline.fd_query(strategy="tensor_network")
    truth = simulate_probabilities(circuit)
    assert np.allclose(result.probabilities, truth, atol=1e-7), label


def test_bv_solution_survives_cutting():
    circuit = bv(12)
    pipeline = CutQC(circuit, max_subcircuit_qubits=8)
    probs = pipeline.fd_query(strategy="tensor_network").probabilities
    assert np.isclose(
        probs[bitstring_to_index(bv_solution(12))], 1.0, atol=1e-7
    )


def test_adder_sum_survives_cutting():
    circuit = adder(10, a_value=11, b_value=6)
    pipeline = CutQC(circuit, max_subcircuit_qubits=6)
    probs = pipeline.fd_query(strategy="tensor_network").probabilities
    expected = adder_solution(10, a_value=11, b_value=6)
    assert np.isclose(probs[bitstring_to_index(expected)], 1.0, atol=1e-7)


def test_grover_amplification_survives_cutting():
    circuit = grover(9)
    data = grover_data_qubits(9)
    pipeline = CutQC(circuit, max_subcircuit_qubits=8)
    probs = pipeline.fd_query(strategy="tensor_network").probabilities
    top = int(np.argmax(probs))
    bits = format(top, "09b")
    assert bits[:data] == "1" * data
    assert probs[top] > 2.0 / (1 << data)
