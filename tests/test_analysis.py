"""Tests for circuit analysis diagnostics."""


from repro import QuantumCircuit, find_cuts
from repro.circuits.analysis import (
    analyze_circuit,
    interaction_graph,
    layer_profile,
    min_bipartition_cuts,
    wire_traffic,
)
from repro.library import bv, grover, supremacy


class TestInteractionGraph:
    def test_weights_count_gates(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(0, 1).cz(1, 2)
        graph = interaction_graph(circuit)
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1

    def test_isolated_qubits_present(self):
        graph = interaction_graph(QuantumCircuit(4).cx(0, 1))
        assert set(graph.nodes) == {0, 1, 2, 3}


class TestMinBipartitionCuts:
    def test_chain_cuts_once(self):
        circuit = QuantumCircuit(4)
        for q in range(3):
            circuit.cx(q, q + 1)
        assert min_bipartition_cuts(circuit) == 1

    def test_parallel_edges_counted(self):
        circuit = QuantumCircuit(2).cx(0, 1).cz(0, 1)
        assert min_bipartition_cuts(circuit) == 2

    def test_single_gate_zero(self):
        assert min_bipartition_cuts(QuantumCircuit(2).cx(0, 1)) == 0

    def test_lower_bounds_actual_search(self):
        """The Stoer-Wagner bound never exceeds what find_cuts uses for
        a 2-subcircuit solution."""
        circuit = bv(8)
        bound = min_bipartition_cuts(circuit)
        solution = find_cuts(circuit, 7, max_subcircuits=2)
        assert solution.num_cuts >= bound

    def test_dense_circuits_have_larger_bound(self):
        sparse = bv(8)
        dense = grover(7)
        assert min_bipartition_cuts(dense) > min_bipartition_cuts(sparse)


class TestWireTrafficAndLayers:
    def test_wire_traffic(self):
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(1, 2)
        traffic = wire_traffic(circuit)
        assert traffic == {0: 1, 1: 3, 2: 2}

    def test_layer_profile_counts(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        profile = layer_profile(circuit)
        assert profile == [(2, 0), (0, 1)]

    def test_layer_profile_total(self):
        circuit = supremacy(8, seed=0)
        profile = layer_profile(circuit)
        assert sum(a + b for a, b in profile) == len(circuit)


class TestReport:
    def test_report_fields(self):
        report = analyze_circuit(bv(6))
        assert report.num_qubits == 6
        assert report.fully_connected
        assert report.min_bipartition_cuts >= 1
        assert 0 < report.interaction_density <= 1

    def test_summary_text(self):
        text = analyze_circuit(bv(6)).summary()
        assert "6 qubits" in text and "min 2-way cut" in text

    def test_density_ordering_matches_paper(self):
        """§6.1: supremacy/Grover are densely connected, BV is not."""
        assert (
            analyze_circuit(grover(7)).interaction_density
            > analyze_circuit(bv(7)).interaction_density
        )
        assert (
            analyze_circuit(supremacy(8, seed=0)).min_bipartition_cuts
            >= analyze_circuit(bv(8)).min_bipartition_cuts
        )
