"""The batched variant execution layer (:mod:`repro.core.executor`)."""

import numpy as np
import pytest

from repro import CutQC, QuantumCircuit, make_device, simulate_probabilities
from repro.core import VariantExecutor, circuit_fingerprint
from repro.cutting import evaluate_subcircuit, num_physical_variants
from repro.devices.pool import DevicePool
from repro.library import bv
from repro.sim import NoiseModel


def _ideal(name, qubits, seed=0):
    return make_device(name, qubits, "line", noise=NoiseModel(), seed=seed)


@pytest.fixture
def bv_cut():
    return CutQC(bv(6), max_subcircuit_qubits=5).cut()


class TestVariantExecutor:
    def test_matches_per_subcircuit_evaluation(self, bv_cut):
        batched = VariantExecutor().run(bv_cut.subcircuits)
        for result, subcircuit in zip(batched, bv_cut.subcircuits):
            direct = evaluate_subcircuit(subcircuit)
            assert result.probabilities.keys() == direct.probabilities.keys()
            for key in direct.probabilities:
                assert np.allclose(
                    result.probabilities[key], direct.probabilities[key]
                )

    def test_serial_vs_parallel_bit_identical(self, bv_cut):
        # sim_batch=0: this test pins the per-variant transport modes.
        serial_exec = VariantExecutor(workers=1, sim_batch=0)
        parallel_exec = VariantExecutor(workers=2, sim_batch=0)
        serial = serial_exec.run(bv_cut.subcircuits)
        parallel = parallel_exec.run(bv_cut.subcircuits)
        assert serial_exec.last_report.mode == "serial"
        assert parallel_exec.last_report.mode == "process"
        for a, b in zip(serial, parallel):
            assert a.probabilities.keys() == b.probabilities.keys()
            for key in a.probabilities:
                assert np.array_equal(a.probabilities[key], b.probabilities[key])

    def test_pool_mode_exact_and_reported(self, bv_cut):
        # Batching is the default on the pool path too: each body-key
        # group is pinned to one device and evaluated batched.
        executor = VariantExecutor(
            pool=DevicePool([_ideal("a", 5, seed=1), _ideal("b", 5, seed=2)]),
            pool_shots=0,
        )
        pooled = executor.run(bv_cut.subcircuits)
        report = executor.last_report
        assert report.mode == "batched-devicepool"
        assert report.pool_makespan_seconds > 0
        assert report.pool_makespan_seconds <= report.pool_serial_seconds
        assert executor.last_pool_placement is not None
        assert set(executor.last_pool_placement) == {
            s.index for s in bv_cut.subcircuits
        }
        serial = VariantExecutor().run(bv_cut.subcircuits)
        for a, b in zip(pooled, serial):
            for key in a.probabilities:
                assert np.allclose(
                    a.probabilities[key], b.probabilities[key], atol=1e-9
                )

    def test_pool_legacy_per_circuit_mode(self, bv_cut):
        # sim_batch=0 keeps the per-circuit dispatch (--no-sim-batch).
        executor = VariantExecutor(
            pool=DevicePool([_ideal("a", 5, seed=1), _ideal("b", 5, seed=2)]),
            pool_shots=0,
            sim_batch=0,
        )
        pooled = executor.run(bv_cut.subcircuits)
        assert executor.last_report.mode == "pool"
        batched = VariantExecutor(
            pool=DevicePool([_ideal("a", 5, seed=1), _ideal("b", 5, seed=2)]),
            pool_shots=0,
        ).run(bv_cut.subcircuits)
        for a, b in zip(pooled, batched):
            for key in a.probabilities:
                assert np.allclose(
                    a.probabilities[key], b.probabilities[key], atol=1e-9
                )

    def test_pool_affinity_pins_placement(self, bv_cut):
        pool = DevicePool([_ideal("a", 5, seed=1), _ideal("b", 5, seed=2)])
        executor = VariantExecutor(pool=pool, pool_shots=0)
        executor.run(bv_cut.subcircuits)
        placement = executor.last_pool_placement
        # Re-running a subset with the recorded affinity reproduces the
        # full batch's placement for those subcircuits.
        executor.pool_affinity = placement
        executor.run(bv_cut.subcircuits[:1])
        only = bv_cut.subcircuits[0].index
        assert executor.last_pool_placement[only] == placement[only]

    def test_cross_subcircuit_dedup(self, bv_cut):
        # The same subcircuit twice: every physical circuit is shared.
        twin = [bv_cut.subcircuits[0], bv_cut.subcircuits[0]]
        executor = VariantExecutor()
        results = executor.run(twin)
        report = executor.last_report
        assert report.num_variants == 2 * report.num_unique_circuits
        assert report.dedup_ratio == pytest.approx(2.0)
        for key in results[0].probabilities:
            assert results[0].probabilities[key] is results[1].probabilities[key]

    def test_report_counts(self, bv_cut):
        executor = VariantExecutor()
        results = executor.run(bv_cut.subcircuits)
        report = executor.last_report
        assert report.num_subcircuits == len(bv_cut.subcircuits)
        assert report.num_variants == sum(
            num_physical_variants(s) for s in bv_cut.subcircuits
        )
        assert report.num_unique_circuits <= report.num_variants
        assert report.elapsed_seconds >= 0.0
        for result in results:
            assert result.num_variants == num_physical_variants(
                result.subcircuit
            )
            assert result.dedup_ratio >= 1.0

    def test_backend_size_mismatch_detected(self, bv_cut):
        def bad_backend(circuit):
            return np.ones(3)

        with pytest.raises(ValueError, match="size"):
            VariantExecutor(backend=bad_backend).run(bv_cut.subcircuits)

    def test_backend_pool_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            VariantExecutor(
                backend=simulate_probabilities,
                pool=DevicePool([_ideal("a", 3)]),
            )
        with pytest.raises(ValueError, match="workers"):
            VariantExecutor(workers=0)

    def test_run_accepts_one_shot_iterable(self, bv_cut):
        executor = VariantExecutor()
        results = executor.run(s for s in bv_cut.subcircuits)
        assert len(results) == len(bv_cut.subcircuits)
        assert executor.last_report.num_subcircuits == len(bv_cut.subcircuits)

    def test_fingerprint_distinguishes_circuits(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        c = QuantumCircuit(2).h(1).cx(0, 1)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(c)


class TestPipelineWiring:
    def test_cutqc_parallel_evaluation_exact(self):
        circuit = bv(6)
        # sim_batch=0: pins the legacy per-variant process transport.
        pipeline = CutQC(
            circuit, max_subcircuit_qubits=5, workers=2, sim_batch=0
        )
        result = pipeline.fd_query()
        assert pipeline.execution_report is not None
        assert pipeline.execution_report.mode == "process"
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-8)

    def test_cutqc_pool_evaluation_exact(self):
        circuit = bv(6)
        pool = DevicePool([_ideal("a", 5, seed=1), _ideal("b", 5, seed=2)])
        pipeline = CutQC(
            circuit, max_subcircuit_qubits=5, pool=pool, pool_shots=0
        )
        result = pipeline.fd_query()
        assert pipeline.execution_report.mode == "batched-devicepool"
        assert pipeline.execution_report.pool_makespan_seconds > 0
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-8)

    def test_cutqc_pool_honored_in_shot_based_dd(self):
        pool = DevicePool([_ideal("a", 5, seed=1)])
        pipeline = CutQC(
            bv(6), max_subcircuit_qubits=5, pool=pool, pool_shots=0
        )
        query = pipeline.dd_query(
            max_active_qubits=2,
            max_recursions=3,
            shots_per_variant=4096,
            seed=7,
        )
        first = query.recursions[0]
        assert np.isclose(first.probabilities.sum(), 1.0, atol=0.05)

    def test_cutqc_pool_backend_conflict_rejected(self):
        pool = DevicePool([_ideal("a", 5)])
        with pytest.raises(ValueError, match="pool"):
            CutQC(
                bv(6),
                max_subcircuit_qubits=5,
                backend=simulate_probabilities,
                pool=pool,
            )

    def test_evaluate_subcircuit_reports_dedup(self):
        cut = CutQC(bv(6), max_subcircuit_qubits=5).cut()
        for subcircuit in cut.subcircuits:
            result = evaluate_subcircuit(subcircuit)
            assert result.num_variants == num_physical_variants(subcircuit)
            assert 1 <= result.num_unique_circuits <= result.num_variants
            assert result.dedup_ratio >= 1.0

    def test_shot_provider_prefill_matches_lazy(self):
        from repro.postprocess import (
            DynamicDefinitionQuery,
            ShotBasedTensorProvider,
        )

        cut = CutQC(bv(6), max_subcircuit_qubits=5).cut()
        lazy = ShotBasedTensorProvider(cut, shots=512, seed=13)
        batched = ShotBasedTensorProvider(cut, shots=512, seed=13, workers=2)
        lazy_query = DynamicDefinitionQuery(lazy, max_active_qubits=2)
        batched_query = DynamicDefinitionQuery(batched, max_active_qubits=2)
        lazy_rec = lazy_query.step()
        batched_rec = batched_query.step()
        assert np.array_equal(lazy_rec.probabilities, batched_rec.probabilities)
