"""Multi-tenant hardening: quotas, weighted fairness, typed rejections."""

import sys

import pytest

from repro.obs.metrics import get_registry
from repro.service import (
    ArtifactStore,
    FairQueue,
    JobScheduler,
    JobServer,
    JobSpec,
    QuotaExceededError,
    ServiceClientError,
    TenantConfig,
    TenantPolicy,
    request_json,
)


def _bv_spec(**overrides):
    spec = {"benchmark": "bv", "qubits": 6, "device_size": 5, "query": "fd",
            "top": 3}
    spec.update(overrides)
    return JobSpec(**spec)


class TestTenantConfig:
    def test_policy_lookup_falls_back_to_default(self):
        config = TenantConfig({"acme": TenantPolicy(weight=3.0)})
        assert config.policy("acme").weight == 3.0
        assert config.policy("anyone-else").weight == 1.0

    def test_parse_cli_specs(self):
        config = TenantConfig.parse_specs(
            ["acme:3", "free:1:16:2", "blocked:0", "burst::8"]
        )
        assert config.policy("acme") == TenantPolicy(weight=3.0)
        assert config.policy("free") == TenantPolicy(
            weight=1.0, max_queued=16, max_concurrent=2
        )
        assert config.policy("blocked").weight == 0.0
        assert config.policy("burst") == TenantPolicy(max_queued=8)
        with pytest.raises(ValueError, match="no name"):
            TenantConfig.parse_specs([":3"])
        with pytest.raises(ValueError, match="expected"):
            TenantConfig.parse_specs(["a:1:2:3:4"])

    def test_admit_raises_typed_errors(self):
        config = TenantConfig({
            "blocked": TenantPolicy(weight=0.0),
            "free": TenantPolicy(max_queued=2),
        })
        with pytest.raises(QuotaExceededError) as excinfo:
            config.admit("blocked", queued=0)
        assert excinfo.value.reason == "disabled"
        assert excinfo.value.as_dict()["code"] == "quota_exceeded"
        config.admit("free", queued=1)  # under quota: no raise
        with pytest.raises(QuotaExceededError) as excinfo:
            config.admit("free", queued=2)
        error = excinfo.value
        assert (error.reason, error.limit, error.queued) == ("max_queued", 2, 2)


class TestFairQueue:
    def test_weighted_share_while_backlogged(self):
        queue = FairQueue(TenantConfig({
            "heavy": TenantPolicy(weight=2.0),
            "light": TenantPolicy(weight=1.0),
        }))
        for index in range(6):
            queue.push("heavy", f"h{index}")
        for index in range(3):
            queue.push("light", f"l{index}")
        first_six = [queue.pop(timeout=1)[0] for _ in range(6)]
        # Stride scheduling: weight 2 gets ~2x the dispatch slots.
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_flooding_tenant_cannot_starve_the_victim(self):
        queue = FairQueue()
        for index in range(100):
            queue.push("flood", f"f{index}")
        queue.push("victim", "v0")
        queue.push("victim", "v1")
        first_four = [queue.pop(timeout=1) for _ in range(4)]
        items = {item for _, item in first_four}
        # Both victim jobs dispatch within the first few slots even
        # though the flooder has a 100-deep backlog.
        assert {"v0", "v1"} <= items

    def test_idle_tenant_joins_at_the_clock_without_banked_credit(self):
        queue = FairQueue()
        for index in range(5):
            queue.push("x", f"x{index}")
        for _ in range(5):
            assert queue.pop(timeout=1)[0] == "x"
        # y was idle the whole time; it must not now monopolize dispatch.
        for index in range(3):
            queue.push("y", f"y{index}")
        for index in range(3):
            queue.push("x", f"x{5 + index}")
        order = [queue.pop(timeout=1)[0] for _ in range(6)]
        assert order == ["y", "x", "y", "x", "y", "x"]

    def test_max_concurrent_gates_eligibility(self):
        queue = FairQueue(TenantConfig({
            "capped": TenantPolicy(max_concurrent=1),
        }))
        queue.push("capped", "c0")
        queue.push("capped", "c1")
        queue.push("other", "o0")
        assert queue.pop(timeout=1) == ("capped", "c0")
        # capped is at its cap: other flows past its backlog.
        assert queue.pop(timeout=1) == ("other", "o0")
        assert queue.pop(timeout=0.05) is None
        queue.task_done("capped")
        assert queue.pop(timeout=1) == ("capped", "c1")

    def test_close_wakes_pop_with_none(self):
        queue = FairQueue()
        queue.close()
        assert queue.pop() is None
        with pytest.raises(RuntimeError, match="closed"):
            queue.push("a", "x")

    def test_depths_always_list_configured_tenants(self):
        queue = FairQueue(TenantConfig({"acme": TenantPolicy()}))
        queue.push("seen", "s0")
        depths = queue.depths()
        assert depths["acme"] == 0
        assert depths["default"] == 0
        assert depths["seen"] == 1


class TestSchedulerQuotas:
    def test_zero_quota_tenant_is_rejected_typed(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False,
            tenants={"blocked": {"weight": 0}},
        )
        with pytest.raises(QuotaExceededError) as excinfo:
            scheduler.submit(_bv_spec(tenant="blocked"))
        assert excinfo.value.reason == "disabled"
        assert scheduler.stats()["jobs"]["submitted"] == 0
        scheduler.shutdown()

    def test_max_queued_enforced_against_live_backlog(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False,
            tenants={"free": {"max_queued": 1}},
        )
        scheduler.submit(_bv_spec(tenant="free"))
        with pytest.raises(QuotaExceededError) as excinfo:
            scheduler.submit(_bv_spec(tenant="free"))
        assert excinfo.value.reason == "max_queued"
        # Other tenants are unaffected by free's quota.
        scheduler.submit(_bv_spec(tenant="other"))
        scheduler.shutdown()

    def test_quota_rejections_feed_the_metrics_registry(self, tmp_path):
        rejections = get_registry().counter(
            "repro_quota_rejections_total", "", ("tenant", "reason")
        )
        before = rejections.value(tenant="metered", reason="disabled")
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False,
            tenants={"metered": {"weight": 0}},
        )
        with pytest.raises(QuotaExceededError):
            scheduler.submit(_bv_spec(tenant="metered"))
        assert rejections.value(
            tenant="metered", reason="disabled"
        ) == before + 1
        scheduler.shutdown()

    def test_queue_depth_gauge_reflects_backlog(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False
        )
        scheduler.submit(_bv_spec(tenant="gauged"))
        scheduler.submit(_bv_spec(tenant="gauged"))
        text = get_registry().render()  # runs the depth collector
        assert 'repro_queue_depth{tenant="gauged"} 2' in text
        scheduler.shutdown()

    def test_flooded_victim_still_completes(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False
        )
        for _ in range(4):
            scheduler.submit(_bv_spec(tenant="flood"))
        victim_id = scheduler.submit(_bv_spec(tenant="victim", top=4))
        scheduler.start()
        record = scheduler.wait(victim_id, timeout=120)
        assert record.state == "done"
        stats = scheduler.stats()
        assert stats["tenants"]["victim"]["by_state"]["done"] == 1
        scheduler.shutdown()

    def test_stats_report_per_tenant_tables(self, tmp_path):
        scheduler = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1,
            tenants={"acme": {"weight": 2.0, "max_queued": 8}},
        )
        scheduler.wait(scheduler.submit(_bv_spec(tenant="acme")), timeout=60)
        tenants = scheduler.stats()["tenants"]
        assert tenants["acme"]["by_state"]["done"] == 1
        assert tenants["acme"]["policy"]["weight"] == 2.0
        assert tenants["acme"]["policy"]["max_queued"] == 8
        scheduler.shutdown()


class TestHttpQuotaRejection:
    def test_over_quota_submission_is_a_typed_429(self, tmp_path):
        with JobServer(
            store_dir=tmp_path / "store", port=0, workers=1,
            tenants={"blocked": {"weight": 0}},
        ).start() as server:
            with pytest.raises(ServiceClientError) as excinfo:
                request_json("POST", f"{server.url}/jobs", payload={
                    "benchmark": "bv", "qubits": 6, "device_size": 5,
                    "query": "fd", "tenant": "blocked",
                })
            assert excinfo.value.status == 429
            body = excinfo.value.document
            assert body["code"] == "quota_exceeded"
            assert body["tenant"] == "blocked"
            assert body["reason"] == "disabled"
            assert body["status"] == 429


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
