"""Tests for device pools and the quantum wall-clock model."""

import numpy as np
import pytest

from repro import CutQC, QuantumCircuit, make_device, simulate_probabilities
from repro.devices.pool import DevicePool
from repro.library import bv
from repro.sim import NoiseModel


def _ideal(name, qubits, seed=0):
    return make_device(name, qubits, "line", noise=NoiseModel(), seed=seed)


class TestScheduling:
    def test_requires_devices(self):
        with pytest.raises(ValueError):
            DevicePool([])

    def test_round_robin_balance(self):
        pool = DevicePool([_ideal("a", 3), _ideal("b", 3)])
        circuits = [QuantumCircuit(2).h(0).cx(0, 1) for _ in range(6)]
        schedule = pool.schedule(circuits, shots=1024)
        device_loads = [0, 0]
        for job in schedule.jobs:
            device_loads[job.device_index] += 1
        assert device_loads == [3, 3]

    def test_makespan_vs_serial(self):
        pool = DevicePool([_ideal("a", 3), _ideal("b", 3)])
        circuits = [QuantumCircuit(2).h(0).cx(0, 1) for _ in range(8)]
        schedule = pool.schedule(circuits, shots=4096)
        assert schedule.makespan_seconds < schedule.serial_seconds
        assert schedule.makespan_seconds >= schedule.serial_seconds / 2 - 1e-9

    def test_size_aware_placement(self):
        pool = DevicePool([_ideal("small", 2), _ideal("big", 4)])
        big_circuit = QuantumCircuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3)
        schedule = pool.schedule([big_circuit], shots=10)
        assert schedule.jobs[0].device_index == 1

    def test_unfitting_circuit_rejected(self):
        pool = DevicePool([_ideal("small", 2)])
        with pytest.raises(ValueError, match="fits"):
            pool.schedule([QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)], shots=1)

    def test_lpt_beats_unsorted_greedy(self):
        """LPT placement must not regress vs the arbitrary-order greedy
        baseline on a heterogeneous pool, and strictly wins the classic
        short-jobs-first adversarial workload."""
        pool = DevicePool([_ideal("small", 3), _ideal("big", 5)])
        shots = 100_000
        shallow = QuantumCircuit(2).cx(0, 1)
        deep = QuantumCircuit(2)
        for _ in range(3):
            deep.cx(0, 1)
        # Short jobs first: unsorted greedy splits the shorts evenly and
        # then appends the long job on top of one of them; LPT places the
        # long job first and packs the shorts around it.
        circuits = [shallow, shallow, shallow, deep]

        def unsorted_greedy_makespan(batch):
            loads = [0.0] * len(pool.devices)
            for circuit in batch:
                chosen = min(range(len(loads)), key=lambda i: loads[i])
                loads[chosen] += pool.estimate_job_seconds(circuit, shots)
            return max(loads)

        schedule = pool.schedule(circuits, shots=shots)
        baseline = unsorted_greedy_makespan(circuits)
        assert schedule.makespan_seconds < baseline
        # Jobs come back in input order even though placement is LPT.
        assert [job.circuit for job in schedule.jobs] == circuits
        # Never a regression, for any submission order of the same batch.
        import itertools

        for permutation in itertools.permutations(circuits):
            permuted = pool.schedule(list(permutation), shots=shots)
            assert (
                permuted.makespan_seconds
                <= unsorted_greedy_makespan(permutation) + 1e-12
            )

    def test_job_time_model_monotone(self):
        pool = DevicePool([_ideal("a", 3)])
        shallow = QuantumCircuit(2).cx(0, 1)
        deep = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        assert pool.estimate_job_seconds(deep, 1000) > pool.estimate_job_seconds(
            shallow, 1000
        )
        assert pool.estimate_job_seconds(shallow, 2000) > pool.estimate_job_seconds(
            shallow, 1000
        )


class TestPoolBackend:
    def test_cutqc_through_pool_exact(self, fig4_circuit):
        pool = DevicePool([_ideal("a", 3, seed=1), _ideal("b", 3, seed=2)])
        pipeline = CutQC(fig4_circuit, 3, backend=pool.backend(shots=0))
        result = pipeline.fd_query()
        truth = simulate_probabilities(fig4_circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-9)

    def test_backend_records_schedule(self, fig4_circuit):
        pool = DevicePool([_ideal("a", 3), _ideal("b", 3)])
        backend = pool.backend(shots=128)
        pipeline = CutQC(fig4_circuit, 3, backend=backend)
        pipeline.evaluate()
        schedule = backend.schedule
        assert len(schedule.jobs) == 7  # 3 upstream + 4 downstream variants
        used = {job.device_index for job in schedule.jobs}
        assert used == {0, 1}
        assert schedule.makespan_seconds > 0

    def test_heterogeneous_pool(self):
        circuit = bv(6)
        pool = DevicePool([_ideal("tiny", 3, seed=3), _ideal("mid", 5, seed=4)])
        pipeline = CutQC(circuit, 5, backend=pool.backend(shots=0))
        result = pipeline.fd_query()
        truth = simulate_probabilities(circuit)
        assert np.allclose(result.probabilities, truth, atol=1e-9)

    def test_pool_max_qubits(self):
        pool = DevicePool([_ideal("a", 3), _ideal("b", 5)])
        assert pool.max_qubits == 5
