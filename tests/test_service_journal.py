"""Durability hardening: journal replay, claim exclusivity, kill recovery.

The acceptance test of the durable service: SIGKILL a scheduler process
mid-stage, start a fresh one on the same store, and assert the job
*resumes* from its checkpointed stages (store cache hits on cut and
evaluate) and finishes bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    ArtifactStore,
    JobJournal,
    JobScheduler,
    JobServer,
    JobSpec,
    request_json,
)

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _bv_spec(**overrides):
    spec = {"benchmark": "bv", "qubits": 6, "device_size": 5, "query": "fd",
            "top": 3}
    spec.update(overrides)
    return JobSpec(**spec)


def _stable(result):
    document = dict(result)
    document.pop("elapsed_seconds", None)
    document.pop("stats", None)
    document.pop("stream", None)
    return document


def _dead_pid():
    """A pid guaranteed to name no live process."""
    probe = subprocess.Popen([sys.executable, "-c", ""])
    probe.wait()
    return probe.pid


class TestJournalLog:
    def test_append_then_tail_reads_once(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        journal.append("submit", "job-1", tenant="acme")
        journal.append("state", "job-1", state="cutting")
        events = journal.read_new()
        assert [e["type"] for e in events] == ["submit", "state"]
        assert events[0]["tenant"] == "acme"
        assert journal.read_new() == []  # offset advanced
        journal.append("cancel", "job-1")
        assert [e["type"] for e in journal.read_new()] == ["cancel"]

    def test_rewind_replays_from_the_top(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        journal.append("submit", "job-1")
        journal.read_new()
        journal.rewind()
        assert len(journal.read_new()) == 1

    def test_incomplete_and_garbage_lines_are_tolerated(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        journal.append("submit", "job-1")
        with open(journal.path, "ab") as stream:
            stream.write(b"not json at all\n")
            stream.write(b'{"type":"state","job_id":"job-1"')  # torn line
        events = journal.read_new()
        assert [e["type"] for e in events] == ["submit"]
        # Completing the torn line makes it readable on the next tail.
        with open(journal.path, "ab") as stream:
            stream.write(b',"state":"cutting"}\n')
        assert [e["state"] for e in journal.read_new()] == ["cutting"]

    def test_corrupt_middle_line_is_skipped_counted_and_survived(
        self, tmp_path
    ):
        """A torn line in the *middle* of the log must not hide the
        records appended after it — skip it, count it, keep reading."""
        from repro.obs.metrics import get_registry

        torn = get_registry().counter("repro_journal_torn_lines_total")
        before = torn.value()
        journal = JobJournal(tmp_path / "jobs")
        journal.append("submit", "job-1")
        with open(journal.path, "ab") as stream:
            stream.write(b'{"type":"state","job_id":"job-1","st\xff\xfe}\n')
        journal.append("state", "job-1", state="cutting")
        journal.append("state", "job-1", state="done")
        events = journal.read_new()
        assert [e["type"] for e in events] == ["submit", "state", "state"]
        assert events[-1]["state"] == "done"
        assert torn.value() == before + 1
        # The offset advanced past the torn line: no re-count on re-read.
        assert journal.read_new() == []
        assert torn.value() == before + 1
        # A fresh handle replaying the whole log counts it once more but
        # still recovers every valid record.
        replayer = JobJournal(tmp_path / "jobs")
        assert [e["type"] for e in replayer.read_new()] == [
            "submit", "state", "state"
        ]
        assert torn.value() == before + 2

    def test_two_handles_share_one_log(self, tmp_path):
        writer = JobJournal(tmp_path / "jobs")
        reader = JobJournal(tmp_path / "jobs")
        writer.append("submit", "job-1")
        assert [e["job_id"] for e in reader.read_new()] == ["job-1"]


class TestClaims:
    def test_claim_is_exclusive_but_idempotent_per_owner(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        assert journal.claim("job-1", "sched-a")
        assert journal.claim("job-1", "sched-a")  # re-entry is fine
        assert not journal.claim("job-1", "sched-b")
        info = journal.claim_info("job-1")
        assert info["owner"] == "sched-a"
        assert not journal.claim_is_stale(info)  # we are alive

    def test_stale_claim_is_stolen_live_claim_is_not(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        journal.claim("job-1", "sched-a")
        # A live foreign claim must never be stolen.
        assert not journal.steal_claim("job-1", "sched-b")
        # Rewrite the claim as if its holder died.
        journal.claim_path("job-1").write_text(json.dumps(
            {"owner": "sched-a", "pid": _dead_pid(), "ts": 0.0}
        ))
        assert journal.claim_is_stale(journal.claim_info("job-1"))
        assert journal.steal_claim("job-1", "sched-b")
        assert journal.claim_info("job-1")["owner"] == "sched-b"

    def test_release_claim_only_drops_our_own(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs")
        journal.claim("job-1", "sched-a")
        journal.release_claim("job-1", "sched-b")  # not ours: no-op
        assert journal.claim_info("job-1") is not None
        journal.release_claim("job-1", "sched-a")
        assert journal.claim_info("job-1") is None
        assert journal.claim("job-1", "sched-b")


class TestRestartRecovery:
    def test_restart_resumes_queued_job(self, tmp_path):
        first = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False
        )
        job_id = first.submit(_bv_spec())
        first.shutdown()
        # A fresh scheduler on the same store replays the journal and
        # adopts the never-started job.
        second = JobScheduler(ArtifactStore(tmp_path / "store"), workers=1)
        try:
            record = second.wait(job_id, timeout=60)
            assert record.state == "done"
            assert record.owner == second.owner_id
        finally:
            second.shutdown()

    def test_restart_mirrors_terminal_jobs_with_results(self, tmp_path):
        first = JobScheduler(ArtifactStore(tmp_path / "store"), workers=1)
        job_id = first.submit(_bv_spec())
        done = first.wait(job_id, timeout=60)
        first.shutdown()
        second = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, autostart=False
        )
        try:
            record = second.get(job_id)
            assert record.state == "done"
            assert record.timings  # carried by the terminal journal event
            assert record.cache_hits == {"cut": False, "evaluate": False}
            # The (large) result rehydrates lazily from the store.
            assert record.result is None
            second.load_persisted(record)
            assert _stable(record.result) == _stable(done.result)
        finally:
            second.shutdown()

    def test_kill_mid_stage_then_restart_resumes_not_restarts(self, tmp_path):
        """SIGKILL the executing process after cut+evaluate checkpointed:
        the successor must resume (cache hits on both stages) and produce
        a result bit-identical to an uninterrupted run."""
        store_dir = tmp_path / "store"
        marker = tmp_path / "querying.marker"
        child_code = (
            "import sys, time\n"
            "store_dir, marker = sys.argv[1], sys.argv[2]\n"
            "from repro.service import ArtifactStore, JobScheduler, JobSpec\n"
            "def hang(self, pipeline, spec):\n"
            "    open(marker, 'w').write('querying')\n"
            "    time.sleep(600)\n"
            "JobScheduler._run_query = hang\n"
            "scheduler = JobScheduler(ArtifactStore(store_dir), workers=1)\n"
            "spec = JobSpec(device_size=5, benchmark='bv', qubits=6,\n"
            "               query='fd', top=3)\n"
            "open(marker + '.job', 'w').write(scheduler.submit(spec))\n"
            "time.sleep(600)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        child = subprocess.Popen(
            [sys.executable, "-c", child_code, str(store_dir), str(marker)],
            env=env,
        )
        try:
            deadline = time.monotonic() + 120
            while not marker.exists():
                assert child.poll() is None, "child scheduler died early"
                assert time.monotonic() < deadline, "child never reached query"
                time.sleep(0.05)
            job_id = (tmp_path / "querying.marker.job").read_text().strip()
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        successor = JobScheduler(ArtifactStore(store_dir), workers=1)
        try:
            record = successor.wait(job_id, timeout=60)
            assert record.state == "done", record.error
            # Resumed, not restarted: both checkpointed stages were
            # restored from the store the dead process populated.
            assert record.cache_hits == {"cut": True, "evaluate": True}
            assert record.owner == successor.owner_id
        finally:
            successor.shutdown()

        reference = JobScheduler(ArtifactStore(tmp_path / "fresh"), workers=1)
        try:
            uninterrupted = reference.wait(
                reference.submit(_bv_spec()), timeout=60
            )
        finally:
            reference.shutdown()
        assert _stable(record.result) == _stable(uninterrupted.result)


class TestMultiScheduler:
    def test_each_job_executes_exactly_once_across_peers(self, tmp_path):
        a = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, journal_poll=0.02
        )
        b = JobScheduler(
            ArtifactStore(tmp_path / "store"), workers=1, journal_poll=0.02
        )
        try:
            ids = [a.submit(_bv_spec()) for _ in range(2)]
            ids += [b.submit(_bv_spec(top=4))]
            deadline = time.monotonic() + 120
            for scheduler in (a, b):
                for job_id in ids:
                    while True:
                        try:
                            record = scheduler.get(job_id)
                        except KeyError:
                            record = None  # tail has not discovered it yet
                        if record is not None and record.done:
                            break
                        assert time.monotonic() < deadline, (
                            f"{job_id} never finished on {scheduler.owner_id}"
                        )
                        time.sleep(0.02)
                    assert scheduler.get(job_id).state == "done"
            owners = {a.owner_id, b.owner_id}
            for job_id in ids:
                info = a.journal.claim_info(job_id)
                assert info is not None and info["owner"] in owners
                assert a.store.get_job_document(job_id) is not None
        finally:
            a.shutdown()
            b.shutdown()

    def test_two_servers_one_store_submit_here_read_there(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with JobServer(store=store, port=0, workers=1,
                       journal_poll=0.02) as front_a:
            front_a.start()
            with JobServer(store=store, port=0, workers=1,
                           journal_poll=0.02) as front_b:
                front_b.start()
                created = request_json(
                    "POST", f"{front_a.url}/jobs",
                    payload={"benchmark": "bv", "qubits": 6,
                             "device_size": 5, "query": "fd", "top": 3},
                )
                job_id = created["job_id"]
                deadline = time.monotonic() + 60
                while True:
                    try:
                        status = request_json(
                            "GET", f"{front_b.url}/jobs/{job_id}"
                        )
                        if status["state"] == "done":
                            break
                        assert status["state"] != "failed", status
                    except Exception:
                        pass  # replica B has not tailed the submit yet
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                result = request_json(
                    "GET", f"{front_b.url}/jobs/{job_id}/result"
                )
                assert result["result"]["top_states"][0]["state"] == "111111"


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
