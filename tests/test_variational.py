"""The variational warm path (PR 7): bind, rebound cuts, block reuse.

Covers the tentpole's contract from four sides:

* ``QuantumCircuit.bind`` reports exactly the gates whose parameters
  moved, and shares unchanged ``Gate`` objects by identity (so the
  identity-keyed fusion caches keep hitting);
* cut fingerprints are parameter-invariant while evaluation fingerprints
  digest the bound values — a rebind hits the cut checkpoint but never
  aliases another binding's tensors;
* ``CutCircuit.rebound`` patches only dirty subcircuits and shares clean
  ones by reference, and the per-block fusion memo rebuilds only blocks
  containing a moved gate;
* a :class:`~repro.core.VariationalSession` rebind bit-matches a
  from-scratch pipeline to 1e-10 — including partial updates that touch
  a single subcircuit — under serial, pooled and batched-noisy
  execution, while its stats prove the reuse.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CutQC,
    QuantumCircuit,
    VariationalSession,
    make_device,
    simulate_probabilities,
)
from repro.circuits.gates import PARAM_COUNTS
from repro.core import spsa_gains
from repro.devices.pool import DevicePool
from repro.library.qaoa import maxcut_cost, qaoa_maxcut, ring_graph
from repro.service.store import (
    ArtifactStore,
    cut_fingerprint,
    evaluation_fingerprint,
    structural_digest,
)
from repro.sim import NoiseModel, fusion_stats


def _qaoa(n=6, layers=1, theta=(0.3, 0.7)):
    return qaoa_maxcut(n, ring_graph(n), layers=layers, parameters=list(theta))


def _ideal_device(name, qubits, seed=0):
    return make_device(name, qubits, "line", noise=NoiseModel(), seed=seed)


# ----------------------------------------------------------------------
# Circuits layer: parameters / structure / bind
# ----------------------------------------------------------------------

class TestBind:
    def test_parameters_flat_gate_order(self):
        circuit = QuantumCircuit(2).h(0).rx(0.5, 0).rzz(0.25, 0, 1).u(
            0.1, 0.2, 0.3, 1
        )
        assert circuit.parameters() == (0.5, 0.25, 0.1, 0.2, 0.3)
        assert circuit.num_parameters == 5

    def test_structure_ignores_parameters(self):
        a = QuantumCircuit(2).rx(0.5, 0).cx(0, 1)
        b = QuantumCircuit(2).rx(1.5, 0).cx(0, 1)
        assert a.structure() == b.structure()

    def test_bind_reports_changed_gate_indices(self):
        circuit = QuantumCircuit(2).h(0).rx(0.5, 0).rz(0.25, 1)
        bound, changed = circuit.bind([0.5, 0.75])
        assert changed == (2,)  # gate index, not parameter index
        assert bound.parameters() == (0.5, 0.75)

    def test_bind_shares_unchanged_gate_objects(self):
        circuit = QuantumCircuit(2).rx(0.5, 0).rz(0.25, 1)
        bound, changed = circuit.bind([0.5, 0.9])
        assert changed == (1,)
        assert bound.gates[0] is circuit.gates[0]
        assert bound.gates[1] is not circuit.gates[1]

    def test_bind_wrong_length_raises(self):
        circuit = QuantumCircuit(2).rx(0.5, 0)
        with pytest.raises(ValueError, match="1"):
            circuit.bind([0.5, 0.6])

    def test_bind_noop_changes_nothing(self):
        circuit = _qaoa()
        bound, changed = circuit.bind(circuit.parameters())
        assert changed == ()
        assert all(a is b for a, b in zip(bound.gates, circuit.gates))

    def test_param_counts_cover_parametric_gates(self):
        for name, count in PARAM_COUNTS.items():
            assert count >= 1, name


# ----------------------------------------------------------------------
# Fingerprint semantics (satellite: param-invariant cut keys)
# ----------------------------------------------------------------------

class TestFingerprints:
    OPTIONS = {"max_subcircuit_qubits": 5}

    def test_cut_fingerprint_parameter_invariant(self):
        a = _qaoa(theta=(0.3, 0.7))
        b = _qaoa(theta=(1.1, 0.2))
        assert structural_digest(a) == structural_digest(b)
        assert cut_fingerprint(a, self.OPTIONS) == cut_fingerprint(
            b, self.OPTIONS
        )

    def test_cut_fingerprint_sees_structure(self):
        a = _qaoa(n=6)
        b = _qaoa(n=8)
        assert cut_fingerprint(a, self.OPTIONS) != cut_fingerprint(
            b, self.OPTIONS
        )

    def test_evaluation_fingerprint_digests_parameters(self):
        a = _qaoa(theta=(0.3, 0.7))
        b = _qaoa(theta=(1.1, 0.2))
        key = cut_fingerprint(a, self.OPTIONS)
        fp_a = evaluation_fingerprint(
            key, backend="statevector", params=a.parameters()
        )
        fp_b = evaluation_fingerprint(
            key, backend="statevector", params=b.parameters()
        )
        assert fp_a != fp_b
        assert fp_a == evaluation_fingerprint(
            key, backend="statevector", params=a.parameters()
        )

    def test_store_cut_hit_across_rebind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        original = _qaoa(theta=(0.3, 0.7))
        pipeline = CutQC(original, max_subcircuit_qubits=5)
        cut = pipeline.cut()
        key = pipeline.cut_fingerprint()
        store.put_cut(key, original, cut, pipeline.solution)

        rebound, _ = original.bind(
            [p + 0.1 for p in original.parameters()]
        )
        assert CutQC(rebound, max_subcircuit_qubits=5).cut_fingerprint() == key
        restored = store.get_cut(key, rebound)
        assert restored is not None
        restored_cut, _ = restored
        assert restored_cut.num_subcircuits == cut.num_subcircuits


# ----------------------------------------------------------------------
# Cutting layer: rebound cuts
# ----------------------------------------------------------------------

class TestRebound:
    def test_clean_subcircuits_shared_by_reference(self):
        circuit = _qaoa()
        cut = CutQC(circuit, max_subcircuit_qubits=5).cut()
        flat = list(circuit.parameters())
        flat[-1] += 0.4  # one rx, lives in exactly one subcircuit
        bound, changed = circuit.bind(flat)
        rebound, dirty = cut.rebound(bound, changed)
        assert len(dirty) == 1
        for index, subcircuit in enumerate(rebound.subcircuits):
            if index in dirty:
                assert subcircuit is not cut.subcircuits[index]
            else:
                assert subcircuit is cut.subcircuits[index]

    def test_rebound_preserves_lines_and_qubits(self):
        circuit = _qaoa()
        cut = CutQC(circuit, max_subcircuit_qubits=5).cut()
        bound, changed = circuit.bind(
            [p + 0.2 for p in circuit.parameters()]
        )
        rebound, dirty = cut.rebound(bound, changed)
        for old, new in zip(cut.subcircuits, rebound.subcircuits):
            assert new.lines == old.lines
            assert new.circuit.structure() == old.circuit.structure()

    def test_rebound_evaluates_to_bound_distribution(self):
        circuit = _qaoa()
        cut = CutQC(circuit, max_subcircuit_qubits=5).cut()
        bound, changed = circuit.bind(
            [p + 0.3 for p in circuit.parameters()]
        )
        rebound, _ = cut.rebound(bound, changed)
        result = CutQC(bound, max_subcircuit_qubits=5).load_cut(
            rebound
        ).fd_query()
        truth = simulate_probabilities(bound)
        assert np.allclose(result.probabilities, truth, atol=1e-10)


# ----------------------------------------------------------------------
# Sim layer: per-block fusion memo
# ----------------------------------------------------------------------

class TestBlockReuse:
    def test_single_gate_change_rebuilds_one_block(self):
        circuit = _qaoa()
        pipeline = CutQC(circuit, max_subcircuit_qubits=5)
        pipeline.fd_query()

        flat = list(circuit.parameters())
        flat[-1] += 0.7
        bound, _ = circuit.bind(flat)
        before = fusion_stats()
        CutQC(bound, max_subcircuit_qubits=5).fd_query()
        after = fusion_stats()
        built = after["blocks_built"] - before["blocks_built"]
        total = after["blocks_total"] - before["blocks_total"]
        assert total > 1
        # Only blocks containing the moved gate were re-fused; everything
        # else came out of the per-block memo.
        assert 1 <= built < total
        assert after["partitions_built"] == before["partitions_built"]


# ----------------------------------------------------------------------
# Core: VariationalSession parity + reuse stats
# ----------------------------------------------------------------------

class TestVariationalSession:
    def test_reuse_stats_prove_warm_path(self):
        circuit = _qaoa()
        session = VariationalSession(circuit, max_subcircuit_qubits=5)
        first = session.rebind(circuit.parameters())
        assert not first.cut_cache_hit  # no store: first cut is computed
        assert first.reused_subcircuits == 0

        flat = list(circuit.parameters())
        flat[-1] += 0.5
        second = session.rebind(flat)
        assert second.cut_cache_hit
        assert second.dirty_subcircuits != ()
        assert second.reused_subcircuits >= 1
        assert second.tensors_reused >= 1
        assert second.fusion_blocks_built < second.fusion_blocks_total
        summary = session.summary()
        assert summary["iterations"] == 2
        assert summary["cut_cache_hits"] == 1

    def test_store_backed_session_hits_cut_every_time(self, tmp_path):
        store = ArtifactStore(tmp_path)
        circuit = _qaoa()
        warm = VariationalSession(
            circuit, max_subcircuit_qubits=5, store=store
        )
        warm.rebind(circuit.parameters())
        assert warm.cut_store_hit is False

        # A second session for the same structure restores the cut: the
        # very first rebind is already a cut cache hit.
        other = VariationalSession(
            _qaoa(theta=(1.2, 0.1)), max_subcircuit_qubits=5, store=store
        )
        stats = other.rebind(other.circuit.parameters())
        assert other.cut_store_hit is True
        assert stats.cut_cache_hit

    @settings(max_examples=8, deadline=None)
    @given(
        theta0=st.tuples(
            st.floats(0.05, 3.0), st.floats(0.05, 3.0)
        ),
        theta1=st.tuples(
            st.floats(0.05, 3.0), st.floats(0.05, 3.0)
        ),
    )
    def test_rebind_matches_from_scratch(self, theta0, theta1):
        circuit = _qaoa(theta=theta0)
        session = VariationalSession(circuit, max_subcircuit_qubits=5)
        session.rebind(circuit.parameters())
        target = _qaoa(theta=theta1)
        session.rebind(target.parameters())
        warm = session.probabilities()
        scratch = CutQC(target, max_subcircuit_qubits=5).fd_query()
        assert np.allclose(warm, scratch.probabilities, atol=1e-10)

    @settings(max_examples=8, deadline=None)
    @given(
        gate=st.integers(0, 14),
        delta=st.floats(0.05, 2.0),
    )
    def test_partial_update_matches_from_scratch(self, gate, delta):
        # Perturb a single gate parameter: often only one subcircuit is
        # dirty, and the reconstruction must still be exact.
        circuit = _qaoa()
        session = VariationalSession(circuit, max_subcircuit_qubits=5)
        session.rebind(circuit.parameters())
        flat = list(circuit.parameters())
        flat[gate % len(flat)] += delta
        stats = session.rebind(flat)
        assert 1 <= len(stats.dirty_subcircuits) <= session.cut.num_subcircuits
        bound, _ = circuit.bind(flat)
        scratch = CutQC(bound, max_subcircuit_qubits=5).fd_query()
        assert np.allclose(
            session.probabilities(), scratch.probabilities, atol=1e-10
        )

    def test_pooled_rebind_matches_from_scratch(self):
        circuit = _qaoa()
        pool = DevicePool(
            [_ideal_device("a", 5, seed=1), _ideal_device("b", 5, seed=2)]
        )
        session = VariationalSession(
            circuit, max_subcircuit_qubits=5, pool=pool, pool_shots=0
        )
        session.rebind(circuit.parameters())
        assert session.history[0].execution_mode == "batched-devicepool"

        flat = list(circuit.parameters())
        flat[-1] += 0.17  # single-subcircuit partial update
        stats = session.rebind(flat)
        assert len(stats.dirty_subcircuits) == 1
        bound, _ = circuit.bind(flat)
        scratch = CutQC(
            bound,
            max_subcircuit_qubits=5,
            pool=DevicePool(
                [_ideal_device("a", 5, seed=1), _ideal_device("b", 5, seed=2)]
            ),
            pool_shots=0,
        ).fd_query()
        assert np.allclose(
            session.probabilities(), scratch.probabilities, atol=1e-10
        )

    def test_noisy_rebind_matches_from_scratch(self):
        # Batched-noisy: the RNG streams are keyed on subcircuit index,
        # so a dirty-only re-evaluation replays the exact same noise as
        # a fresh full evaluation at the new parameters.
        circuit = _qaoa()
        device = make_device("vartest", 5, "line", seed=5)
        session = VariationalSession(
            circuit,
            max_subcircuit_qubits=5,
            device=device,
            device_shots=0,
            trajectories=6,
            seed=11,
        )
        session.rebind(circuit.parameters())
        flat = list(circuit.parameters())
        flat[-1] += 0.31
        stats = session.rebind(flat)
        assert len(stats.dirty_subcircuits) == 1
        bound, _ = circuit.bind(flat)
        scratch = CutQC(
            bound,
            max_subcircuit_qubits=5,
            device=make_device("vartest", 5, "line", seed=5),
            device_shots=0,
            trajectories=6,
            seed=11,
        ).fd_query()
        assert np.allclose(
            session.probabilities(), scratch.probabilities, atol=1e-10
        )

    def test_query_before_rebind_raises(self):
        session = VariationalSession(_qaoa(), max_subcircuit_qubits=5)
        with pytest.raises(RuntimeError, match="rebind"):
            session.probabilities()


# ----------------------------------------------------------------------
# Service: variational jobs
# ----------------------------------------------------------------------

class TestVariationalJobs:
    def test_spsa_gains_decay(self):
        a0, c0 = spsa_gains(0)
        a9, c9 = spsa_gains(9)
        assert 0 < a9 < a0
        assert 0 < c9 < c0

    def test_scheduler_runs_variational_job(self, tmp_path):
        from repro.service.scheduler import JobScheduler, JobSpec

        scheduler = JobScheduler(ArtifactStore(tmp_path), workers=1)
        try:
            spec = JobSpec(
                device_size=5,
                benchmark="qaoa",
                qubits=6,
                query="variational",
                iterations=3,
                layers=1,
                degree=3,
                seed=9,
            )
            record = scheduler.wait(scheduler.submit(spec), timeout=120)
            assert record.state == "done", record.error
            assert len(record.iterations) == 3
            entry = record.iterations[0]
            # Both SPSA probes per iteration rode the warm path.
            assert entry["reuse"]["cut_cache_hits"] == 2
            assert entry["reuse"]["fusion_blocks_reused"] > 0
            result = record.result
            assert result["mode"] == "variational"
            assert result["best_cost"] >= result["initial_cost"] - 1e-9
            assert result["session"]["cut_cache_hits"] == 2 * 3
            document = record.as_dict(include_result=True)
            assert len(document["iterations"]) == 3

            # Second job over the same store: cut restored, not searched.
            repeat = scheduler.wait(
                scheduler.submit(
                    JobSpec(
                        device_size=5,
                        benchmark="qaoa",
                        qubits=6,
                        query="variational",
                        iterations=1,
                        layers=1,
                        degree=3,
                        seed=9,
                    )
                ),
                timeout=120,
            )
            assert repeat.state == "done", repeat.error
            assert repeat.cache_hits["cut"] is True
        finally:
            scheduler.shutdown()

    def test_variational_spec_requires_qaoa(self):
        from repro.service.scheduler import JobSpec

        spec = JobSpec(
            device_size=5, benchmark="bv", qubits=6, query="variational"
        )
        with pytest.raises(ValueError, match="qaoa"):
            spec.validate()

    def test_variational_optimizer_improves_ring_cost(self, tmp_path):
        from repro.service.scheduler import JobScheduler, JobSpec

        scheduler = JobScheduler(ArtifactStore(tmp_path), workers=1)
        try:
            spec = JobSpec(
                device_size=5,
                benchmark="qaoa",
                qubits=6,
                query="variational",
                iterations=8,
                layers=1,
                degree=0,  # ring graph
                seed=2,
            )
            record = scheduler.wait(scheduler.submit(spec), timeout=120)
            assert record.state == "done", record.error
            assert record.result["best_cost"] > record.result["initial_cost"]
        finally:
            scheduler.shutdown()
