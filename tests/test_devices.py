"""Tests for virtual devices and presets."""

import numpy as np
import pytest

from repro import QuantumCircuit, make_device, simulate_probabilities
from repro.devices import (
    DEVICE_PRESETS,
    VirtualDevice,
    bogota,
    fig1_device_suite,
    get_device,
    grid_coupling,
    johannesburg,
    line_coupling,
    ring_coupling,
)
from repro.sim import NoiseModel


class TestCouplingHelpers:
    def test_line(self):
        assert line_coupling(4) == ((0, 1), (1, 2), (2, 3))

    def test_ring_adds_wraparound(self):
        assert (0, 3) in ring_coupling(4)

    def test_grid_counts(self):
        pairs = grid_coupling(3, 4)
        assert len(pairs) == 3 * 3 + 2 * 4  # horizontal + vertical


class TestVirtualDevice:
    def test_coupling_validation(self):
        with pytest.raises(ValueError):
            VirtualDevice("bad", 2, ((0, 2),))
        with pytest.raises(ValueError):
            VirtualDevice("bad", 2, ((0, 0),))

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            VirtualDevice("bad", 4, ((0, 1), (2, 3)))

    def test_coupling_normalized_and_deduped(self):
        device = VirtualDevice("d", 3, ((1, 0), (0, 1), (1, 2)))
        assert device.coupling_map == ((0, 1), (1, 2))

    def test_are_coupled_symmetric(self):
        device = VirtualDevice("d", 3, ((0, 1), (1, 2)))
        assert device.are_coupled(1, 0)
        assert not device.are_coupled(0, 2)

    def test_run_rejects_oversized_circuits(self):
        device = make_device("tiny", 2, "line")
        with pytest.raises(ValueError):
            device.run(QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2))

    def test_noiseless_device_matches_exact(self):
        device = make_device("ideal", 4, "line", noise=NoiseModel())
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        out = device.run(circuit, shots=0)
        assert np.allclose(out, simulate_probabilities(circuit), atol=1e-9)

    def test_routing_required_case_still_correct(self):
        # cx(0, 2) on a line device needs a swap; distribution unchanged.
        device = make_device("ideal", 3, "line", noise=NoiseModel())
        circuit = QuantumCircuit(3).h(0).cx(0, 2)
        out = device.run(circuit, shots=0)
        assert np.allclose(out, simulate_probabilities(circuit), atol=1e-9)

    def test_noisy_run_is_distribution(self):
        device = bogota(seed=1)
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        out = device.run(circuit, shots=4096, trajectories=8)
        assert np.isclose(out.sum(), 1.0, atol=1e-9)
        assert np.all(out >= -1e-12)

    def test_backend_callable(self):
        device = make_device("ideal", 3, "line", noise=NoiseModel(), seed=0)
        backend = device.backend(shots=0)
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        assert np.allclose(backend(circuit), [0.5, 0, 0, 0.5], atol=1e-9)

    def test_describe_mentions_rates(self):
        text = bogota().describe()
        assert "e2=" in text and "readout=" in text


class TestPresets:
    def test_preset_sizes(self):
        assert bogota().num_qubits == 5
        assert johannesburg().num_qubits == 20

    def test_get_device_lookup(self):
        assert get_device("bogota").num_qubits == 5
        with pytest.raises(ValueError):
            get_device("unknown-device")

    def test_all_presets_construct(self):
        for name in DEVICE_PRESETS:
            device = get_device(name)
            assert device.num_qubits >= 5

    def test_larger_devices_noisier(self):
        """The Fig. 1 premise: error rates grow with device size."""
        suite = fig1_device_suite()
        rates = [d.noise.error_2q for d in suite]
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]

    def test_make_device_grid_validation(self):
        with pytest.raises(ValueError):
            make_device("g", 6, "grid", rows=2, cols=2)
        with pytest.raises(ValueError):
            make_device("g", 6, "torus")
