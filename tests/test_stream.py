"""Golden tests for sharded streaming FD reconstruction.

The contract: shards concatenated in index order reproduce ``fd_query``'s
distribution exactly (atol=1e-12), at peak memory of one shard.
"""

import numpy as np
import pytest

from repro import CutQC, cut_circuit, evaluate_subcircuit
from repro.library import bv, bv_solution, get_benchmark
from repro.postprocess import (
    PrecomputedTensorProvider,
    StreamingReconstructor,
    reconstruct_full,
)


def _streamer(circuit, cuts):
    cut = cut_circuit(circuit, cuts)
    results = [evaluate_subcircuit(s) for s in cut.subcircuits]
    full = reconstruct_full(cut, results).probabilities
    return StreamingReconstructor(cut, results=results), full


class TestShardsConcatenateExactly:
    @pytest.mark.parametrize("shard_qubits", [0, 1, 2, 3, 5])
    def test_fig4_all_definitions(self, fig4_circuit, shard_qubits):
        streamer, full = _streamer(fig4_circuit, [(2, 1)])
        got = streamer.full_distribution(shard_qubits)
        assert got.shape == full.shape
        assert np.allclose(got, full, atol=1e-12)

    @pytest.mark.parametrize(
        "name,size,device",
        [
            ("bv", 8, 5),
            ("hwea", 8, 5),
            ("supremacy", 9, 6),
            ("aqft", 6, 4),
        ],
    )
    def test_fig6_sweep_circuits(self, name, size, device):
        """The acceptance golden: fig6 benchmarks, exact to 1e-12."""
        kwargs = {"seed": 0, "depth": 8} if name == "supremacy" else {}
        circuit = get_benchmark(name, size, **kwargs)
        pipeline = CutQC(circuit, max_subcircuit_qubits=device)
        full = pipeline.fd_query().probabilities
        shard_qubits = min(3, size)
        pieces = [s.probabilities for s in pipeline.fd_stream(shard_qubits)]
        assert all(p.size == 1 << (size - shard_qubits) for p in pieces)
        assert np.allclose(np.concatenate(pieces), full, atol=1e-12)

    def test_shard_slices_match_full(self, fig4_circuit):
        streamer, full = _streamer(fig4_circuit, [(2, 1)])
        width = 5 - 2
        for shard in streamer.shards(2):
            want = full[shard.index << width : (shard.index + 1) << width]
            assert np.allclose(shard.probabilities, want, atol=1e-12)


class TestLazinessAndMemory:
    def test_shards_is_lazy_iterator(self, fig4_circuit):
        streamer, _ = _streamer(fig4_circuit, [(2, 1)])
        shards = streamer.shards(2)
        assert iter(shards) is shards  # a generator, not a list
        next(shards)
        assert streamer.last_stats.num_shards_emitted == 1
        assert streamer.last_stats.num_shards_total == 4

    def test_peak_shard_bytes_bounded(self, fig4_circuit):
        streamer, _ = _streamer(fig4_circuit, [(2, 1)])
        for _ in streamer.shards(2):
            pass
        stats = streamer.last_stats
        assert stats.peak_shard_bytes == (1 << 3) * 8  # 2^(5-2) float64s

    def test_collapse_cache_one_miss_per_subcircuit(self, fig4_circuit):
        streamer, _ = _streamer(fig4_circuit, [(2, 1)])
        num_subcircuits = streamer.cut_circuit.num_subcircuits
        for _ in streamer.shards(2):
            pass
        stats = streamer.last_stats
        # One full collapse per subcircuit for the whole stream; every
        # other shard derives from the cached generalized tensor.
        assert stats.cache_misses == num_subcircuits
        assert stats.cache_hits == 3 * num_subcircuits

    def test_shard_indices_subset(self, fig4_circuit):
        streamer, full = _streamer(fig4_circuit, [(2, 1)])
        width = 5 - 2
        shards = list(streamer.shards(2, shard_indices=[3, 1]))
        assert [s.index for s in shards] == [3, 1]
        for shard in shards:
            want = full[shard.index << width : (shard.index + 1) << width]
            assert np.allclose(shard.probabilities, want, atol=1e-12)
        assert streamer.last_stats.num_shards_emitted == 2


class TestTopK:
    def test_matches_argsort(self, fig4_circuit):
        streamer, full = _streamer(fig4_circuit, [(2, 1)])
        states = streamer.top_k(2, 4)
        order = np.argsort(full)[::-1][:4]
        got_probabilities = [p for _, p in states]
        assert np.allclose(got_probabilities, full[order], atol=1e-12)
        got_indices = [int(bits, 2) for bits, _ in states]
        assert got_probabilities == sorted(got_probabilities, reverse=True)
        assert set(got_indices) == {
            int(i) for i in order
        } or np.allclose(full[got_indices], full[order], atol=1e-12)

    def test_bv_solution_found_via_stream(self):
        circuit = bv(8)
        pipeline = CutQC(circuit, max_subcircuit_qubits=5)
        pipeline.evaluate()
        states = pipeline.fd_top_k(3, 1)
        assert states[0][0] == bv_solution(8)
        assert states[0][1] == pytest.approx(1.0, abs=1e-9)
        assert pipeline.stream_stats.peak_shard_bytes == (1 << 5) * 8

    def test_k_validated(self, fig4_circuit):
        streamer, _ = _streamer(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            streamer.top_k(2, 0)


class TestValidation:
    def test_shard_qubits_range(self, fig4_circuit):
        streamer, _ = _streamer(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            streamer.shards(6)
        with pytest.raises(ValueError):
            streamer.shards(-1)

    def test_shard_index_range(self, fig4_circuit):
        streamer, _ = _streamer(fig4_circuit, [(2, 1)])
        with pytest.raises(ValueError):
            list(streamer.shards(1, shard_indices=[2]))

    def test_provider_reuse_shares_cache(self, fig4_circuit):
        cut = cut_circuit(fig4_circuit, [(2, 1)])
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        provider = PrecomputedTensorProvider(cut, results=results)
        streamer = StreamingReconstructor(cut, provider=provider)
        for _ in streamer.shards(1):
            pass
        first_misses = provider.cache_stats.misses
        for _ in streamer.shards(1):
            pass
        assert provider.cache_stats.misses == first_misses  # all hits
