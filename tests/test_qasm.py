"""Tests for OpenQASM 2.0 import/export."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit, simulate_probabilities
from repro.circuits.qasm import QasmError, from_qasm, to_qasm
from repro.sim import simulate_statevector
from tests.conftest import random_connected_circuit


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(QuantumCircuit(3).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_two_qubit_gates(self):
        text = to_qasm(QuantumCircuit(2).cx(0, 1).cz(1, 0).swap(0, 1))
        assert "cx q[0],q[1];" in text
        assert "cz q[1],q[0];" in text
        assert "swap q[0],q[1];" in text

    def test_parametric_gates_render_pi(self):
        text = to_qasm(QuantumCircuit(1).rz(math.pi / 2, 0).rx(-math.pi, 0))
        assert "rz(pi/2) q[0];" in text
        assert "rx(-pi) q[0];" in text

    def test_arbitrary_angle_renders_float(self):
        text = to_qasm(QuantumCircuit(1).rz(0.1234, 0))
        assert "rz(0.1234) q[0];" in text

    def test_name_remapping(self):
        text = to_qasm(QuantumCircuit(2).i(0).p(0.5, 0).cp(0.5, 0, 1))
        assert "id q[0];" in text
        assert "u1(0.5) q[0];" in text
        assert "cu1(0.5) q[0],q[1];" in text

    def test_sy_lowered_on_export(self):
        text = to_qasm(QuantumCircuit(1).sy(0))
        assert "sy" not in text
        assert "sx q[0];" in text


class TestImport:
    def test_simple_program(self):
        circuit = from_qasm(
            """
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0],q[1];
            measure q -> c;
            """
        )
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit] == ["h", "cx"]

    def test_angle_expressions(self):
        circuit = from_qasm(
            "OPENQASM 2.0; qreg q[1]; rz(pi/4) q[0]; rx(-2*pi/3) q[0]; ry(0.5) q[0];"
        )
        assert circuit[0].params[0] == pytest.approx(math.pi / 4)
        assert circuit[1].params[0] == pytest.approx(-2 * math.pi / 3)
        assert circuit[2].params[0] == pytest.approx(0.5)

    def test_comments_ignored(self):
        circuit = from_qasm(
            "OPENQASM 2.0;\n// a comment\nqreg q[1];\nh q[0]; // trailing\n"
        )
        assert len(circuit) == 1

    def test_barriers_and_measure_skipped(self):
        circuit = from_qasm(
            "OPENQASM 2.0; qreg q[2]; creg c[2]; h q[0]; barrier q; "
            "measure q[0] -> c[0];"
        )
        assert [g.name for g in circuit] == ["h"]

    def test_u3_maps_to_u(self):
        circuit = from_qasm(
            "OPENQASM 2.0; qreg q[1]; u3(0.1,0.2,0.3) q[0];"
        )
        assert circuit[0].name == "u"
        assert circuit[0].params == pytest.approx((0.1, 0.2, 0.3))

    def test_unsupported_gate_rejected(self):
        with pytest.raises(QasmError, match="unsupported gate"):
            from_qasm("OPENQASM 2.0; qreg q[2]; ccx q[0],q[1],q[1];")

    def test_missing_register_rejected(self):
        with pytest.raises(QasmError, match="no quantum register"):
            from_qasm("OPENQASM 2.0;")

    def test_gate_before_register_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; h q[0]; qreg q[1];")

    def test_two_registers_rejected(self):
        with pytest.raises(QasmError, match="one quantum register"):
            from_qasm("OPENQASM 2.0; qreg q[1]; qreg q[2];")

    def test_wrong_version_rejected(self):
        with pytest.raises(QasmError, match="version"):
            from_qasm("OPENQASM 3.0; qreg q[1];")

    def test_param_count_checked(self):
        with pytest.raises(QasmError, match="parameter"):
            from_qasm("OPENQASM 2.0; qreg q[1]; rz q[0];")

    def test_malicious_angle_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg q[1]; rz(__import__) q[0];")


class TestRoundTrip:
    def test_handwritten_round_trip(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(1).cz(1, 2).rz(0.37, 2).swap(0, 2)
        recovered = from_qasm(to_qasm(circuit))
        assert recovered == circuit

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_round_trip_preserves_state(self, n, seed):
        circuit = random_connected_circuit(n, 2 * n, seed)
        recovered = from_qasm(to_qasm(circuit))
        a = simulate_statevector(circuit).amplitudes()
        b = simulate_statevector(recovered).amplitudes()
        # sy is lowered on export, so compare up to global phase.
        assert np.isclose(abs(np.vdot(a, b)), 1.0, atol=1e-9)

    def test_benchmark_circuits_export(self):
        from repro.library import BENCHMARKS, get_benchmark, valid_sizes

        for name in BENCHMARKS:
            size = valid_sizes(name, 4, 9)[0]
            kwargs = {"seed": 0} if name in ("supremacy", "adder") else {}
            circuit = get_benchmark(name, size, **kwargs)
            recovered = from_qasm(to_qasm(circuit))
            assert np.allclose(
                simulate_probabilities(circuit),
                simulate_probabilities(recovered),
                atol=1e-9,
            )
