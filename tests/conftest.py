"""Shared test fixtures and circuit generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import QuantumCircuit


def random_connected_circuit(
    num_qubits: int,
    num_2q_gates: int,
    seed: int,
    with_1q: bool = True,
) -> QuantumCircuit:
    """A random circuit guaranteed fully connected via an initial CX chain."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(0, np.pi)), qubit)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    names_2q = ["cx", "cz", "cp", "rzz"]
    names_1q = ["h", "t", "s", "x", "rx", "rz"]
    remaining = num_2q_gates - (num_qubits - 1)
    for _ in range(max(0, remaining)):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        name = names_2q[rng.integers(len(names_2q))]
        if name in ("cp", "rzz"):
            circuit.add(name, (int(a), int(b)), float(rng.uniform(0, np.pi)))
        else:
            circuit.add(name, (int(a), int(b)))
        if with_1q and rng.random() < 0.7:
            q = int(rng.integers(num_qubits))
            name1 = names_1q[rng.integers(len(names_1q))]
            if name1 in ("rx", "rz"):
                circuit.add(name1, (q,), float(rng.uniform(0, 2 * np.pi)))
            else:
                circuit.add(name1, (q,))
    return circuit


@pytest.fixture
def fig4_circuit() -> QuantumCircuit:
    """The paper's Fig. 4 example: 5 qubits, a cZ ladder, one cut on q2."""
    circuit = QuantumCircuit(5)
    for qubit in range(5):
        circuit.h(qubit)
    circuit.cz(0, 1).cz(1, 2)
    circuit.t(2)
    circuit.cz(2, 3).cz(3, 4)
    return circuit


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
