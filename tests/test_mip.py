"""Tests for the branch-and-bound cut searcher (our Gurobi stand-in)."""

import itertools

import numpy as np
import pytest

from repro import QuantumCircuit, build_circuit_graph
from repro.cutting import (
    CutSearchError,
    MIPCutSearcher,
    branch_and_bound_search,
    evaluate_partition,
)
from tests.conftest import random_connected_circuit


def brute_force_optimum(graph, max_qubits, max_subcircuits, max_cuts):
    """Exhaustively enumerate all partitions (small graphs only)."""
    best = None
    n = graph.num_vertices
    for labels in itertools.product(range(max_subcircuits), repeat=n):
        num_clusters = max(labels) + 1
        if num_clusters < 2:
            continue
        if set(labels) != set(range(num_clusters)):
            continue
        cost = evaluate_partition(
            graph,
            list(labels),
            max_qubits,
            max_cuts=max_cuts,
            max_subcircuits=max_subcircuits,
        )
        if cost.feasible and (best is None or cost.objective < best):
            best = cost.objective
    return best


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_brute_force_on_random_circuits(self, seed):
        circuit = random_connected_circuit(4, 7, seed, with_1q=False)
        graph = build_circuit_graph(circuit)
        expected = brute_force_optimum(graph, 3, 3, 10)
        if expected is None:
            with pytest.raises(CutSearchError):
                branch_and_bound_search(graph, 3, 3, 10)
        else:
            _, cost = branch_and_bound_search(graph, 3, 3, 10)
            assert cost.objective == pytest.approx(expected)

    @pytest.mark.parametrize("max_qubits", [3, 4])
    def test_matches_brute_force_on_chain(self, max_qubits):
        circuit = QuantumCircuit(5)
        for q in range(4):
            circuit.cx(q, q + 1)
        circuit.cx(1, 2)
        graph = build_circuit_graph(circuit)
        expected = brute_force_optimum(graph, max_qubits, 3, 10)
        _, cost = branch_and_bound_search(graph, max_qubits, 3, 10)
        assert cost.objective == pytest.approx(expected)

    def test_fig4_optimal_is_single_cut(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        assignment, cost = branch_and_bound_search(graph, 3, 5, 10)
        assert cost.num_cuts == 1
        assert sorted(cost.d) == [3, 3]


class TestConstraints:
    def test_capacity_respected(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        _, cost = branch_and_bound_search(graph, 3, 5, 10)
        assert all(d <= 3 for d in cost.d)

    def test_cut_budget_respected(self):
        circuit = QuantumCircuit(6)
        for q in range(5):
            circuit.cx(q, q + 1)
        graph = build_circuit_graph(circuit)
        _, cost = branch_and_bound_search(graph, 4, 5, max_cuts=2)
        assert cost.num_cuts <= 2

    def test_infeasible_raises(self):
        # A 3-qubit all-to-all circuit cannot fit 2-qubit subcircuits
        # within one cut.
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        graph = build_circuit_graph(circuit)
        with pytest.raises(CutSearchError):
            branch_and_bound_search(graph, 2, 2, max_cuts=1)

    def test_every_vertex_assigned_exactly_once(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        assignment, _ = branch_and_bound_search(graph, 3, 5, 10)
        assert len(assignment) == graph.num_vertices
        assert all(a >= 0 for a in assignment)

    def test_symmetry_breaking_labels_contiguous(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        assignment, _ = branch_and_bound_search(graph, 3, 5, 10)
        labels = sorted(set(assignment))
        assert labels == list(range(len(labels)))
        assert assignment[0] == 0  # vertex 1 in subcircuit 1 (Eq. 12)

    def test_parameter_validation(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        with pytest.raises(ValueError):
            MIPCutSearcher(graph, 1)
        with pytest.raises(ValueError):
            MIPCutSearcher(graph, 3, max_subcircuits=1)

    def test_node_limit_enforced(self):
        circuit = random_connected_circuit(6, 14, seed=9, with_1q=False)
        graph = build_circuit_graph(circuit)
        searcher = MIPCutSearcher(graph, 4, node_limit=10)
        with pytest.raises(CutSearchError, match="node limit"):
            searcher.search()

    def test_nodes_visited_reported(self, fig4_circuit):
        graph = build_circuit_graph(fig4_circuit)
        searcher = MIPCutSearcher(graph, 3)
        searcher.search()
        assert searcher.nodes_visited > 0


class TestSolutionUsability:
    def test_solution_reconstructs_exactly(self, fig4_circuit):
        from repro import (
            cut_circuit_from_assignment,
            evaluate_subcircuit,
            reconstruct_full,
            simulate_probabilities,
        )

        graph = build_circuit_graph(fig4_circuit)
        assignment, _ = branch_and_bound_search(graph, 3, 5, 10)
        cut = cut_circuit_from_assignment(fig4_circuit, assignment)
        results = [evaluate_subcircuit(s) for s in cut.subcircuits]
        rec = reconstruct_full(cut, results)
        assert np.allclose(
            rec.probabilities, simulate_probabilities(fig4_circuit), atol=1e-10
        )
