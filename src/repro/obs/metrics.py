"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Every layer of the pipeline used to report health through its own ad-hoc
dataclass (``ParallelStats``, ``DDStats``, ``RebindStats``, ``fusion_stats()``,
scheduler stage timings, store cache hits) with no correlation between them.
This module gives them one thread-safe sink:

* :class:`Counter` — monotonically increasing totals.
* :class:`Gauge` — last-write-wins instantaneous values (cache sizes …).
* :class:`Histogram` — fixed-bucket latency distributions with Prometheus
  cumulative-bucket semantics.

The registry is **mergeable across processes**: :meth:`MetricsRegistry.snapshot`
returns a plain JSON/pickle-able dict and :meth:`MetricsRegistry.merge` folds a
worker snapshot back in (counters/histograms add, gauges overwrite), so pool
workers can ship their numbers home with task results.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition format used
by ``GET /metrics``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
]

# Latency buckets spanning micro-bench spans (sub-ms fused passes) through
# multi-minute full-device queries.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)

LabelValues = Tuple[str, ...]


def _label_key(labelnames: Sequence[str], labels: Dict[str, str]) -> LabelValues:
    if len(labels) != len(labelnames):
        raise ValueError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    try:
        return tuple(str(labels[name]) for name in labelnames)
    except KeyError as error:  # pragma: no cover - defensive
        raise ValueError(
            f"missing label {error} (expected {list(labelnames)})"
        ) from None


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _render_labels(labelnames: Sequence[str], values: LabelValues,
                   extra: Optional[Tuple[str, str]] = None) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    ]
    if extra is not None:
        parts.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Metric:
    """Common storage: a lock plus a map from label-values to a value."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[LabelValues, float] = {}

    def _key(self, labels: Dict[str, str]) -> LabelValues:
        return _label_key(self.labelnames, labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def snapshot(self) -> dict:
        with self._lock:
            values = [[list(key), value] for key, value in self._values.items()]
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "values": values,
        }


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def merge(self, values) -> None:
        with self._lock:
            for key, value in values:
                key = tuple(key)
                self._values[key] = self._values.get(key, 0.0) + value

    def render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def merge(self, values) -> None:
        with self._lock:
            for key, value in values:
                self._values[tuple(key)] = value

    def render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative ``le`` semantics."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be sorted and unique")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(float(edge) for edge in buckets)
        self._lock = threading.Lock()
        # key -> [per-bucket counts..., overflow], plus sum and count.
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.labelnames, labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    def value(self, **labels: str) -> Tuple[int, float]:
        """Return ``(count, sum)`` for one label set."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                return 0, 0.0
            return sum(counts), self._sums[key]

    def bucket_counts(self, **labels: str) -> List[int]:
        """Cumulative per-bucket counts (including the ``+Inf`` bucket)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts = list(self._counts.get(key, [0] * (len(self.buckets) + 1)))
        total = 0
        cumulative = []
        for count in counts:
            total += count
            cumulative.append(total)
        return cumulative

    def snapshot(self) -> dict:
        with self._lock:
            values = [
                [list(key), list(counts), self._sums[key]]
                for key, counts in self._counts.items()
            ]
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "buckets": list(self.buckets),
            "values": values,
        }

    def merge(self, buckets, values) -> None:
        if tuple(buckets) != self.buckets:
            raise ValueError(
                f"histogram {self.name}: bucket mismatch during merge"
            )
        with self._lock:
            for key, counts, total in values:
                key = tuple(key)
                existing = self._counts.get(key)
                if existing is None:
                    self._counts[key] = list(counts)
                    self._sums[key] = total
                else:
                    for index, count in enumerate(counts):
                        existing[index] += count
                    self._sums[key] += total

    def render(self, lines: List[str]) -> None:
        with self._lock:
            items = sorted(
                (key, list(counts), self._sums[key])
                for key, counts in self._counts.items()
            )
        for key, counts, total in items:
            cumulative = 0
            for edge, count in zip(self.buckets, counts):
                cumulative += count
                labels = _render_labels(
                    self.labelnames, key, extra=("le", _format_value(edge))
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(self.labelnames, key, extra=("le", "+Inf"))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {cumulative}")


class MetricsRegistry:
    """Thread-safe collection of named metrics with one shared namespace.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the metric, later calls return the same object (and raise if
    the kind does not match, so two layers cannot silently collide).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help, labelnames), "counter"
        )

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, labelnames), "gauge"
        )

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, labelnames, buckets),
            "histogram",
        )

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before every render/snapshot.

        Collectors refresh pull-style gauges (cache sizes, queue depths)
        so scrapes see current values without every cache pushing on
        mutation.  Collector failures are swallowed: a broken gauge must
        not take down the scrape endpoint.
        """
        with self._lock:
            self._collectors.append(collector)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            except Exception:  # noqa: BLE001 - scrapes must survive
                pass

    def snapshot(self, run_collectors: bool = True) -> dict:
        if run_collectors:
            self._run_collectors()
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot() for name, metric in sorted(metrics.items())}

    def merge(self, snapshot: dict) -> None:
        """Fold a worker-process snapshot into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (workers label theirs by pid, so nothing collides).
        """
        for name, doc in snapshot.items():
            kind = doc["kind"]
            if kind == "counter":
                metric = self.counter(name, doc.get("help", ""),
                                      doc.get("labelnames", ()))
                metric.merge(doc["values"])
            elif kind == "gauge":
                metric = self.gauge(name, doc.get("help", ""),
                                    doc.get("labelnames", ()))
                metric.merge(doc["values"])
            elif kind == "histogram":
                metric = self.histogram(name, doc.get("help", ""),
                                        doc.get("labelnames", ()),
                                        doc["buckets"])
                metric.merge(doc["buckets"], doc["values"])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self._run_collectors()
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            metric.render(lines)
        return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every pipeline layer feeds."""
    return _REGISTRY
