"""Span-based tracing for the cut → evaluate → reconstruct pipeline.

A *span* is a named, timed region with attributes and children; a trace is
the span tree rooted at one job/CLI invocation.  Tracing is *ambient*: a
root is activated with :func:`start` and every :func:`span` call underneath
(same thread, or same task in a pool worker) attaches to the current span
via a :mod:`contextvars` variable — no plumbing of trace handles through
call signatures.

The disabled path is allocation-free by construction: when no root is
active, :func:`span` returns a shared no-op singleton without creating a
``Span``, so hot loops (per-gate fused matmuls, per-bin DD rounds) pay one
``ContextVar.get`` and nothing else.  ``bench_obs_overhead.py`` gates this.

Spans serialize to plain dicts (:meth:`Span.to_dict`) so they cross
``WorkerPool`` process boundaries: workers run their task under a local
root and return it with the result; the parent grafts it back with
:func:`attach`, which is how a shard's reduction-tree merge shows up under
its parent query span.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "span",
    "start",
    "enabled",
    "current",
    "attach",
    "format_tree",
]


class Span:
    """One timed region: name, attributes, wall/CPU time, children."""

    __slots__ = (
        "name", "attrs", "start", "wall_seconds", "cpu_seconds", "error",
        "children", "_perf0", "_cpu0",
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.start = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.error: Optional[str] = None
        self.children: List["Span"] = []
        self._perf0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; chainable, mirrored by the no-op."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        doc: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.error is not None:
            doc["error"] = self.error
        if self.children:
            doc["children"] = [child.to_dict() for child in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        span = cls(doc["name"], dict(doc.get("attrs", {})))
        span.start = doc.get("start", 0.0)
        span.wall_seconds = doc.get("wall_seconds", 0.0)
        span.cpu_seconds = doc.get("cpu_seconds", 0.0)
        span.error = doc.get("error")
        span.children = [cls.from_dict(child) for child in doc.get("children", [])]
        return span


_CURRENT: ContextVar[Optional[Span]] = ContextVar("repro_obs_span", default=None)


class _NoopSpan:
    """Shared do-nothing span: returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager that times a real span and maintains the ambient stack."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span):
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        span = self._span
        span.start = time.time()
        span._perf0 = time.perf_counter()
        span._cpu0 = time.process_time()
        self._token = _CURRENT.set(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.wall_seconds = time.perf_counter() - span._perf0
        span.cpu_seconds = time.process_time() - span._cpu0
        if exc_type is not None and span.error is None:
            span.error = f"{exc_type.__name__}: {exc}"
        _CURRENT.reset(self._token)
        return False


def span(name: str, attrs: Optional[Dict[str, Any]] = None):
    """Open a child span under the current one, or a no-op when disabled.

    Usage::

        with trace.span("evaluate.variant_batch", attrs={"variants": n}):
            ...

    When no trace is active this allocates nothing and returns a shared
    singleton, so it is safe on hot paths.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NOOP
    child = Span(name, dict(attrs) if attrs else {})
    parent.children.append(child)
    return _ActiveSpan(child)


def start(name: str, attrs: Optional[Dict[str, Any]] = None) -> "_ActiveSpan":
    """Open a *root* span, enabling tracing for everything underneath.

    Unlike :func:`span` this always creates a real span (it is the opt-in
    switch).  The context manager yields the :class:`Span`; keep a
    reference and call :meth:`Span.to_dict` after exit to serialize the
    finished tree.  Nested ``start`` calls attach to the active trace like
    ordinary spans, so a traced CLI run that drives the scheduler in-process
    produces one tree.
    """
    root_attrs = dict(attrs) if attrs else {}
    root_attrs.setdefault("pid", os.getpid())
    parent = _CURRENT.get()
    root = Span(name, root_attrs)
    if parent is not None:
        parent.children.append(root)
    return _ActiveSpan(root)


def enabled() -> bool:
    """True when a trace is active in this context (thread/task)."""
    return _CURRENT.get() is not None


def current() -> Optional[Span]:
    """The innermost active span, or None when tracing is disabled."""
    return _CURRENT.get()


def attach(doc: Optional[dict]) -> None:
    """Graft a serialized span tree (e.g. from a pool worker) onto the
    current span.  A no-op when tracing is disabled or ``doc`` is falsy."""
    if not doc:
        return
    parent = _CURRENT.get()
    if parent is None:
        return
    parent.children.append(Span.from_dict(doc))


def format_tree(doc, total_seconds: Optional[float] = None) -> str:
    """Render a span tree (dict or :class:`Span`) with per-stage percentages.

    Percentages are relative to the root's wall time, so the output reads
    as a per-stage latency budget::

        job:fd (bv-14)                    1.234s 100.0%
        |- cut                            0.101s   8.2%
        |- evaluate                       0.693s  56.2%
        |  `- evaluate.variant_batch      0.691s  56.0%
        `- query.fd                       0.437s  35.4%
    """
    if isinstance(doc, Span):
        doc = doc.to_dict()
    root_wall = doc.get("wall_seconds", 0.0)
    total = total_seconds if total_seconds else (root_wall or 1.0)
    lines: List[str] = []

    def _label(node: dict) -> str:
        name = node["name"]
        attrs = node.get("attrs") or {}
        shown = {k: v for k, v in attrs.items() if k != "pid"}
        suffix = ""
        if shown:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
            suffix = f" ({inner})"
        if node.get("error"):
            suffix += f" !{node['error']}"
        return name + suffix

    def _walk(node: dict, prefix: str, branch: str) -> None:
        wall = node.get("wall_seconds", 0.0)
        pct = 100.0 * wall / total if total else 0.0
        label = prefix + branch + _label(node)
        lines.append(f"{label:<56s} {wall:>9.3f}s {pct:>5.1f}%")
        children = node.get("children", [])
        child_prefix = prefix + ("   " if branch.startswith("`") else
                                 "|  " if branch else "")
        for index, child in enumerate(children):
            last = index == len(children) - 1
            _walk(child, child_prefix, "`- " if last else "|- ")

    _walk(doc, "", "")
    return "\n".join(lines)
