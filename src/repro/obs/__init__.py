"""Unified observability: span tracing + process-wide metrics registry.

Import idiom used across the pipeline::

    from ..obs import trace
    from ..obs.metrics import get_registry

See :mod:`repro.obs.trace` for the span naming scheme and
:mod:`repro.obs.metrics` for the registry/merge/scrape machinery.
"""

from . import trace  # noqa: F401
from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]
