"""CutQC reproduction: evaluate large quantum circuits with small QPUs.

Cut a circuit into subcircuits that fit a small (virtual) quantum device,
run the subcircuit variants, and classically reconstruct — or dynamically
sample — the uncut circuit's output distribution.

Quickstart::

    from repro import CutQC, supremacy

    circuit = supremacy(8, seed=0)
    pipeline = CutQC(circuit, max_subcircuit_qubits=5)
    result = pipeline.fd_query()
    print(result.probabilities)

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced tables/figures.
"""

from .circuits import Gate, QuantumCircuit, build_circuit_graph
from .core import (
    CutQC,
    ExecutionReport,
    RebindStats,
    VariantExecutor,
    VariationalSession,
    evaluate_with_cutqc,
)
from .cutting import (
    CutCircuit,
    CutSearchError,
    CutSolution,
    Subcircuit,
    batched_variant_probabilities,
    cut_circuit,
    cut_circuit_from_assignment,
    evaluate_subcircuit,
    find_cuts,
)
from .devices import VirtualDevice, bogota, get_device, johannesburg, make_device
from .library import (
    adder,
    aqft,
    bv,
    get_benchmark,
    grover,
    hwea,
    supremacy,
    valid_sizes,
)
from .metrics import chi_square_loss, chi_square_reduction, fidelity
from .postprocess import (
    ContractionEngine,
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
    QueryPlan,
    Reconstructor,
    StreamingReconstructor,
    contract_terms,
    reconstruct_full,
)
from .sim import (
    BatchedStatevector,
    NoiseModel,
    NoisySimulator,
    ShotSampler,
    Statevector,
    fuse_gates,
    simulate_probabilities,
)

__version__ = "1.0.0"

__all__ = [
    "Gate",
    "QuantumCircuit",
    "build_circuit_graph",
    "CutQC",
    "ExecutionReport",
    "VariantExecutor",
    "VariationalSession",
    "RebindStats",
    "evaluate_with_cutqc",
    "CutCircuit",
    "CutSearchError",
    "CutSolution",
    "Subcircuit",
    "cut_circuit",
    "cut_circuit_from_assignment",
    "batched_variant_probabilities",
    "evaluate_subcircuit",
    "find_cuts",
    "VirtualDevice",
    "bogota",
    "get_device",
    "johannesburg",
    "make_device",
    "adder",
    "aqft",
    "bv",
    "get_benchmark",
    "grover",
    "hwea",
    "supremacy",
    "valid_sizes",
    "chi_square_loss",
    "chi_square_reduction",
    "fidelity",
    "ContractionEngine",
    "contract_terms",
    "DynamicDefinitionQuery",
    "PrecomputedTensorProvider",
    "Reconstructor",
    "reconstruct_full",
    "NoiseModel",
    "NoisySimulator",
    "ShotSampler",
    "BatchedStatevector",
    "Statevector",
    "fuse_gates",
    "simulate_probabilities",
    "__version__",
]
