"""Measurement-error mitigation (paper refs [46, 47] substrate).

Readout error is the one NISQ error channel that acts *after* the quantum
computation, so it can be inverted classically: calibrate the confusion
matrix ``C`` (``C[i, j] = P(read i | prepared j)``) by preparing basis
states, then solve ``C x = observed`` for the mitigated distribution.

This pairs especially well with CutQC: subcircuits are small (<= the
device size), so *full* 2^n-state calibration is affordable — one of the
practical advantages of running small circuits that the paper's fidelity
argument rests on.  ``MitigatedBackend`` wraps any device backend so the
pipeline applies mitigation to every variant automatically.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits import QuantumCircuit
from .device import VirtualDevice

__all__ = [
    "calibrate_confusion_matrix",
    "mitigate_distribution",
    "MitigatedBackend",
]


def calibrate_confusion_matrix(
    device: VirtualDevice,
    num_qubits: int,
    shots: int = 4096,
    trajectories: int = 8,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Measure ``C[i, j] = P(read i | prepared j)`` on ``device``.

    Prepares each of the ``2^num_qubits`` computational basis states with
    X gates and records the observed distribution — the textbook full
    calibration, affordable because CutQC subcircuits are small.
    """
    if num_qubits > device.num_qubits:
        raise ValueError(
            f"{num_qubits} qubits exceed device size {device.num_qubits}"
        )
    if num_qubits > 6:
        raise ValueError(
            "full confusion calibration beyond 6 qubits is impractical "
            "(2^n preparation circuits); calibrate per subcircuit size"
        )
    dim = 1 << num_qubits
    confusion = np.zeros((dim, dim))
    rng = np.random.default_rng(seed)
    for prepared in range(dim):
        circuit = QuantumCircuit(num_qubits)
        any_gate = False
        for bit in range(num_qubits):
            if (prepared >> (num_qubits - 1 - bit)) & 1:
                circuit.x(bit)
                any_gate = True
            else:
                circuit.i(bit)
        del any_gate
        observed = device.run(
            circuit,
            shots=shots,
            trajectories=trajectories,
            seed=int(rng.integers(2**31 - 1)),
        )
        confusion[:, prepared] = observed
    return confusion


def mitigate_distribution(
    observed: np.ndarray,
    confusion: np.ndarray,
    clip: bool = True,
) -> np.ndarray:
    """Invert the confusion matrix: least-squares solve ``C x = observed``.

    With ``clip`` (default) the solution is projected back onto the
    probability simplex (negative entries floored at 0, then renormalized)
    — inversion amplifies shot noise and can leave small negatives.
    """
    observed = np.asarray(observed, dtype=float)
    if confusion.shape != (observed.size, observed.size):
        raise ValueError(
            f"confusion matrix {confusion.shape} does not match a "
            f"{observed.size}-state distribution"
        )
    solution, *_ = np.linalg.lstsq(confusion, observed, rcond=None)
    if clip:
        solution = np.clip(solution, 0.0, None)
        total = solution.sum()
        if total > 0:
            solution = solution / total
    return solution


class MitigatedBackend:
    """Wrap a device so every evaluated circuit is readout-mitigated.

    Confusion matrices are calibrated lazily per circuit width and
    cached, so a CutQC evaluation with subcircuits of mixed sizes pays
    for each width once.
    """

    def __init__(
        self,
        device: VirtualDevice,
        shots: Optional[int] = None,
        trajectories: int = 24,
        calibration_shots: int = 4096,
        seed: Optional[int] = None,
    ):
        self.device = device
        self.shots = shots
        self.trajectories = trajectories
        self.calibration_shots = calibration_shots
        self._rng = np.random.default_rng(seed)
        self._confusions: Dict[int, np.ndarray] = {}

    def confusion_for(self, num_qubits: int) -> np.ndarray:
        if num_qubits not in self._confusions:
            self._confusions[num_qubits] = calibrate_confusion_matrix(
                self.device,
                num_qubits,
                shots=self.calibration_shots,
                trajectories=self.trajectories,
                seed=int(self._rng.integers(2**31 - 1)),
            )
        return self._confusions[num_qubits]

    def __call__(self, circuit: QuantumCircuit) -> np.ndarray:
        observed = self.device.run(
            circuit,
            shots=self.shots,
            trajectories=self.trajectories,
            seed=int(self._rng.integers(2**31 - 1)),
        )
        return mitigate_distribution(observed, self.confusion_for(circuit.num_qubits))
