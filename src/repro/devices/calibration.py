"""Per-qubit / per-link calibration data and noise-adaptive layout.

Real devices are heterogeneous: every qubit has its own readout error and
every coupler its own two-qubit gate error, and noise-adaptive compilers
(paper ref [32], used for *both* execution modes in the paper's
experiments) pick the best subgraph from live calibration data.  This
module adds that substrate:

* :class:`Calibration` — per-qubit 1q/readout errors and per-edge 2q
  errors, with a synthetic generator that mimics published calibration
  spreads (log-normal around the device's base rates);
* :func:`noise_adaptive_layout` — chooses the connected subgraph of
  physical qubits minimizing expected error mass, replacing the purely
  topological :func:`~repro.devices.transpiler.select_layout`;
* :class:`CalibratedDevice` — a :class:`~repro.devices.device.VirtualDevice`
  whose trajectory simulation draws error rates per gate from the
  calibration rather than uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..sim.sampler import sample_distribution
from ..sim.statevector import Statevector
from .device import VirtualDevice

__all__ = ["Calibration", "noise_adaptive_layout", "CalibratedDevice"]

_PAULI_NAMES_1Q = ("x", "y", "z")
_PAULI_PAIRS_2Q = tuple(
    (a, b)
    for a in ("i", "x", "y", "z")
    for b in ("i", "x", "y", "z")
    if not (a == "i" and b == "i")
)


@dataclass
class Calibration:
    """Heterogeneous error rates for one device."""

    error_1q: Dict[int, float]
    error_2q: Dict[Tuple[int, int], float]
    readout: Dict[int, float]

    def __post_init__(self) -> None:
        self.error_2q = {
            (min(a, b), max(a, b)): rate for (a, b), rate in self.error_2q.items()
        }
        for mapping, label in (
            (self.error_1q, "error_1q"),
            (self.error_2q, "error_2q"),
            (self.readout, "readout"),
        ):
            for key, rate in mapping.items():
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"{label}[{key}] = {rate} outside [0, 1]")

    # ------------------------------------------------------------------
    @classmethod
    def synthetic(
        cls,
        device: VirtualDevice,
        spread: float = 0.5,
        seed: Optional[int] = None,
    ) -> "Calibration":
        """Log-normal per-qubit/per-edge rates around the device's base.

        ``spread`` is the sigma of the log-normal factor; 0.5 gives the
        ~2-3x qubit-to-qubit variation typical of published calibrations.
        """
        rng = np.random.default_rng(seed)
        base = device.noise

        def jitter(rate: float) -> float:
            return float(min(0.5, rate * rng.lognormal(0.0, spread)))

        return cls(
            error_1q={q: jitter(base.error_1q) for q in range(device.num_qubits)},
            error_2q={edge: jitter(base.error_2q) for edge in device.coupling_map},
            readout={q: jitter(base.readout) for q in range(device.num_qubits)},
        )

    # ------------------------------------------------------------------
    def edge_error(self, a: int, b: int) -> float:
        return self.error_2q[(min(a, b), max(a, b))]

    def qubit_quality(self, qubit: int, graph: nx.Graph) -> float:
        """Error mass of a qubit: own rates plus its best couplers."""
        link_errors = sorted(
            self.edge_error(qubit, n) for n in graph.neighbors(qubit)
        )
        best_links = sum(link_errors[:2]) / max(1, min(2, len(link_errors)))
        return self.error_1q[qubit] + self.readout[qubit] + best_links

    def describe(self) -> str:
        worst_q = max(self.readout, key=self.readout.get)
        worst_e = max(self.error_2q, key=self.error_2q.get)
        return (
            f"calibration: {len(self.error_1q)} qubits, "
            f"{len(self.error_2q)} couplers; worst readout q{worst_q} "
            f"({self.readout[worst_q]:.4f}), worst coupler {worst_e} "
            f"({self.error_2q[worst_e]:.4f})"
        )


def noise_adaptive_layout(
    device: VirtualDevice,
    calibration: Calibration,
    num_logical: int,
) -> List[int]:
    """Greedy lowest-error connected subgraph (ref [32] stand-in).

    Start from the highest-quality qubit and grow through the lowest-error
    coupler on the frontier until ``num_logical`` qubits are selected.
    """
    if num_logical > device.num_qubits:
        raise ValueError(
            f"{num_logical} logical qubits exceed device size {device.num_qubits}"
        )
    graph = device.coupling_graph()
    start = min(
        graph.nodes, key=lambda q: calibration.qubit_quality(q, graph)
    )
    chosen = [start]
    chosen_set = {start}
    while len(chosen) < num_logical:
        frontier: List[Tuple[float, int]] = []
        for member in chosen:
            for neighbor in graph.neighbors(member):
                if neighbor in chosen_set:
                    continue
                cost = (
                    calibration.edge_error(member, neighbor)
                    + calibration.error_1q[neighbor]
                    + calibration.readout[neighbor]
                )
                frontier.append((cost, neighbor))
        if not frontier:  # pragma: no cover - connected devices
            break
        frontier.sort()
        _, picked = frontier[0]
        chosen.append(picked)
        chosen_set.add(picked)
    return chosen


class CalibratedDevice(VirtualDevice):
    """A virtual device with heterogeneous, calibration-driven noise."""

    def __init__(self, *args, calibration: Optional[Calibration] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.calibration = calibration or Calibration.synthetic(self, seed=self.seed)

    @classmethod
    def from_device(
        cls,
        device: VirtualDevice,
        calibration: Optional[Calibration] = None,
        seed: Optional[int] = None,
    ) -> "CalibratedDevice":
        return cls(
            name=device.name,
            num_qubits=device.num_qubits,
            coupling_map=device.coupling_map,
            noise=device.noise,
            shots=device.shots,
            seed=seed if seed is not None else device.seed,
            calibration=calibration,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        trajectories: int = 24,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Transpile with the noise-adaptive layout, simulate with
        per-gate calibrated error rates."""
        from ..utils import marginalize
        from .transpiler import compact_circuit, transpile

        if circuit.num_qubits > self.num_qubits:
            raise ValueError(
                f"circuit of {circuit.num_qubits} qubits does not fit device "
                f"{self.name!r} ({self.num_qubits} qubits)"
            )
        layout = noise_adaptive_layout(self, self.calibration, circuit.num_qubits)
        transpiled = transpile(circuit, self, initial_layout=layout)
        compacted, kept_wires = compact_circuit(
            transpiled.circuit, keep=transpiled.final_layout
        )
        wire_map = {local: physical for local, physical in enumerate(kept_wires)}
        distribution = self._calibrated_distribution(
            compacted, wire_map, trajectories, seed
        )
        keep = [
            kept_wires.index(transpiled.final_layout[q])
            for q in range(circuit.num_qubits)
        ]
        effective_shots = shots if shots is not None else self.shots
        if effective_shots:
            rng = np.random.default_rng(seed if seed is not None else self.seed)
            distribution = sample_distribution(
                distribution, effective_shots, rng
            )
        return marginalize(distribution, keep, compacted.num_qubits)

    # ------------------------------------------------------------------
    def _gate_error(self, gate: Gate, wire_map: Dict[int, int]) -> float:
        if gate.is_multiqubit:
            a, b = (wire_map[q] for q in gate.qubits)
            return self.calibration.edge_error(a, b)
        return self.calibration.error_1q[wire_map[gate.qubits[0]]]

    def _calibrated_distribution(
        self,
        circuit: QuantumCircuit,
        wire_map: Dict[int, int],
        trajectories: int,
        seed: Optional[int],
    ) -> np.ndarray:
        rng = np.random.default_rng(seed if seed is not None else self.seed)
        clean = Statevector(circuit.num_qubits).apply_circuit(circuit).probabilities()
        log_clean = sum(
            np.log1p(-min(self._gate_error(g, wire_map), 1 - 1e-12))
            for g in circuit
        )
        clean_weight = float(np.exp(log_clean))
        noisy = np.zeros_like(clean)
        noisy_count = 0
        for _ in range(trajectories):
            sample = self._trajectory(circuit, wire_map, rng)
            if sample is None:
                continue
            noisy += sample
            noisy_count += 1
        if noisy_count:
            averaged = clean_weight * clean + (1 - clean_weight) * (
                noisy / noisy_count
            )
        else:
            averaged = clean
        return self._apply_heterogeneous_readout(averaged, wire_map)

    def _trajectory(
        self, circuit: QuantumCircuit, wire_map: Dict[int, int], rng
    ) -> Optional[np.ndarray]:
        state = Statevector(circuit.num_qubits)
        injected = False
        for gate in circuit:
            state.apply_gate(gate)
            rate = self._gate_error(gate, wire_map)
            if rng.random() >= rate:
                continue
            injected = True
            if gate.is_multiqubit:
                pair = _PAULI_PAIRS_2Q[rng.integers(len(_PAULI_PAIRS_2Q))]
                for name, qubit in zip(pair, gate.qubits):
                    if name != "i":
                        state.apply_gate(Gate(name, (qubit,)))
            else:
                name = _PAULI_NAMES_1Q[rng.integers(3)]
                state.apply_gate(Gate(name, gate.qubits))
        if not injected:
            return None
        return state.probabilities()

    def _apply_heterogeneous_readout(
        self, distribution: np.ndarray, wire_map: Dict[int, int]
    ) -> np.ndarray:
        num_qubits = int(np.log2(distribution.size))
        tensor = distribution.reshape((2,) * num_qubits).astype(float)
        for axis in range(num_qubits):
            flip = self.calibration.readout[wire_map[axis]]
            confusion = np.array([[1 - flip, flip], [flip, 1 - flip]])
            tensor = np.moveaxis(
                np.tensordot(confusion, tensor, axes=([1], [axis])), 0, axis
            )
        return tensor.reshape(-1)
