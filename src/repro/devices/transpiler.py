"""Transpiler-lite: native-gate decomposition, layout, and SWAP routing.

The noise-adaptive-compilation substrate (paper refs [32, 48]): circuits
are lowered to the superconducting native set {RZ, SX, X, CX}, an initial
layout places logical qubits on a well-connected device subgraph, and a
greedy shortest-path router inserts SWAPs (3 CX each) for non-adjacent
interactions.  Deeper routed circuits accumulate more simulated noise,
which is exactly the mechanism behind the paper's Fig. 1 / Fig. 11
fidelity trends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx

from ..circuits import Gate, QuantumCircuit
from .device import VirtualDevice

__all__ = ["TranspiledCircuit", "transpile", "decompose_to_native", "select_layout",
           "compact_circuit"]

NATIVE_1Q = ("rz", "sx", "x", "i")
NATIVE_2Q = ("cx",)


@dataclass
class TranspiledCircuit:
    """A routed circuit plus the logical->physical qubit maps."""

    circuit: QuantumCircuit
    initial_layout: List[int]
    final_layout: List[int]  # final_layout[logical] = physical qubit


# ----------------------------------------------------------------------
# 1) native-gate decomposition
# ----------------------------------------------------------------------

def _native_1q(gate: Gate) -> List[Gate]:
    """Lower a single-qubit gate to {RZ, SX, X} (global phase dropped)."""
    (q,) = gate.qubits
    name = gate.name
    if name in NATIVE_1Q:
        return [gate]
    pi = math.pi
    if name == "h":
        return [Gate("rz", (q,), (pi / 2,)), Gate("sx", (q,)), Gate("rz", (q,), (pi / 2,))]
    if name == "z":
        return [Gate("rz", (q,), (pi,))]
    if name == "s":
        return [Gate("rz", (q,), (pi / 2,))]
    if name == "sdg":
        return [Gate("rz", (q,), (-pi / 2,))]
    if name == "t":
        return [Gate("rz", (q,), (pi / 4,))]
    if name == "tdg":
        return [Gate("rz", (q,), (-pi / 4,))]
    if name == "p":
        return [Gate("rz", (q,), gate.params)]
    if name == "y":
        return [Gate("rz", (q,), (pi,)), Gate("x", (q,))]
    if name == "sy":
        # Apply RZ(-pi/2), then SX, then RZ(pi/2) (= sqrt(Y) up to phase).
        return [Gate("rz", (q,), (-pi / 2,)), Gate("sx", (q,)), Gate("rz", (q,), (pi / 2,))]
    if name == "rx":
        (theta,) = gate.params
        return [
            Gate("rz", (q,), (pi / 2,)),
            Gate("sx", (q,)),
            Gate("rz", (q,), (theta + pi,)),
            Gate("sx", (q,)),
            Gate("rz", (q,), (5 * pi / 2,)),
        ]
    if name == "ry":
        (theta,) = gate.params
        return [
            Gate("sx", (q,)),
            Gate("rz", (q,), (theta + pi,)),
            Gate("sx", (q,)),
            Gate("rz", (q,), (3 * pi,)),
        ]
    if name == "u":
        theta, phi, lam = gate.params
        return [
            Gate("rz", (q,), (lam,)),
            Gate("sx", (q,)),
            Gate("rz", (q,), (theta + pi,)),
            Gate("sx", (q,)),
            Gate("rz", (q,), (phi + 3 * pi,)),
        ]
    raise ValueError(f"cannot lower single-qubit gate {name!r}")


def _native_2q(gate: Gate) -> List[Gate]:
    """Lower a two-qubit gate to CX plus native 1q gates."""
    a, b = gate.qubits
    name = gate.name
    if name == "cx":
        return [gate]
    out: List[Gate] = []
    if name == "cz":
        out += _native_1q(Gate("h", (b,)))
        out.append(Gate("cx", (a, b)))
        out += _native_1q(Gate("h", (b,)))
        return out
    if name == "cp":
        (lam,) = gate.params
        out.append(Gate("rz", (a,), (lam / 2,)))
        out.append(Gate("cx", (a, b)))
        out.append(Gate("rz", (b,), (-lam / 2,)))
        out.append(Gate("cx", (a, b)))
        out.append(Gate("rz", (b,), (lam / 2,)))
        return out
    if name == "rzz":
        (theta,) = gate.params
        return [
            Gate("cx", (a, b)),
            Gate("rz", (b,), (theta,)),
            Gate("cx", (a, b)),
        ]
    if name == "swap":
        return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]
    raise ValueError(f"cannot lower two-qubit gate {name!r}")


def decompose_to_native(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every gate into the native set {RZ, SX, X, CX}."""
    out = QuantumCircuit(circuit.num_qubits)
    for gate in circuit:
        lowered = _native_2q(gate) if gate.is_multiqubit else _native_1q(gate)
        out.extend(lowered)
    return out


# ----------------------------------------------------------------------
# 2) layout selection
# ----------------------------------------------------------------------

def select_layout(device: VirtualDevice, num_logical: int) -> List[int]:
    """Pick a connected, well-coupled subgraph of physical qubits.

    A BFS from the highest-degree qubit — the noise-adaptive-compilation
    stand-in: with per-device uniform error rates, "best" qubits are the
    best-connected ones (fewest routing SWAPs).
    """
    if num_logical > device.num_qubits:
        raise ValueError(
            f"{num_logical} logical qubits exceed device size {device.num_qubits}"
        )
    graph = device.coupling_graph()
    if device.num_qubits == 1:
        return [0]
    start = max(graph.nodes, key=lambda n: graph.degree(n))
    order = [start]
    seen = {start}
    frontier = [start]
    while frontier and len(order) < num_logical:
        # Expand the neighbor with the most already-selected neighbors.
        candidates = sorted(
            {n for f in frontier for n in graph.neighbors(f)} - seen,
            key=lambda n: (-sum(1 for m in graph.neighbors(n) if m in seen), n),
        )
        if not candidates:
            break
        chosen = candidates[0]
        order.append(chosen)
        seen.add(chosen)
        frontier.append(chosen)
    if len(order) < num_logical:  # pragma: no cover - connected devices
        order.extend(n for n in graph.nodes if n not in seen)
        order = order[:num_logical]
    return order[:num_logical]


# ----------------------------------------------------------------------
# 3) routing
# ----------------------------------------------------------------------

def transpile(
    circuit: QuantumCircuit,
    device: VirtualDevice,
    initial_layout: Optional[Sequence[int]] = None,
    native: bool = True,
) -> TranspiledCircuit:
    """Lower, place, and route ``circuit`` onto ``device``."""
    lowered = decompose_to_native(circuit) if native else circuit.copy()
    layout = (
        select_layout(device, circuit.num_qubits)
        if initial_layout is None
        else list(initial_layout)
    )
    if len(layout) != circuit.num_qubits:
        raise ValueError(
            f"layout of {len(layout)} qubits for a {circuit.num_qubits}-qubit circuit"
        )
    graph = device.coupling_graph()
    distances = dict(nx.all_pairs_shortest_path_length(graph))

    logical_to_physical: Dict[int, int] = dict(enumerate(layout))
    physical_to_logical: Dict[int, int] = {p: l for l, p in logical_to_physical.items()}
    routed = QuantumCircuit(device.num_qubits)

    def swap_physical(p1: int, p2: int) -> None:
        for cx_gate in _native_2q(Gate("swap", (p1, p2))):
            routed.append(cx_gate)
        l1 = physical_to_logical.get(p1)
        l2 = physical_to_logical.get(p2)
        if l1 is not None:
            logical_to_physical[l1] = p2
        if l2 is not None:
            logical_to_physical[l2] = p1
        physical_to_logical.pop(p1, None)
        physical_to_logical.pop(p2, None)
        if l1 is not None:
            physical_to_logical[p2] = l1
        if l2 is not None:
            physical_to_logical[p1] = l2

    for gate in lowered:
        if not gate.is_multiqubit:
            physical = logical_to_physical[gate.qubits[0]]
            routed.append(gate.on(physical))
            continue
        a, b = gate.qubits
        pa, pb = logical_to_physical[a], logical_to_physical[b]
        if not device.are_coupled(pa, pb):
            path = nx.shortest_path(graph, pa, pb)
            # Walk qubit ``a`` toward ``b``, stopping one hop short.
            for hop in path[1:-1]:
                swap_physical(logical_to_physical[a], hop)
            pa, pb = logical_to_physical[a], logical_to_physical[b]
        routed.append(gate.on(pa, pb))

    final_layout = [logical_to_physical[q] for q in range(circuit.num_qubits)]
    return TranspiledCircuit(
        circuit=routed, initial_layout=layout, final_layout=final_layout
    )


def compact_circuit(
    circuit: QuantumCircuit, keep: Optional[Sequence[int]] = None
) -> "tuple[QuantumCircuit, List[int]]":
    """Drop idle wires; returns the compact circuit and the kept wires.

    Useful for simulating routed circuits on large virtual devices: only
    the wires actually touched by gates need simulating.  ``keep`` lists
    wires that must survive even when idle (e.g. measured qubits).
    """
    active = sorted(set(circuit.active_qubits()) | set(keep or ()))
    if not active:
        return QuantumCircuit(1), [0]
    remap = {wire: index for index, wire in enumerate(active)}
    out = QuantumCircuit(len(active))
    for gate in circuit:
        out.append(gate.on(*(remap[q] for q in gate.qubits)))
    return out, active
