"""Device pools: run subcircuit variants across many small QPUs.

The paper (§5.1) notes "CutQC allows executing the subcircuits on many
small quantum computers in parallel to further reduce the time spent on
quantum computers".  :class:`DevicePool` implements that execution model:
variant circuits are dispatched round-robin (or greedily by queue depth)
over a set of virtual devices, and a simple timing model — shots x
circuit depth x gate time, plus per-job queue latency — estimates the
quantum wall-clock the paper treats as negligible.

The pool is also the natural place to model *device heterogeneity*: each
member device has its own size, topology and noise, and the pool refuses
to place a variant on a device it does not fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..circuits import QuantumCircuit
from .device import VirtualDevice

__all__ = ["DeviceJob", "PoolSchedule", "DevicePool"]

#: Superconducting gate time scale used by the wall-clock model (§5.1:
#: "gate times ... are on the order of nanoseconds").
_GATE_SECONDS = 500e-9
#: Per-job overhead (load + readout reset), a few milliseconds on clouds.
_JOB_OVERHEAD_SECONDS = 2e-3


@dataclass
class DeviceJob:
    """One variant execution assigned to one pool device."""

    device_index: int
    circuit: QuantumCircuit
    shots: int
    estimated_seconds: float


@dataclass
class PoolSchedule:
    """The placement of a batch of variant circuits onto the pool."""

    jobs: List[DeviceJob] = field(default_factory=list)
    per_device_seconds: List[float] = field(default_factory=list)

    @property
    def makespan_seconds(self) -> float:
        """Parallel quantum wall-clock: the busiest device's total."""
        return max(self.per_device_seconds, default=0.0)

    @property
    def serial_seconds(self) -> float:
        """What one device alone would have spent."""
        return float(sum(self.per_device_seconds))


class DevicePool:
    """A set of small devices evaluated against in parallel."""

    def __init__(self, devices: Sequence[VirtualDevice]):
        if not devices:
            raise ValueError("a device pool needs at least one device")
        self.devices = list(devices)

    @property
    def max_qubits(self) -> int:
        return max(device.num_qubits for device in self.devices)

    # ------------------------------------------------------------------
    def estimate_job_seconds(self, circuit: QuantumCircuit, shots: int) -> float:
        """Shot-serial execution-time model for one variant."""
        return _JOB_OVERHEAD_SECONDS + shots * circuit.depth() * _GATE_SECONDS

    def schedule(
        self, circuits: Sequence[QuantumCircuit], shots: int
    ) -> PoolSchedule:
        """Place each circuit on the least-loaded fitting device, in LPT
        (longest-processing-time-first) order.

        Placing the longest jobs first before the greedy least-loaded
        assignment is the classic makespan heuristic (4/3-approximate vs
        the 2-approximate arbitrary-order greedy): short jobs fill in the
        load gaps the long ones leave behind.  ``jobs`` is returned in the
        *input* circuit order regardless of placement order.
        """
        circuits = list(circuits)
        loads = [0.0] * len(self.devices)
        schedule = PoolSchedule(per_device_seconds=loads)
        seconds = [
            self.estimate_job_seconds(circuit, shots) for circuit in circuits
        ]
        # LPT: sort stably by descending runtime, place greedily.
        placement_order = sorted(
            range(len(circuits)), key=lambda index: -seconds[index]
        )
        jobs: List[Optional[DeviceJob]] = [None] * len(circuits)
        for index in placement_order:
            circuit = circuits[index]
            candidates = [
                device_index
                for device_index, device in enumerate(self.devices)
                if device.num_qubits >= circuit.num_qubits
            ]
            if not candidates:
                raise ValueError(
                    f"no pool device fits a {circuit.num_qubits}-qubit variant"
                )
            chosen = min(candidates, key=lambda device_index: loads[device_index])
            loads[chosen] += seconds[index]
            jobs[index] = DeviceJob(
                device_index=chosen,
                circuit=circuit,
                shots=shots,
                estimated_seconds=seconds[index],
            )
        schedule.jobs.extend(jobs)
        return schedule

    # ------------------------------------------------------------------
    def backend(
        self,
        shots: Optional[int] = None,
        trajectories: int = 24,
        seed: Optional[int] = None,
    ) -> Callable[[QuantumCircuit], np.ndarray]:
        """A CutQC evaluation backend that load-balances over the pool.

        Each call places the variant on the currently least-loaded fitting
        device (tracking the same timing model as :meth:`schedule`) and
        executes it there, so heterogeneous pools behave like the paper's
        many-small-QPUs deployment.  The accumulated schedule is available
        as the callable's ``schedule`` attribute.
        """
        rng = np.random.default_rng(seed)
        loads = [0.0] * len(self.devices)
        schedule = PoolSchedule(per_device_seconds=loads)

        def run(circuit: QuantumCircuit) -> np.ndarray:
            candidates = [
                index
                for index, device in enumerate(self.devices)
                if device.num_qubits >= circuit.num_qubits
            ]
            if not candidates:
                raise ValueError(
                    f"no pool device fits a {circuit.num_qubits}-qubit variant"
                )
            chosen = min(candidates, key=lambda index: loads[index])
            device = self.devices[chosen]
            effective_shots = shots if shots is not None else device.shots
            seconds = self.estimate_job_seconds(circuit, effective_shots or 0)
            loads[chosen] += seconds
            schedule.jobs.append(
                DeviceJob(
                    device_index=chosen,
                    circuit=circuit,
                    shots=effective_shots or 0,
                    estimated_seconds=seconds,
                )
            )
            return device.run(
                circuit,
                shots=effective_shots,
                trajectories=trajectories,
                seed=int(rng.integers(2**31 - 1)),
            )

        run.schedule = schedule  # type: ignore[attr-defined]
        return run
