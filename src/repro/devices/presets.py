"""Virtual counterparts of the IBM devices the paper runs on.

Topologies are simplified (lines and grids) and error rates are chosen so
that larger devices are noisier — the empirical trend behind the paper's
Fig. 1.  Absolute rates are representative of early-2020s superconducting
hardware, not calibrated to any specific backend.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.noise import NoiseModel
from .device import VirtualDevice

__all__ = [
    "line_coupling",
    "ring_coupling",
    "grid_coupling",
    "make_device",
    "bogota",
    "vigo",
    "melbourne",
    "johannesburg",
    "rochester",
    "fig1_device_suite",
    "DEVICE_PRESETS",
    "get_device",
]


def line_coupling(num_qubits: int) -> Tuple[Tuple[int, int], ...]:
    return tuple((i, i + 1) for i in range(num_qubits - 1))


def ring_coupling(num_qubits: int) -> Tuple[Tuple[int, int], ...]:
    pairs = list(line_coupling(num_qubits))
    if num_qubits > 2:
        pairs.append((0, num_qubits - 1))
    return tuple(pairs)


def grid_coupling(rows: int, cols: int) -> Tuple[Tuple[int, int], ...]:
    pairs = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                pairs.append((q, q + 1))
            if r + 1 < rows:
                pairs.append((q, q + cols))
    return tuple(pairs)


def _size_scaled_noise(num_qubits: int) -> NoiseModel:
    """Error rates growing with device size (the Fig. 1 empirical trend)."""
    scale = 1.0 + 0.06 * max(0, num_qubits - 5)
    return NoiseModel(
        error_1q=min(0.05, 0.0004 * scale),
        error_2q=min(0.30, 0.008 * scale),
        readout=min(0.30, 0.015 * scale),
    )


def make_device(
    name: str,
    num_qubits: int,
    topology: str = "line",
    rows: Optional[int] = None,
    cols: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
    shots: int = 8192,
    seed: Optional[int] = None,
) -> VirtualDevice:
    """Build a virtual device with a standard topology and scaled noise."""
    if topology == "line":
        coupling = line_coupling(num_qubits)
    elif topology == "ring":
        coupling = ring_coupling(num_qubits)
    elif topology == "grid":
        if rows is None or cols is None or rows * cols != num_qubits:
            raise ValueError("grid topology needs rows*cols == num_qubits")
        coupling = grid_coupling(rows, cols)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    return VirtualDevice(
        name=name,
        num_qubits=num_qubits,
        coupling_map=coupling,
        noise=noise or _size_scaled_noise(num_qubits),
        shots=shots,
        seed=seed,
    )


def bogota(seed: Optional[int] = None) -> VirtualDevice:
    """5-qubit line — the paper's CutQC execution device (Fig. 11)."""
    return make_device("virtual-bogota", 5, "line", seed=seed)


def vigo(seed: Optional[int] = None) -> VirtualDevice:
    """Another 5-qubit device (artifact appendix)."""
    return make_device("virtual-vigo", 5, "line", seed=seed)


def melbourne(seed: Optional[int] = None) -> VirtualDevice:
    """15-qubit device used by the paper's Fig. 12 experiment."""
    return make_device("virtual-melbourne", 15, "grid", rows=3, cols=5, seed=seed)


def johannesburg(seed: Optional[int] = None) -> VirtualDevice:
    """20-qubit device — the paper's direct-execution baseline (Fig. 11)."""
    return make_device("virtual-johannesburg", 20, "grid", rows=4, cols=5, seed=seed)


def rochester(seed: Optional[int] = None) -> VirtualDevice:
    """Stand-in for the 53-qubit Rochester (Fig. 1's largest point).

    Approximated as a 54-qubit 6x9 grid; only useful for layout/routing
    studies — noisy simulation at this size is beyond laptop scale.
    """
    return make_device("virtual-rochester", 54, "grid", rows=6, cols=9, seed=seed)


DEVICE_PRESETS = {
    "bogota": bogota,
    "vigo": vigo,
    "melbourne": melbourne,
    "johannesburg": johannesburg,
    "rochester": rochester,
}


def get_device(name: str, seed: Optional[int] = None) -> VirtualDevice:
    try:
        factory = DEVICE_PRESETS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; presets: {sorted(DEVICE_PRESETS)}"
        ) from None
    return factory(seed=seed)


def fig1_device_suite(seed: Optional[int] = None) -> List[VirtualDevice]:
    """Increasing-size device ladder for the Fig. 1 reproduction.

    Capped at 20 qubits so the noisy trajectory simulation stays laptop
    scale (the paper's 53-qubit point needs a 26-qubit noisy simulation;
    see DESIGN.md).
    """
    return [
        make_device("virtual-5q", 5, "line", seed=seed),
        make_device("virtual-10q", 10, "grid", rows=2, cols=5, seed=seed),
        make_device("virtual-15q", 15, "grid", rows=3, cols=5, seed=seed),
        make_device("virtual-20q", 20, "grid", rows=4, cols=5, seed=seed),
    ]
