"""Virtual NISQ devices, presets and the transpiler substrate."""

from .device import VirtualDevice
from .pool import DeviceJob, DevicePool, PoolSchedule
from .calibration import CalibratedDevice, Calibration, noise_adaptive_layout
from .mitigation import MitigatedBackend, calibrate_confusion_matrix, mitigate_distribution
from .presets import (
    DEVICE_PRESETS,
    bogota,
    fig1_device_suite,
    get_device,
    grid_coupling,
    johannesburg,
    line_coupling,
    make_device,
    melbourne,
    ring_coupling,
    rochester,
    vigo,
)
from .transpiler import (
    TranspiledCircuit,
    compact_circuit,
    decompose_to_native,
    select_layout,
    transpile,
)

__all__ = [
    "VirtualDevice",
    "DeviceJob",
    "DevicePool",
    "PoolSchedule",
    "CalibratedDevice",
    "Calibration",
    "noise_adaptive_layout",
    "MitigatedBackend",
    "calibrate_confusion_matrix",
    "mitigate_distribution",
    "DEVICE_PRESETS",
    "bogota",
    "fig1_device_suite",
    "get_device",
    "grid_coupling",
    "johannesburg",
    "line_coupling",
    "make_device",
    "melbourne",
    "ring_coupling",
    "rochester",
    "vigo",
    "TranspiledCircuit",
    "compact_circuit",
    "decompose_to_native",
    "select_layout",
    "transpile",
]
