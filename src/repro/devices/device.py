"""Virtual NISQ device: qubit count, coupling map, noise, shot execution.

The stand-in for IBM hardware (DESIGN.md substitutions).  ``run`` performs
the full hardware pipeline the paper describes in §2: transpile to the
device's connectivity and native gates, execute shots under the device
noise model, and return the empirical distribution over the circuit's
logical qubits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import networkx as nx
import numpy as np

from ..circuits import QuantumCircuit
from ..sim.noise import NoiseModel, NoisySimulator
from ..utils import marginalize

__all__ = ["VirtualDevice"]


@dataclass
class VirtualDevice:
    """A small virtual quantum computer."""

    name: str
    num_qubits: int
    coupling_map: Tuple[Tuple[int, int], ...]
    noise: NoiseModel = field(default_factory=NoiseModel)
    shots: int = 8192
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        pairs = []
        for a, b in self.coupling_map:
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits) or a == b:
                raise ValueError(f"invalid coupling pair ({a}, {b})")
            pairs.append((min(a, b), max(a, b)))
        object.__setattr__(self, "coupling_map", tuple(sorted(set(pairs))))
        graph = self.coupling_graph()
        if self.num_qubits > 1 and not nx.is_connected(graph):
            raise ValueError(f"device {self.name!r} coupling map is disconnected")

    # ------------------------------------------------------------------
    def coupling_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self.coupling_map)
        return graph

    def are_coupled(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self.coupling_map

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        trajectories: int = 24,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Transpile + noisy shots; distribution over the logical qubits.

        ``shots=None`` uses the device default; ``shots=0`` disables shot
        noise and returns the estimated noisy distribution itself.
        """
        from .transpiler import compact_circuit, transpile

        if circuit.num_qubits > self.num_qubits:
            raise ValueError(
                f"circuit of {circuit.num_qubits} qubits does not fit device "
                f"{self.name!r} ({self.num_qubits} qubits)"
            )
        transpiled = transpile(circuit, self)
        # Simulate only the physical wires the routed circuit touches —
        # idle device qubits stay in |0> and are never read out.  Wires
        # holding (possibly gate-free) logical qubits must survive.
        compacted, kept_wires = compact_circuit(
            transpiled.circuit, keep=transpiled.final_layout
        )
        simulator = NoisySimulator(
            self.noise,
            trajectories=trajectories,
            shots=shots if shots is not None else self.shots,
            seed=seed if seed is not None else self.seed,
        )
        full = simulator.run(compacted)
        # Read out only the physical qubits holding logical wires, in
        # logical order (what hardware measurement mapping does).
        keep = [
            kept_wires.index(transpiled.final_layout[q])
            for q in range(circuit.num_qubits)
        ]
        return marginalize(full, keep, compacted.num_qubits)

    def backend(
        self,
        shots: Optional[int] = None,
        trajectories: int = 24,
        seed: Optional[int] = None,
    ) -> Callable[[QuantumCircuit], np.ndarray]:
        """A ``circuit -> distribution`` callable for the CutQC pipeline."""
        rng = np.random.default_rng(seed if seed is not None else self.seed)

        def run(circuit: QuantumCircuit) -> np.ndarray:
            return self.run(
                circuit,
                shots=shots,
                trajectories=trajectories,
                seed=int(rng.integers(2**31 - 1)),
            )

        return run

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_qubits} qubits, "
            f"{len(self.coupling_map)} couplings, "
            f"e1={self.noise.error_1q:.4f}, e2={self.noise.error_2q:.4f}, "
            f"readout={self.noise.readout:.4f}"
        )
