"""Heuristic cut searchers for circuits too large for branch and bound.

Two stages, both priced with the exact objective of Eq. (14) via
:func:`~repro.cutting.model.evaluate_partition`:

* **scan partitioning** — vertices (multiqubit gates) are already in
  topological/time order, so contiguous blocks of that order are natural
  timewise cuts.  A greedy pass opens a new block whenever the device
  capacity would be exceeded, for every candidate block count.
* **local search** — hill climbing over single-vertex reassignment moves,
  keeping the best feasible partition found.

For the paper's benchmark families (linear or grid-structured circuits)
the scan seed is already near optimal; local search recovers most of the
remaining gap.  Optimality versus branch and bound is measured on small
instances in the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..circuits import CircuitGraph
from .model import CutSearchError, PartitionCost, evaluate_partition

__all__ = ["scan_partition", "local_search", "heuristic_search"]


def _balanced_blocks(num_vertices: int, num_blocks: int) -> List[int]:
    """Assignment splitting vertex order into equal contiguous blocks."""
    bounds = np.linspace(0, num_vertices, num_blocks + 1).astype(int)
    assignment = [0] * num_vertices
    for block in range(num_blocks):
        for vertex in range(bounds[block], bounds[block + 1]):
            assignment[vertex] = block
    return assignment


def scan_partition(
    graph: CircuitGraph,
    max_subcircuit_qubits: int,
    max_subcircuits: int = 5,
    max_cuts: int = 10,
) -> Tuple[Optional[List[int]], PartitionCost]:
    """Best contiguous-block partition over candidate block counts."""
    best_assignment: Optional[List[int]] = None
    best_cost: Optional[PartitionCost] = None
    for num_blocks in range(2, max_subcircuits + 1):
        for assignment in _scan_candidates(graph, num_blocks, max_subcircuit_qubits):
            cost = evaluate_partition(
                graph,
                assignment,
                max_subcircuit_qubits,
                max_cuts=max_cuts,
                max_subcircuits=max_subcircuits,
            )
            if cost.feasible and (
                best_cost is None or cost.objective < best_cost.objective
            ):
                best_assignment, best_cost = assignment, cost
    if best_cost is None:
        best_cost = PartitionCost(
            num_clusters=0,
            num_cuts=0,
            alpha=[],
            rho=[],
            O=[],
            feasible=False,
            violation="no feasible scan partition",
            objective=float("inf"),
        )
    return best_assignment, best_cost


def _scan_candidates(
    graph: CircuitGraph, num_blocks: int, max_qubits: int
) -> List[List[int]]:
    """Candidate contiguous partitions: balanced plus greedy capacity fill."""
    candidates = [_balanced_blocks(graph.num_vertices, num_blocks)]
    greedy = _greedy_fill(graph, num_blocks, max_qubits)
    if greedy is not None:
        candidates.append(greedy)
    return candidates


def kl_partition(
    graph: CircuitGraph,
    max_subcircuit_qubits: int,
    max_subcircuits: int = 5,
    max_cuts: int = 10,
) -> Tuple[Optional[List[int]], PartitionCost]:
    """Kernighan–Lin recursive bisection seed (min-edge-cut partitions).

    Timewise scans miss the *spacetime* cuts that grid-structured circuits
    (supremacy) need; KL bisection of the undirected multiqubit-gate graph
    minimizes crossing edges directly.  Oversized parts are bisected again
    until everything fits or the subcircuit budget runs out.
    """
    import networkx as nx

    undirected = nx.Graph()
    undirected.add_nodes_from(range(graph.num_vertices))
    for edge in graph.edges:
        if undirected.has_edge(edge.source, edge.target):
            undirected[edge.source][edge.target]["weight"] += 1
        else:
            undirected.add_edge(edge.source, edge.target, weight=1)

    best_assignment: Optional[List[int]] = None
    best_cost: Optional[PartitionCost] = None
    for kl_seed in range(4):
        parts: List[set] = [set(range(graph.num_vertices))]
        while len(parts) < max_subcircuits:
            # Bisect the part whose qubit demand is largest.
            parts.sort(key=lambda p: -_part_alpha(graph, p))
            target = parts[0]
            if len(target) < 2:
                break
            sub = undirected.subgraph(target)
            try:
                half_a, half_b = nx.algorithms.community.kernighan_lin_bisection(
                    sub, weight="weight", seed=kl_seed
                )
            except Exception:  # pragma: no cover - KL rarely fails
                break
            if not half_a or not half_b:
                break
            parts = parts[1:] + [set(half_a), set(half_b)]
            if len(parts) < 2:
                continue
            assignment = [0] * graph.num_vertices
            for label, members in enumerate(parts):
                for vertex in members:
                    assignment[vertex] = label
            cost = evaluate_partition(
                graph,
                assignment,
                max_subcircuit_qubits,
                max_cuts=max_cuts,
                max_subcircuits=max_subcircuits,
            )
            if cost.feasible and (
                best_cost is None or cost.objective < best_cost.objective
            ):
                best_assignment, best_cost = assignment, cost
    if best_cost is None:
        best_cost = PartitionCost(
            num_clusters=0,
            num_cuts=0,
            alpha=[],
            rho=[],
            O=[],
            feasible=False,
            violation="no feasible KL partition",
            objective=float("inf"),
        )
    return best_assignment, best_cost


def _part_alpha(graph: CircuitGraph, part: set) -> int:
    return sum(graph.vertex_weights[v] for v in part)


def _greedy_fill(
    graph: CircuitGraph, num_blocks: int, max_qubits: int
) -> Optional[List[int]]:
    """Grow each block until adding the next vertex would exceed capacity.

    Capacity is approximated during the pass with alpha plus incoming cut
    edges so far; the exact feasibility check happens in the caller.
    """
    assignment = [0] * graph.num_vertices
    block = 0
    alpha = 0
    rho = 0
    incoming = {v: [] for v in range(graph.num_vertices)}
    for edge in graph.edges:
        incoming[edge.target].append(edge.source)
    for vertex in range(graph.num_vertices):
        weight = graph.vertex_weights[vertex]
        new_rho = sum(
            1 for source in incoming[vertex] if assignment[source] != block
        )
        if alpha + weight + rho + new_rho > max_qubits and alpha > 0:
            block += 1
            if block >= num_blocks:
                return None
            alpha = 0
            rho = sum(
                1 for source in incoming[vertex] if assignment[source] != block
            )
        else:
            rho += new_rho
        assignment[vertex] = block
        alpha += weight
    if block != num_blocks - 1:
        return None  # did not use the requested number of blocks
    return assignment


def local_search(
    graph: CircuitGraph,
    assignment: List[int],
    max_subcircuit_qubits: int,
    max_subcircuits: int = 5,
    max_cuts: int = 10,
    max_rounds: int = 20,
) -> Tuple[List[int], PartitionCost]:
    """Hill-climb single-vertex moves from a feasible seed partition.

    Only *boundary* vertices (endpoints of cut edges) are candidates for
    reassignment — moving an interior vertex can only add cuts — which
    keeps each round near-linear in the number of cut edges.
    """
    current = list(assignment)
    current_cost = evaluate_partition(
        graph,
        current,
        max_subcircuit_qubits,
        max_cuts=max_cuts,
        max_subcircuits=max_subcircuits,
    )
    if not current_cost.feasible:
        raise ValueError(f"seed partition infeasible: {current_cost.violation}")
    for _ in range(max_rounds):
        improved = False
        num_clusters = current_cost.num_clusters
        boundary = _boundary_vertices(graph, current)
        for vertex in boundary:
            original = current[vertex]
            for cluster in range(num_clusters):
                if cluster == original:
                    continue
                current[vertex] = cluster
                candidate = _evaluate_normalized(
                    graph,
                    current,
                    max_subcircuit_qubits,
                    max_cuts,
                    max_subcircuits,
                )
                if (
                    candidate is not None
                    and candidate[1].objective < current_cost.objective
                ):
                    current = candidate[0]
                    current_cost = candidate[1]
                    improved = True
                    break
                current[vertex] = original
            if improved:
                break
        if not improved:
            break
    return current, current_cost


def _boundary_vertices(graph: CircuitGraph, assignment: List[int]) -> List[int]:
    boundary = set()
    for edge in graph.edges:
        if assignment[edge.source] != assignment[edge.target]:
            boundary.add(edge.source)
            boundary.add(edge.target)
    return sorted(boundary)


def _evaluate_normalized(
    graph: CircuitGraph,
    assignment: List[int],
    max_qubits: int,
    max_cuts: int,
    max_subcircuits: int,
) -> Optional[Tuple[List[int], PartitionCost]]:
    """Compact cluster labels (a move may empty a cluster) and price."""
    labels = sorted(set(assignment))
    if len(labels) < 2:
        return None
    remap = {label: index for index, label in enumerate(labels)}
    normalized = [remap[c] for c in assignment]
    cost = evaluate_partition(
        graph,
        normalized,
        max_qubits,
        max_cuts=max_cuts,
        max_subcircuits=max_subcircuits,
    )
    if not cost.feasible:
        return None
    return normalized, cost


def heuristic_search(
    graph: CircuitGraph,
    max_subcircuit_qubits: int,
    max_subcircuits: int = 5,
    max_cuts: int = 10,
    refine: bool = True,
) -> Tuple[List[int], PartitionCost]:
    """Best of the scan and KL seeds, plus local-search refinement."""
    seeds = []
    for searcher in (scan_partition, kl_partition):
        assignment, cost = searcher(
            graph,
            max_subcircuit_qubits,
            max_subcircuits=max_subcircuits,
            max_cuts=max_cuts,
        )
        if assignment is not None:
            seeds.append((assignment, cost))
    if not seeds:
        raise CutSearchError(
            f"no feasible heuristic cut into <= {max_subcircuits} subcircuits "
            f"of <= {max_subcircuit_qubits} qubits within {max_cuts} cuts"
        )
    if refine:
        refined = []
        for assignment, cost in seeds:
            refined.append(
                local_search(
                    graph,
                    assignment,
                    max_subcircuit_qubits,
                    max_subcircuits=max_subcircuits,
                    max_cuts=max_cuts,
                )
            )
        seeds = refined
    return min(seeds, key=lambda item: item[1].objective)
