"""Circuit cutting: cut search, cutting, and subcircuit variant generation."""

from .cutter import (
    CutCircuit,
    Subcircuit,
    SubcircuitLine,
    WireCut,
    cut_circuit,
    cut_circuit_from_assignment,
)
from .model import CutSearchError, PartitionCost, evaluate_partition, objective_from_f
from .mip import MIPCutSearcher, branch_and_bound_search
from .heuristics import heuristic_search, local_search, scan_partition
from .searcher import (
    DEFAULT_MAX_CUTS,
    DEFAULT_MAX_SUBCIRCUITS,
    CutSolution,
    find_cuts,
)
from .variants import (
    INIT_LABELS,
    MEAS_BASES,
    SubcircuitResult,
    SubcircuitVariant,
    VariantCircuitFactory,
    batched_variant_probabilities,
    circuit_fingerprint,
    evaluate_subcircuit,
    generate_variants,
    num_physical_variants,
    variant_circuit,
)

__all__ = [
    "CutCircuit",
    "Subcircuit",
    "SubcircuitLine",
    "WireCut",
    "cut_circuit",
    "cut_circuit_from_assignment",
    "CutSearchError",
    "PartitionCost",
    "evaluate_partition",
    "objective_from_f",
    "MIPCutSearcher",
    "branch_and_bound_search",
    "heuristic_search",
    "local_search",
    "scan_partition",
    "DEFAULT_MAX_CUTS",
    "DEFAULT_MAX_SUBCIRCUITS",
    "CutSolution",
    "find_cuts",
    "INIT_LABELS",
    "MEAS_BASES",
    "SubcircuitResult",
    "SubcircuitVariant",
    "VariantCircuitFactory",
    "batched_variant_probabilities",
    "circuit_fingerprint",
    "evaluate_subcircuit",
    "generate_variants",
    "num_physical_variants",
    "variant_circuit",
]
