"""Exact cut search: the paper's MIP (Eqs. 4-15) via branch and bound.

The paper hands this model to Gurobi; offline we solve it with a custom
depth-first branch and bound over cluster assignments.  The search keeps
the paper's symmetry-breaking rule (Eq. 12) — vertex ``v`` may only join
clusters ``0..min(v, nC-1)``, i.e. a new cluster is opened only by the
lowest-index vertex that uses it — and prunes on:

* **capacity** — a cluster's ``alpha + rho`` lower bound already exceeds
  the device size ``D`` (rho never decreases as more vertices commit);
* **cut budget** — committed cut edges already exceed ``max_cuts``;
* **objective bound** — ``4^K`` with the committed ``K`` already matches
  or exceeds the incumbent (the remaining factor of Eq. 14 is >= 1).

Exact optimality is cross-checked against brute-force enumeration in the
test suite for small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits import CircuitGraph
from .model import CutSearchError, PartitionCost, evaluate_partition

__all__ = ["MIPCutSearcher", "branch_and_bound_search"]


@dataclass
class _SearchState:
    assignment: List[int]
    alpha: List[int]
    rho: List[int]
    outgoing: List[int]
    members: List[int]  # vertices currently assigned per cluster
    num_cuts: int
    clusters_open: int


class MIPCutSearcher:
    """Branch-and-bound solver for the cut-search MIP."""

    def __init__(
        self,
        graph: CircuitGraph,
        max_subcircuit_qubits: int,
        max_subcircuits: int = 5,
        max_cuts: int = 10,
        node_limit: int = 5_000_000,
    ):
        if max_subcircuit_qubits < 2:
            raise ValueError("max_subcircuit_qubits must be at least 2")
        if max_subcircuits < 2:
            raise ValueError("max_subcircuits must be at least 2")
        self.graph = graph
        self.max_qubits = int(max_subcircuit_qubits)
        self.max_subcircuits = int(max_subcircuits)
        self.max_cuts = int(max_cuts)
        self.node_limit = int(node_limit)
        # Edges indexed by endpoint for incremental cut bookkeeping.
        self._edges_of: Dict[int, List[Tuple[int, int]]] = {
            v: [] for v in range(graph.num_vertices)
        }
        for edge in graph.edges:
            self._edges_of[edge.target].append((edge.source, edge.target))
            # Only record each edge at its later-assigned endpoint; with
            # vertices assigned in index order and edges always pointing
            # forward in time, the target is assigned after the source.
        self._nodes_visited = 0
        # Sum of f_c over clusters is always the circuit qubit count n
        # (Eq. 7 telescopes: rho and O cancel across a cut), so Eq. 14's
        # last prefix product is exactly 2^n and L >= 4^K * 2^n.
        self._output_factor = float(2 ** sum(graph.vertex_weights))

    # ------------------------------------------------------------------
    def search(self) -> Tuple[List[int], PartitionCost]:
        """Return the optimal assignment and its cost.

        Raises :class:`CutSearchError` if no feasible partition into
        2..max_subcircuits clusters exists within the cut budget.
        """
        best_assignment: Optional[List[int]] = None
        best_objective = float("inf")
        num_vertices = self.graph.num_vertices
        state = _SearchState(
            assignment=[-1] * num_vertices,
            alpha=[0] * self.max_subcircuits,
            rho=[0] * self.max_subcircuits,
            outgoing=[0] * self.max_subcircuits,
            members=[0] * self.max_subcircuits,
            num_cuts=0,
            clusters_open=0,
        )
        self._nodes_visited = 0

        def recurse(vertex: int) -> None:
            nonlocal best_assignment, best_objective
            self._nodes_visited += 1
            if self._nodes_visited > self.node_limit:
                raise CutSearchError(
                    f"branch-and-bound node limit {self.node_limit} exceeded; "
                    "use a heuristic method for this circuit"
                )
            if vertex == num_vertices:
                if state.clusters_open < 2:
                    return  # not actually cut
                cost = evaluate_partition(
                    self.graph,
                    state.assignment,
                    self.max_qubits,
                    max_cuts=self.max_cuts,
                    max_subcircuits=self.max_subcircuits,
                )
                if cost.feasible and cost.objective < best_objective:
                    best_objective = cost.objective
                    best_assignment = list(state.assignment)
                return
            # Symmetry breaking (Eq. 12): open at most one new cluster.
            limit = min(state.clusters_open + 1, self.max_subcircuits)
            for cluster in range(limit):
                if not self._try_assign(state, vertex, cluster):
                    continue
                if self._promising(state, best_objective):
                    recurse(vertex + 1)
                self._undo_assign(state, vertex, cluster)

        recurse(0)
        if best_assignment is None:
            raise CutSearchError(
                f"no feasible cut into <= {self.max_subcircuits} subcircuits of "
                f"<= {self.max_qubits} qubits within {self.max_cuts} cuts"
            )
        final_cost = evaluate_partition(
            self.graph,
            best_assignment,
            self.max_qubits,
            max_cuts=self.max_cuts,
            max_subcircuits=self.max_subcircuits,
        )
        return best_assignment, final_cost

    @property
    def nodes_visited(self) -> int:
        return self._nodes_visited

    # ------------------------------------------------------------------
    def _try_assign(self, state: _SearchState, vertex: int, cluster: int) -> bool:
        """Tentatively place ``vertex``; reject on immediate infeasibility."""
        weight = self.graph.vertex_weights[vertex]
        new_cuts = 0
        rho_delta: Dict[int, int] = {}
        outgoing_delta: Dict[int, int] = {}
        for source, target in self._edges_of[vertex]:
            source_cluster = state.assignment[source]
            if source_cluster < 0:  # pragma: no cover - forward edges only
                continue
            if source_cluster != cluster:
                new_cuts += 1
                rho_delta[cluster] = rho_delta.get(cluster, 0) + 1
                outgoing_delta[source_cluster] = (
                    outgoing_delta.get(source_cluster, 0) + 1
                )
        if state.num_cuts + new_cuts > self.max_cuts:
            return False
        if (
            state.alpha[cluster]
            + weight
            + state.rho[cluster]
            + rho_delta.get(cluster, 0)
            > self.max_qubits
        ):
            return False
        state.assignment[vertex] = cluster
        state.alpha[cluster] += weight
        for target_cluster, delta in rho_delta.items():
            state.rho[target_cluster] += delta
        for source_cluster, delta in outgoing_delta.items():
            state.outgoing[source_cluster] += delta
        state.num_cuts += new_cuts
        state.members[cluster] += 1
        if cluster == state.clusters_open:
            state.clusters_open += 1
        return True

    def _undo_assign(self, state: _SearchState, vertex: int, cluster: int) -> None:
        weight = self.graph.vertex_weights[vertex]
        state.assignment[vertex] = -1
        state.alpha[cluster] -= weight
        state.members[cluster] -= 1
        for source, target in self._edges_of[vertex]:
            source_cluster = state.assignment[source]
            if source_cluster < 0:
                continue
            if source_cluster != cluster:
                state.rho[cluster] -= 1
                state.outgoing[source_cluster] -= 1
                state.num_cuts -= 1
        if cluster == state.clusters_open - 1 and state.members[cluster] == 0:
            # The cluster was opened by this vertex; close it again
            # (incremental member count — no rescan of all vertices).
            state.clusters_open -= 1

    def _promising(self, state: _SearchState, best_objective: float) -> bool:
        """Lower bound on Eq. 14 given the committed cuts."""
        if best_objective == float("inf"):
            return True
        return float(4**state.num_cuts) * self._output_factor < best_objective


def branch_and_bound_search(
    graph: CircuitGraph,
    max_subcircuit_qubits: int,
    max_subcircuits: int = 5,
    max_cuts: int = 10,
    node_limit: int = 5_000_000,
) -> Tuple[List[int], PartitionCost]:
    """Functional front-end to :class:`MIPCutSearcher`."""
    searcher = MIPCutSearcher(
        graph,
        max_subcircuit_qubits,
        max_subcircuits=max_subcircuits,
        max_cuts=max_cuts,
        node_limit=node_limit,
    )
    return searcher.search()
