"""Apply wire cuts: split a circuit into subcircuits plus cut metadata.

Cutting is defined by a *clustering* of the multiqubit-gate graph
(:class:`~repro.circuits.dag.CircuitGraph`): every edge whose endpoints
land in different clusters is cut.  Each maximal same-cluster run of
multiqubit gates along a wire becomes a *segment*, and each segment
becomes one qubit line of its cluster's subcircuit:

* a segment that is not the first on its wire starts at a cut — its line
  is an **initialization** line (paper's rho qubits);
* a segment that is not the last on its wire ends at a cut — its line is a
  **measurement** line (paper's O qubits);
* the last segment of each wire carries the wire's final output (the
  paper's effective qubits, f_c of Eq. 7).

Single-qubit gates travel with the segment of the preceding multiqubit
gate on their wire (they never affect connectivity, §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..circuits import CircuitGraph, Gate, QuantumCircuit, build_circuit_graph
from ..obs import trace

__all__ = ["WireCut", "SubcircuitLine", "Subcircuit", "CutCircuit", "cut_circuit",
           "cut_circuit_from_assignment"]


@dataclass(frozen=True)
class WireCut:
    """One cut point and the two subcircuit lines it connects."""

    cut_id: int
    wire: int
    wire_index: int  # the cut sits before this multiqubit gate index on the wire
    upstream_subcircuit: int
    upstream_line: int
    downstream_subcircuit: int
    downstream_line: int


@dataclass(frozen=True)
class SubcircuitLine:
    """One qubit line of a subcircuit — a segment of an original wire."""

    wire: int
    segment: int
    line: int
    init_cut: Optional[int]  # cut id feeding this line, None = original |0> input
    meas_cut: Optional[int]  # cut id consuming this line, None = final output

    @property
    def is_output(self) -> bool:
        """Whether this line carries part of the uncut circuit's output."""
        return self.meas_cut is None


@dataclass
class Subcircuit:
    """A standalone piece of the cut circuit, plus its cut-role metadata."""

    index: int
    circuit: QuantumCircuit
    lines: List[SubcircuitLine] = field(default_factory=list)

    @property
    def width(self) -> int:
        """d_c of Eq. 9 — qubits needed to run this subcircuit."""
        return self.circuit.num_qubits

    @property
    def init_lines(self) -> List[SubcircuitLine]:
        """Lines initialized by a cut (rho_c of Eq. 5), in line order."""
        return [line for line in self.lines if line.init_cut is not None]

    @property
    def meas_lines(self) -> List[SubcircuitLine]:
        """Lines measured into a cut (O_c of Eq. 6), in line order."""
        return [line for line in self.lines if line.meas_cut is not None]

    @property
    def output_lines(self) -> List[SubcircuitLine]:
        """Lines contributing to the uncut output (f_c of Eq. 7), in order."""
        return [line for line in self.lines if line.is_output]

    @property
    def num_effective(self) -> int:
        return len(self.output_lines)

    @property
    def cut_ids(self) -> List[int]:
        """All cut ids attached to this subcircuit, sorted."""
        ids = [line.init_cut for line in self.lines if line.init_cut is not None]
        ids += [line.meas_cut for line in self.lines if line.meas_cut is not None]
        return sorted(ids)


class CutCircuit:
    """The result of cutting: subcircuits, cuts, and reconstruction maps."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        graph: CircuitGraph,
        assignment: List[int],
        subcircuits: List[Subcircuit],
        cuts: List[WireCut],
        gate_placements: Optional[List[Tuple[int, int]]] = None,
    ):
        self.circuit = circuit
        self.graph = graph
        self.assignment = assignment
        self.subcircuits = subcircuits
        self.cuts = cuts
        #: Per full-circuit gate index: ``(subcircuit index, position in
        #: that subcircuit's gate list)``.  Recorded during gate emission;
        #: lets a parameter rebind patch exactly the dirty subcircuits.
        self.gate_placements = gate_placements

    @property
    def num_cuts(self) -> int:
        """K — the number of cut edges (Eq. 13)."""
        return len(self.cuts)

    @property
    def num_subcircuits(self) -> int:
        return len(self.subcircuits)

    def max_subcircuit_width(self) -> int:
        return max(sub.width for sub in self.subcircuits)

    def output_wire_order(self, subcircuit_order: Optional[Sequence[int]] = None) -> List[int]:
        """Original wires in Kronecker order for a given subcircuit order.

        The reconstructor produces a vector whose qubits are the output
        lines of each subcircuit, concatenated in ``subcircuit_order``;
        entry ``p`` of the returned list is the original wire held at
        Kronecker position ``p``.
        """
        order = (
            list(range(self.num_subcircuits))
            if subcircuit_order is None
            else list(subcircuit_order)
        )
        wires: List[int] = []
        for index in order:
            wires.extend(line.wire for line in self.subcircuits[index].output_lines)
        return wires

    def rebound(
        self, circuit: QuantumCircuit, changed: Sequence[int]
    ) -> Tuple["CutCircuit", List[int]]:
        """The same cut applied to a parameter rebind of the circuit.

        ``circuit`` must be structurally identical to ``self.circuit``
        (same gates on the same qubits — only rotation angles may differ)
        and ``changed`` lists the full-circuit indices of the gates whose
        parameters moved (what :meth:`QuantumCircuit.bind` reports).

        Returns ``(new_cut, dirty_subcircuits)``.  Only subcircuits
        containing a changed gate are rebuilt; clean :class:`Subcircuit`
        objects — and therefore their gate tuples, variant plans and
        fused blocks — are shared **by reference** with ``self``, so
        every downstream identity/equality-keyed cache still hits.
        """
        if self.gate_placements is None:
            raise ValueError(
                "this CutCircuit carries no gate placements; re-cut via "
                "cut_circuit_from_assignment to enable rebinding"
            )
        updates: Dict[int, List[Tuple[int, Gate]]] = {}
        for index in changed:
            cluster, position = self.gate_placements[index]
            updates.setdefault(cluster, []).append(
                (position, circuit.gates[index])
            )
        subcircuits = list(self.subcircuits)
        for cluster, patches in updates.items():
            old = self.subcircuits[cluster]
            gate_list = list(old.circuit.gates)
            for position, source in patches:
                # The emitted gate lives on remapped line qubits; only its
                # parameters move.
                gate_list[position] = Gate(
                    source.name, gate_list[position].qubits, source.params
                )
            subcircuits[cluster] = Subcircuit(
                index=old.index,
                circuit=QuantumCircuit._unchecked(
                    old.circuit.num_qubits, gate_list
                ),
                lines=old.lines,
            )
        rebound = CutCircuit(
            circuit,
            self.graph,
            self.assignment,
            subcircuits,
            self.cuts,
            gate_placements=self.gate_placements,
        )
        return rebound, sorted(updates)

    def summary(self) -> str:
        """Human-readable description, used by examples and benches."""
        parts = [
            f"{self.circuit.num_qubits}-qubit circuit -> "
            f"{self.num_subcircuits} subcircuits with {self.num_cuts} cut(s)"
        ]
        for sub in self.subcircuits:
            parts.append(
                f"  subcircuit {sub.index}: {sub.width} qubits "
                f"(init={len(sub.init_lines)}, meas={len(sub.meas_lines)}, "
                f"output={sub.num_effective}), {len(sub.circuit)} gates"
            )
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def cut_circuit(
    circuit: QuantumCircuit, cuts: Sequence[Tuple[int, int]]
) -> CutCircuit:
    """Cut ``circuit`` at explicit ``(wire, wire_index)`` positions.

    ``(wire, k)`` cuts wire ``wire`` immediately before the multiqubit gate
    at 0-based position ``k`` along that wire (so ``k >= 1``; e.g. the
    paper's Fig. 4 cut is ``(2, 1)`` — between the first two cZ gates on
    qubit 2).  The cut set
    must exactly separate the multiqubit-gate graph: if removing the listed
    edges leaves other edges crossing between the resulting components, the
    cut set is inconsistent and a ``ValueError`` explains which edges are
    missing.
    """
    graph = build_circuit_graph(circuit)
    cut_edges = {graph.edge_for_cut(wire, index) for wire, index in cuts}

    undirected = nx.Graph()
    undirected.add_nodes_from(range(graph.num_vertices))
    for edge in graph.edges:
        if edge not in cut_edges:
            undirected.add_edge(edge.source, edge.target)

    component_of: Dict[int, int] = {}
    components = sorted(nx.connected_components(undirected), key=min)
    for label, members in enumerate(components):
        for vertex in members:
            component_of[vertex] = label
    assignment = [component_of[v] for v in range(graph.num_vertices)]

    implied = {
        edge
        for edge in graph.edges
        if assignment[edge.source] != assignment[edge.target]
    }
    if implied != cut_edges:
        missing = sorted(
            (edge.wire, edge.wire_index) for edge in implied - cut_edges
        )
        extra = sorted((edge.wire, edge.wire_index) for edge in cut_edges - implied)
        raise ValueError(
            "cut set does not cleanly separate the circuit: "
            f"missing cuts {missing}, redundant cuts {extra}"
        )
    return cut_circuit_from_assignment(circuit, assignment, graph=graph)


def cut_circuit_from_assignment(
    circuit: QuantumCircuit,
    assignment: Sequence[int],
    graph: Optional[CircuitGraph] = None,
) -> CutCircuit:
    """Cut ``circuit`` according to a vertex->cluster assignment."""
    with trace.span("cut.split", {"gates": len(circuit.gates)}):
        return _build_cut_circuit(circuit, assignment, graph)


def _build_cut_circuit(
    circuit: QuantumCircuit,
    assignment: Sequence[int],
    graph: Optional[CircuitGraph] = None,
) -> CutCircuit:
    graph = graph or build_circuit_graph(circuit)
    if len(assignment) != graph.num_vertices:
        raise ValueError(
            f"assignment covers {len(assignment)} vertices, graph has "
            f"{graph.num_vertices}"
        )
    assignment = _relabel_clusters(list(assignment))
    num_clusters = max(assignment) + 1

    # --- segments ------------------------------------------------------
    # For each wire: maximal runs of consecutive same-cluster gates.
    # ``segments[wire]`` lists (cluster, first_wire_index) per run;
    # ``boundaries[wire]`` lists the wire indices where a new run starts.
    segments: Dict[int, List[int]] = {}
    boundaries: Dict[int, List[int]] = {}
    for wire in range(circuit.num_qubits):
        vertex_ids = graph.wire_vertices[wire]
        clusters = [assignment[v] for v in vertex_ids]
        runs: List[int] = [clusters[0]]
        starts: List[int] = [0]
        for position in range(1, len(clusters)):
            if clusters[position] != clusters[position - 1]:
                runs.append(clusters[position])
                starts.append(position)
        segments[wire] = runs
        boundaries[wire] = starts

    # --- lines ----------------------------------------------------------
    line_counter = [0] * num_clusters
    line_of: Dict[Tuple[int, int], Tuple[int, int]] = {}  # (wire, seg) -> (cluster, line)
    lines_meta: Dict[int, List[SubcircuitLine]] = {c: [] for c in range(num_clusters)}
    cuts: List[WireCut] = []
    for wire in range(circuit.num_qubits):
        for segment, cluster in enumerate(segments[wire]):
            line = line_counter[cluster]
            line_counter[cluster] += 1
            line_of[(wire, segment)] = (cluster, line)
    for wire in range(circuit.num_qubits):
        for segment in range(len(segments[wire]) - 1):
            up_cluster, up_line = line_of[(wire, segment)]
            down_cluster, down_line = line_of[(wire, segment + 1)]
            cuts.append(
                WireCut(
                    cut_id=len(cuts),
                    wire=wire,
                    wire_index=boundaries[wire][segment + 1],
                    upstream_subcircuit=up_cluster,
                    upstream_line=up_line,
                    downstream_subcircuit=down_cluster,
                    downstream_line=down_line,
                )
            )

    init_cut_of: Dict[Tuple[int, int], int] = {}
    meas_cut_of: Dict[Tuple[int, int], int] = {}
    for cut in cuts:
        wire = cut.wire
        segment = boundaries[wire].index(cut.wire_index)
        meas_cut_of[(wire, segment - 1)] = cut.cut_id
        init_cut_of[(wire, segment)] = cut.cut_id

    for wire in range(circuit.num_qubits):
        for segment, cluster in enumerate(segments[wire]):
            _, line = line_of[(wire, segment)]
            lines_meta[cluster].append(
                SubcircuitLine(
                    wire=wire,
                    segment=segment,
                    line=line,
                    init_cut=init_cut_of.get((wire, segment)),
                    meas_cut=meas_cut_of.get((wire, segment)),
                )
            )
    for cluster in lines_meta:
        lines_meta[cluster].sort(key=lambda item: item.line)

    # --- gate emission ---------------------------------------------------
    subcircuit_circuits = [
        QuantumCircuit(max(1, line_counter[c])) for c in range(num_clusters)
    ]
    multi_seen = [0] * circuit.num_qubits  # multiqubit gates consumed per wire

    def segment_for(wire: int, wire_index: int) -> int:
        starts = boundaries[wire]
        segment = 0
        while segment + 1 < len(starts) and starts[segment + 1] <= wire_index:
            segment += 1
        return segment

    gate_placements: List[Tuple[int, int]] = []
    for gate in circuit:
        if gate.is_multiqubit:
            placements = []
            for qubit in gate.qubits:
                segment = segment_for(qubit, multi_seen[qubit])
                placements.append(line_of[(qubit, segment)])
                multi_seen[qubit] += 1
            clusters = {cluster for cluster, _ in placements}
            if len(clusters) != 1:  # pragma: no cover - internal invariant
                raise AssertionError("multiqubit gate split across subcircuits")
            cluster = clusters.pop()
            gate_placements.append(
                (cluster, len(subcircuit_circuits[cluster]))
            )
            subcircuit_circuits[cluster].append(
                gate.on(*(line for _, line in placements))
            )
        else:
            qubit = gate.qubits[0]
            # 1q gates stay with the upstream segment of their wire.
            anchor = max(0, multi_seen[qubit] - 1)
            segment = segment_for(qubit, anchor)
            cluster, line = line_of[(qubit, segment)]
            gate_placements.append(
                (cluster, len(subcircuit_circuits[cluster]))
            )
            subcircuit_circuits[cluster].append(gate.on(line))

    subcircuits = [
        Subcircuit(index=c, circuit=subcircuit_circuits[c], lines=lines_meta[c])
        for c in range(num_clusters)
    ]
    return CutCircuit(
        circuit, graph, assignment, subcircuits, cuts,
        gate_placements=gate_placements,
    )


def _relabel_clusters(assignment: List[int]) -> List[int]:
    """Relabel clusters to 0..m-1 in order of first appearance."""
    mapping: Dict[int, int] = {}
    relabelled = []
    for cluster in assignment:
        if cluster not in mapping:
            mapping[cluster] = len(mapping)
        relabelled.append(mapping[cluster])
    return relabelled
