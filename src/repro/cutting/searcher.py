"""Cut-search front-end: pick a solver, return a priced `CutSolution`.

``find_cuts`` mirrors the paper's workflow (Fig. 5): given the input
circuit and the device size ``D`` (plus the experiment limits of §5.1 —
at most 5 subcircuits and 10 cuts), it locates the cut set minimizing the
postprocessing-cost objective of Eq. (14).  Small instances are solved
exactly with branch and bound (our stand-in for Gurobi); large ones fall
back to the scan + local-search heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..circuits import QuantumCircuit, build_circuit_graph
from .cutter import CutCircuit, cut_circuit_from_assignment
from .heuristics import heuristic_search
from .mip import branch_and_bound_search
from .model import CutSearchError, PartitionCost

__all__ = ["CutSolution", "find_cuts", "DEFAULT_MAX_SUBCIRCUITS", "DEFAULT_MAX_CUTS"]

#: The experiment limits the paper uses throughout §5/§6.
DEFAULT_MAX_SUBCIRCUITS = 5
DEFAULT_MAX_CUTS = 10

#: Above this vertex count the exact search is usually intractable.
_EXACT_VERTEX_LIMIT = 22


@dataclass
class CutSolution:
    """A priced cut: the partition, its cost, and the cut positions."""

    assignment: List[int]
    cost: PartitionCost
    method: str

    @property
    def num_cuts(self) -> int:
        return self.cost.num_cuts

    @property
    def objective(self) -> float:
        return self.cost.objective

    def apply(self, circuit: QuantumCircuit) -> CutCircuit:
        """Cut ``circuit`` according to this solution."""
        return cut_circuit_from_assignment(circuit, self.assignment)

    # -- serialization (artifact store) ---------------------------------
    def to_dict(self) -> Dict:
        """JSON-able form, restored bit-identically by :meth:`from_dict`."""
        return {
            "assignment": list(self.assignment),
            "cost": self.cost.to_dict(),
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CutSolution":
        return cls(
            assignment=[int(a) for a in payload["assignment"]],
            cost=PartitionCost.from_dict(payload["cost"]),
            method=str(payload["method"]),
        )


def find_cuts(
    circuit: QuantumCircuit,
    max_subcircuit_qubits: int,
    max_subcircuits: int = DEFAULT_MAX_SUBCIRCUITS,
    max_cuts: int = DEFAULT_MAX_CUTS,
    method: str = "auto",
) -> CutSolution:
    """Locate the cheapest cut of ``circuit`` onto a ``D``-qubit device.

    Parameters
    ----------
    method:
        ``"mip"`` forces the exact branch-and-bound search, ``"heuristic"``
        forces scan + local search, ``"auto"`` (default) picks by circuit
        size and falls back to the heuristic if the exact search exceeds
        its node budget.

    Raises
    ------
    CutSearchError
        If no feasible cut exists within the budgets.
    """
    if method not in ("auto", "mip", "heuristic"):
        raise ValueError(f"unknown method {method!r}")
    graph = build_circuit_graph(circuit)

    if method == "mip":
        assignment, cost = branch_and_bound_search(
            graph, max_subcircuit_qubits, max_subcircuits, max_cuts
        )
        return CutSolution(assignment=assignment, cost=cost, method="mip")
    if method == "heuristic":
        assignment, cost = heuristic_search(
            graph, max_subcircuit_qubits, max_subcircuits, max_cuts
        )
        return CutSolution(assignment=assignment, cost=cost, method="heuristic")

    if graph.num_vertices <= _EXACT_VERTEX_LIMIT:
        try:
            assignment, cost = branch_and_bound_search(
                graph, max_subcircuit_qubits, max_subcircuits, max_cuts
            )
            return CutSolution(assignment=assignment, cost=cost, method="mip")
        except CutSearchError as error:
            if "node limit" not in str(error):
                raise
    assignment, cost = heuristic_search(
        graph, max_subcircuit_qubits, max_subcircuits, max_cuts
    )
    return CutSolution(assignment=assignment, cost=cost, method="heuristic")


def cut_positions(solution: CutSolution, circuit: QuantumCircuit) -> List[Tuple[int, int]]:
    """The ``(wire, wire_index)`` cut points implied by a solution."""
    cut = solution.apply(circuit)
    return [(c.wire, c.wire_index) for c in cut.cuts]
