"""Shared partition model: the quantities of paper Eqs. (4)-(14).

Given a vertex->cluster assignment of the multiqubit-gate graph, this
module computes, per cluster ``c``:

* ``alpha_c`` — original input qubits (Eq. 4),
* ``rho_c``   — initialization qubits induced by incoming cuts (Eq. 5),
* ``O_c``     — measurement qubits induced by outgoing cuts (Eq. 6),
* ``f_c = alpha_c + rho_c - O_c`` — effective output qubits (Eq. 7),
* ``d_c = alpha_c + rho_c`` — device qubits needed (Eq. 9),

plus ``K`` (Eq. 13) and the reconstruction-cost objective ``L`` (Eq. 14).
Both the exact branch-and-bound searcher and the heuristics price
candidate partitions with these functions, so their objectives are
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits import CircuitGraph

__all__ = ["PartitionCost", "evaluate_partition", "objective_from_f", "CutSearchError"]


class CutSearchError(RuntimeError):
    """No feasible cut satisfies the size/cut-count budgets."""


@dataclass
class PartitionCost:
    """Feasibility and cost of one candidate partition."""

    num_clusters: int
    num_cuts: int
    alpha: List[int]
    rho: List[int]
    O: List[int]
    feasible: bool
    violation: Optional[str]
    objective: float

    @property
    def f(self) -> List[int]:
        return [a + r - o for a, r, o in zip(self.alpha, self.rho, self.O)]

    @property
    def d(self) -> List[int]:
        return [a + r for a, r in zip(self.alpha, self.rho)]

    # -- serialization (artifact store) ---------------------------------
    def to_dict(self) -> Dict:
        """JSON-able form, restored bit-identically by :meth:`from_dict`."""
        return {
            "num_clusters": self.num_clusters,
            "num_cuts": self.num_cuts,
            "alpha": list(self.alpha),
            "rho": list(self.rho),
            "O": list(self.O),
            "feasible": self.feasible,
            "violation": self.violation,
            # inf is not valid JSON; encode infeasible costs as None.
            "objective": None if self.objective == float("inf") else self.objective,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PartitionCost":
        objective = payload["objective"]
        return cls(
            num_clusters=int(payload["num_clusters"]),
            num_cuts=int(payload["num_cuts"]),
            alpha=[int(a) for a in payload["alpha"]],
            rho=[int(r) for r in payload["rho"]],
            O=[int(o) for o in payload["O"]],
            feasible=bool(payload["feasible"]),
            violation=payload["violation"],
            objective=float("inf") if objective is None else float(objective),
        )


def objective_from_f(num_cuts: int, f_values: Sequence[int]) -> float:
    """Eq. (14): ``L = 4^K * sum_{c=2}^{nC} prod_{i<=c} 2^{f_i}``.

    ``f_values`` are taken in the reconstructor's greedy order (ascending),
    so the estimator prices the same Kronecker schedule the build step
    actually executes.  A single cluster (no cutting) has zero
    reconstruction cost.
    """
    ordered = sorted(f_values)
    if len(ordered) <= 1:
        return 0.0
    total = 0.0
    running = float(1 << ordered[0])
    for f_value in ordered[1:]:
        running *= float(1 << f_value)
        total += running
    return float(4**num_cuts) * total


def evaluate_partition(
    graph: CircuitGraph,
    assignment: Sequence[int],
    max_subcircuit_qubits: int,
    max_cuts: Optional[int] = None,
    max_subcircuits: Optional[int] = None,
) -> PartitionCost:
    """Price a partition and check the paper's feasibility constraints."""
    if len(assignment) != graph.num_vertices:
        raise ValueError(
            f"assignment covers {len(assignment)} vertices, graph has "
            f"{graph.num_vertices}"
        )
    num_clusters = max(assignment) + 1
    alpha = [0] * num_clusters
    rho = [0] * num_clusters
    outgoing = [0] * num_clusters

    for vertex in range(graph.num_vertices):
        alpha[assignment[vertex]] += graph.vertex_weights[vertex]

    num_cuts = 0
    for edge in graph.edges:
        source_cluster = assignment[edge.source]
        target_cluster = assignment[edge.target]
        if source_cluster != target_cluster:
            num_cuts += 1
            outgoing[source_cluster] += 1
            rho[target_cluster] += 1

    violation: Optional[str] = None
    for cluster in range(num_clusters):
        if alpha[cluster] + rho[cluster] > max_subcircuit_qubits:
            violation = (
                f"subcircuit {cluster} needs {alpha[cluster] + rho[cluster]} "
                f"qubits > limit {max_subcircuit_qubits}"
            )
            break
    if violation is None and max_cuts is not None and num_cuts > max_cuts:
        violation = f"{num_cuts} cuts > limit {max_cuts}"
    if violation is None and max_subcircuits is not None and num_clusters > max_subcircuits:
        violation = f"{num_clusters} subcircuits > limit {max_subcircuits}"
    if violation is None and any(count == 0 for count in _cluster_sizes(assignment, num_clusters)):
        violation = "empty subcircuit in assignment"

    feasible = violation is None
    f_values = [a + r - o for a, r, o in zip(alpha, rho, outgoing)]
    objective = objective_from_f(num_cuts, f_values) if feasible else float("inf")
    return PartitionCost(
        num_clusters=num_clusters,
        num_cuts=num_cuts,
        alpha=alpha,
        rho=rho,
        O=outgoing,
        feasible=feasible,
        violation=violation,
        objective=objective,
    )


def _cluster_sizes(assignment: Sequence[int], num_clusters: int) -> List[int]:
    sizes = [0] * num_clusters
    for cluster in assignment:
        sizes[cluster] += 1
    return sizes
