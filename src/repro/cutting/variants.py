"""Enumerate and evaluate the physical variants of a subcircuit.

Per Fig. 3, the upstream side of every cut is measured in one of the Pauli
bases {I, X, Y, Z} and the downstream side is initialized in one of
{|0>, |1>, |+>, |+i>}.  The I and Z measurements share the same physical
circuit, so a subcircuit with ``O`` measurement lines and ``rho``
initialization lines has ``3^O * 4^rho`` distinct physical variants — the
circuits a quantum device actually runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..sim.statevector import simulate_probabilities
from .cutter import Subcircuit

__all__ = [
    "MEAS_BASES",
    "INIT_LABELS",
    "SubcircuitVariant",
    "generate_variants",
    "variant_circuit",
    "circuit_fingerprint",
    "evaluate_subcircuit",
    "SubcircuitResult",
    "num_physical_variants",
]

#: Physical measurement bases (I reuses the Z circuit during attribution).
MEAS_BASES: Tuple[str, ...] = ("Z", "X", "Y")
#: Downstream initialization states, in the order used by the term transform.
INIT_LABELS: Tuple[str, ...] = ("zero", "one", "plus", "plus_i")

_PREP_GATES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "zero": (),
    "one": (("x",),),
    "plus": (("h",),),
    "plus_i": (("h",), ("s",)),
}

_BASIS_GATES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "Z": (),
    "X": (("h",),),
    "Y": (("sdg",), ("h",)),
}


@dataclass(frozen=True)
class SubcircuitVariant:
    """One physical variant: init labels and measurement bases per line."""

    inits: Tuple[str, ...]
    bases: Tuple[str, ...]


def num_physical_variants(subcircuit: Subcircuit) -> int:
    """``3^O * 4^rho`` — the device workload per subcircuit."""
    return (len(MEAS_BASES) ** len(subcircuit.meas_lines)) * (
        len(INIT_LABELS) ** len(subcircuit.init_lines)
    )


def generate_variants(subcircuit: Subcircuit) -> List[SubcircuitVariant]:
    """All physical variants, inits varying slowest (deterministic order)."""
    init_choices = itertools.product(
        INIT_LABELS, repeat=len(subcircuit.init_lines)
    )
    variants = []
    for inits in init_choices:
        for bases in itertools.product(MEAS_BASES, repeat=len(subcircuit.meas_lines)):
            variants.append(SubcircuitVariant(inits=tuple(inits), bases=tuple(bases)))
    return variants


def variant_circuit(
    subcircuit: Subcircuit, variant: SubcircuitVariant
) -> QuantumCircuit:
    """The runnable circuit: state prep + body + basis rotations."""
    init_lines = subcircuit.init_lines
    meas_lines = subcircuit.meas_lines
    if len(variant.inits) != len(init_lines):
        raise ValueError(
            f"variant has {len(variant.inits)} init labels, subcircuit has "
            f"{len(init_lines)} init lines"
        )
    if len(variant.bases) != len(meas_lines):
        raise ValueError(
            f"variant has {len(variant.bases)} bases, subcircuit has "
            f"{len(meas_lines)} measurement lines"
        )
    circuit = QuantumCircuit(subcircuit.width)
    for label, line in zip(variant.inits, init_lines):
        for gate_spec in _PREP_GATES[label]:
            circuit.add(gate_spec[0], (line.line,))
    circuit.compose(subcircuit.circuit)
    for basis, line in zip(variant.bases, meas_lines):
        for gate_spec in _BASIS_GATES[basis]:
            circuit.add(gate_spec[0], (line.line,))
    return circuit


def circuit_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Hashable identity of a physical circuit (width + exact gate list).

    Two variants with equal fingerprints produce identical output
    distributions on any backend, so one execution can serve both; every
    dedup path (per-subcircuit and batched) keys on this one function.
    """
    return (circuit.num_qubits, circuit.gates)


#: An evaluation backend maps a runnable circuit to a probability vector.
Backend = Callable[[QuantumCircuit], np.ndarray]


def _statevector_backend(circuit: QuantumCircuit) -> np.ndarray:
    return simulate_probabilities(circuit)


@dataclass
class SubcircuitResult:
    """Raw evaluation results of all physical variants of one subcircuit.

    ``probabilities[(inits, bases)]`` is the 2**width probability vector
    of the corresponding variant (line 0 is the most significant bit).
    ``num_variants`` / ``num_unique_circuits`` record how much of the
    variant space was served by shared physical executions (beyond the
    I/Z sharing already folded into :data:`MEAS_BASES`).
    """

    subcircuit: Subcircuit
    probabilities: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray]
    num_variants: int = 0
    num_unique_circuits: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Variants per physical execution (>= 1; 1.0 means no sharing)."""
        if self.num_unique_circuits <= 0:
            return 1.0
        return self.num_variants / self.num_unique_circuits

    def vector(self, inits: Sequence[str], bases: Sequence[str]) -> np.ndarray:
        return self.probabilities[(tuple(inits), tuple(bases))]


def evaluate_subcircuit(
    subcircuit: Subcircuit,
    backend: Optional[Backend] = None,
) -> SubcircuitResult:
    """Run every physical variant of ``subcircuit`` through ``backend``.

    The default backend is the exact statevector simulator (what the paper
    uses for its runtime studies, §5.1); pass a noisy device's ``run`` for
    hardware emulation.  Variants whose physical circuits coincide (same
    width and gate list) are executed once and share the result vector;
    the achieved ratio is reported on the returned
    :class:`SubcircuitResult`.
    """
    backend = backend or _statevector_backend
    probabilities = {}
    executed: Dict[Tuple, np.ndarray] = {}
    num_variants = 0
    for variant in generate_variants(subcircuit):
        circuit = variant_circuit(subcircuit, variant)
        key = circuit_fingerprint(circuit)
        if key not in executed:
            vector = np.asarray(backend(circuit), dtype=float)
            if vector.size != 1 << subcircuit.width:
                raise ValueError(
                    f"backend returned vector of size {vector.size} for a "
                    f"{subcircuit.width}-qubit variant"
                )
            executed[key] = vector
        probabilities[(variant.inits, variant.bases)] = executed[key]
        num_variants += 1
    return SubcircuitResult(
        subcircuit=subcircuit,
        probabilities=probabilities,
        num_variants=num_variants,
        num_unique_circuits=len(executed),
    )
