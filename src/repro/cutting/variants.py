"""Enumerate and evaluate the physical variants of a subcircuit.

Per Fig. 3, the upstream side of every cut is measured in one of the Pauli
bases {I, X, Y, Z} and the downstream side is initialized in one of
{|0>, |1>, |+>, |+i>}.  The I and Z measurements share the same physical
circuit, so a subcircuit with ``O`` measurement lines and ``rho``
initialization lines has ``3^O * 4^rho`` distinct physical variants — the
circuits a quantum device actually runs.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..circuits.gates import gate_matrix
from ..obs import trace
from ..sim.noise import NoiseModel, clean_log_weight
from ..sim.statevector import INITIAL_STATES, simulate_probabilities
from .cutter import Subcircuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..devices.device import VirtualDevice

__all__ = [
    "MEAS_BASES",
    "INIT_LABELS",
    "SubcircuitVariant",
    "generate_variants",
    "variant_circuit",
    "VariantCircuitFactory",
    "circuit_fingerprint",
    "batched_variant_probabilities",
    "NoisyEvalSpec",
    "batched_noisy_variant_probabilities",
    "evaluate_subcircuit",
    "SubcircuitResult",
    "num_physical_variants",
]

#: Physical measurement bases (I reuses the Z circuit during attribution).
MEAS_BASES: Tuple[str, ...] = ("Z", "X", "Y")
#: Downstream initialization states, in the order used by the term transform.
INIT_LABELS: Tuple[str, ...] = ("zero", "one", "plus", "plus_i")

_PREP_GATES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "zero": (),
    "one": (("x",),),
    "plus": (("h",),),
    "plus_i": (("h",), ("s",)),
}

_BASIS_GATES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "Z": (),
    "X": (("h",),),
    "Y": (("sdg",), ("h",)),
}

#: The 2x2 unitary each non-Z basis rotation applies (gate order folded:
#: Y measures through sdg then h, i.e. ``H @ Sdg`` as one matrix).
_BASIS_MATRICES: Dict[str, np.ndarray] = {
    "X": gate_matrix("h"),
    "Y": gate_matrix("h") @ gate_matrix("sdg"),
}


@dataclass(frozen=True)
class SubcircuitVariant:
    """One physical variant: init labels and measurement bases per line."""

    inits: Tuple[str, ...]
    bases: Tuple[str, ...]


def num_physical_variants(subcircuit: Subcircuit) -> int:
    """``3^O * 4^rho`` — the device workload per subcircuit."""
    return (len(MEAS_BASES) ** len(subcircuit.meas_lines)) * (
        len(INIT_LABELS) ** len(subcircuit.init_lines)
    )


def generate_variants(subcircuit: Subcircuit) -> List[SubcircuitVariant]:
    """All physical variants, inits varying slowest (deterministic order)."""
    init_choices = itertools.product(
        INIT_LABELS, repeat=len(subcircuit.init_lines)
    )
    variants = []
    for inits in init_choices:
        for bases in itertools.product(MEAS_BASES, repeat=len(subcircuit.meas_lines)):
            variants.append(SubcircuitVariant(inits=tuple(inits), bases=tuple(bases)))
    return variants


class VariantCircuitFactory:
    """Emit variant circuits without re-walking the shared body per variant.

    ``variant_circuit`` used to rebuild the whole gate list — body
    included — for every one of the ``3^O * 4^rho`` variants.  The
    factory hoists the (already validated) body gate tuple once and
    materializes each variant as prep fragment + body + basis fragment,
    so per-variant cost is proportional to the *fragment* size.

    It also owns the **structural key**: the cheap hashable identity
    ``(width, body gates, init/meas line positions, inits, bases)``.
    Two variants — of the same or of different subcircuits — with equal
    structural keys produce identical physical circuits, so every dedup
    path can key on it instead of fingerprinting full gate lists.
    """

    def __init__(self, subcircuit: Subcircuit):
        self.subcircuit = subcircuit
        self._width = subcircuit.width
        self._body = subcircuit.circuit.gates
        self._init_positions = tuple(
            line.line for line in subcircuit.init_lines
        )
        self._meas_positions = tuple(
            line.line for line in subcircuit.meas_lines
        )
        self._prep_fragments = {
            (label, position): tuple(
                Gate(spec[0], (position,)) for spec in _PREP_GATES[label]
            )
            for label in INIT_LABELS
            for position in self._init_positions
        }
        self._basis_fragments = {
            (basis, position): tuple(
                Gate(spec[0], (position,)) for spec in _BASIS_GATES[basis]
            )
            for basis in MEAS_BASES
            for position in self._meas_positions
        }
        #: Shared-body identity; equal body keys mean *every* variant of
        #: the two subcircuits coincides pairwise.
        self.body_key: Tuple = (
            self._width,
            self._body,
            self._init_positions,
            self._meas_positions,
        )

    def _check_shape(self, variant: SubcircuitVariant) -> None:
        if len(variant.inits) != len(self._init_positions):
            raise ValueError(
                f"variant has {len(variant.inits)} init labels, subcircuit "
                f"has {len(self._init_positions)} init lines"
            )
        if len(variant.bases) != len(self._meas_positions):
            raise ValueError(
                f"variant has {len(variant.bases)} bases, subcircuit has "
                f"{len(self._meas_positions)} measurement lines"
            )

    def circuit(self, variant: SubcircuitVariant) -> QuantumCircuit:
        """The runnable circuit: state prep + body + basis rotations."""
        self._check_shape(variant)
        gates: List[Gate] = []
        for label, position in zip(variant.inits, self._init_positions):
            gates.extend(self._prep_fragments[(label, position)])
        gates.extend(self._body)
        for basis, position in zip(variant.bases, self._meas_positions):
            gates.extend(self._basis_fragments[(basis, position)])
        return QuantumCircuit._unchecked(self._width, gates)

    def structural_key(self, variant: SubcircuitVariant) -> Tuple:
        """Hashable physical-circuit identity, O(1) per variant."""
        self._check_shape(variant)
        return (self.body_key, variant.inits, variant.bases)


def variant_circuit(
    subcircuit: Subcircuit, variant: SubcircuitVariant
) -> QuantumCircuit:
    """The runnable circuit: state prep + body + basis rotations."""
    return VariantCircuitFactory(subcircuit).circuit(variant)


def circuit_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Hashable identity of a physical circuit (width + exact gate list).

    Two variants with equal fingerprints produce identical output
    distributions on any backend, so one execution can serve both; every
    dedup path (per-subcircuit and batched) keys on this one function.
    """
    return (circuit.num_qubits, circuit.gates)


#: An evaluation backend maps a runnable circuit to a probability vector.
Backend = Callable[[QuantumCircuit], np.ndarray]


def _statevector_backend(circuit: QuantumCircuit) -> np.ndarray:
    return simulate_probabilities(circuit)


# ----------------------------------------------------------------------
# Batched evaluation: one fused body pass per init batch
# ----------------------------------------------------------------------

def batched_variant_probabilities(
    subcircuit: Subcircuit,
    fusion_width: int = 2,
    max_batch: int = 0,
    init_combos: Optional[Sequence[Tuple[str, ...]]] = None,
) -> Tuple[Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray], int]:
    """Every variant distribution from a handful of fused batched passes.

    Instead of ``3^O * 4^rho`` full simulations, the measurement-free
    body is simulated **once per init batch**: the ``4^rho`` initial
    product states are stacked on the batch axis of a
    :class:`~repro.sim.batch.BatchedStatevector`, the body is applied as
    fused <= ``fusion_width``-qubit unitaries, and all ``3^O``
    measurement-basis distributions are derived from the retained final
    states by applying only the cheap single-qubit basis rotations
    (sharing every common basis prefix).

    ``max_batch`` caps the members per pass (memory is
    ``members * 2^width * 16`` bytes per live tensor); ``0`` runs the
    whole init space in one pass.  ``init_combos`` restricts the sweep to
    a subset of init label tuples — the unit a
    :class:`~repro.core.executor.VariantExecutor` ships to pool workers.

    Returns ``(probabilities, num_body_passes)`` with the same
    ``(inits, bases) -> vector`` keying as :func:`evaluate_subcircuit`.
    """
    from ..sim.batch import BatchedStatevector, fuse_gates

    if max_batch < 0:
        raise ValueError("max_batch must be >= 0")
    width = subcircuit.width
    init_positions = [line.line for line in subcircuit.init_lines]
    meas_positions = [line.line for line in subcircuit.meas_lines]
    if init_combos is None:
        init_combos = [
            tuple(combo)
            for combo in itertools.product(
                INIT_LABELS, repeat=len(init_positions)
            )
        ]
    else:
        init_combos = [tuple(combo) for combo in init_combos]
    ops = fuse_gates(subcircuit.circuit, fusion_width)

    probabilities: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray] = {}
    zero = INITIAL_STATES["zero"]

    def emit(
        state: "BatchedStatevector",
        line_index: int,
        bases: Tuple[str, ...],
        combos: Sequence[Tuple[str, ...]],
    ) -> None:
        """Depth-first over measurement lines, sharing basis prefixes."""
        if line_index == len(meas_positions):
            vectors = state.probabilities()
            for row, inits in enumerate(combos):
                probabilities[(inits, bases)] = vectors[row]
            return
        position = meas_positions[line_index]
        for basis in MEAS_BASES:
            if basis == "Z":
                rotated = state
            else:
                rotated = state.applied(_BASIS_MATRICES[basis], [position])
            emit(rotated, line_index + 1, bases + (basis,), combos)

    chunk = max_batch if max_batch else len(init_combos)
    num_passes = 0
    for start in range(0, len(init_combos), chunk):
        combos = init_combos[start : start + chunk]
        with trace.span(
            "evaluate.variant_batch",
            {"subcircuit": subcircuit.index, "width": width,
             "members": len(combos)},
        ):
            members = []
            for labels in combos:
                per_qubit = [zero] * width
                for label, position in zip(labels, init_positions):
                    per_qubit[position] = INITIAL_STATES[label]
                members.append(per_qubit)
            state = BatchedStatevector.from_product_batch(members)
            state.apply_fused(ops)
            num_passes += 1
            emit(state, 0, (), combos)
    return probabilities, num_passes


# ----------------------------------------------------------------------
# Batched *noisy* evaluation: fused-body residency for device backends
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NoisyEvalSpec:
    """Configuration of one batched noisy evaluation.

    Picklable by construction — a spec rides inside the init-batch
    payloads a :class:`~repro.core.executor.VariantExecutor` ships to
    worker processes.  Exactly one of ``noise`` (simulate the raw
    subcircuit under a bare noise model) or ``device`` (transpile the
    body onto the device and use its noise model, the ``--device``
    pipeline path) must be set.

    ``method`` selects the estimator: ``"trajectory"`` is the batched
    Pauli-injection Monte-Carlo sampler (matches the serial
    :class:`~repro.sim.noise.NoisySimulator` estimator family),
    ``"density"`` evolves the exact depolarizing channel through a
    :class:`~repro.sim.density.BatchedDensityMatrix`.  ``shots`` of 0 or
    ``None`` return estimated distributions without shot noise.  All
    randomness derives from keyed child streams under ``seed`` (see
    :func:`~repro.sim.noise.spawn_rng`), so results are bit-identical
    for any worker count or chunking.
    """

    noise: Optional[NoiseModel] = None
    device: Optional["VirtualDevice"] = None
    method: str = "trajectory"
    trajectories: int = 24
    shots: Optional[int] = 8192
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in ("trajectory", "density"):
            raise ValueError(
                f"method must be 'trajectory' or 'density', got {self.method!r}"
            )
        if (self.noise is None) == (self.device is None):
            raise ValueError("pass exactly one of noise or device")
        if self.trajectories <= 0:
            raise ValueError("trajectories must be positive")

    @property
    def effective_noise(self) -> NoiseModel:
        return self.device.noise if self.device is not None else self.noise


@dataclass(frozen=True)
class _Fragment:
    """A compiled 1q prep/basis fragment on one simulated wire.

    ``gates`` are the fragment's (possibly native-decomposed) gates with
    qubits already remapped to the simulated register; ``matrix`` is
    their noise-free fold; ``log_clean`` the fragment's no-injection
    log-weight; ``rho``/``vector`` (prep only) the per-qubit 2x2 noisy
    density / clean 2-vector the fragment leaves behind — this is how
    prep folds into the first body block instead of costing a pass.
    """

    gates: Tuple[Gate, ...]
    wire: int
    log_clean: float
    matrix: np.ndarray
    rho: Optional[np.ndarray] = None
    vector: Optional[np.ndarray] = None


class _NoisyGeometry:
    """Everything fixed across a subcircuit's variants, compiled once."""

    __slots__ = ("num_wires", "plan", "clean_ops", "prep", "basis", "keep")

    def __init__(self, num_wires, plan, clean_ops, prep, basis, keep):
        self.num_wires = num_wires
        self.plan = plan
        self.clean_ops = clean_ops
        self.prep = prep
        self.basis = basis
        self.keep = keep


#: Per-process geometry memo — the fused-body residency layer: chunks of
#: the same subcircuit landing on the same warm worker reuse the routed,
#: planned and fused body instead of re-transpiling/re-fusing per payload.
_GEOMETRY_CACHE: "OrderedDict[Tuple, _NoisyGeometry]" = OrderedDict()
_GEOMETRY_CACHE_LIMIT = 64
_GEOMETRY_STATS = {"hits": 0, "misses": 0}


def geometry_stats() -> dict:
    """Per-process noisy-geometry memo counters plus live size.

    Mirrors :func:`repro.sim.batch.fusion_stats`: counters are local to
    the calling process, so pool workers report their own copies via
    ``WorkerPool.cache_stats()`` and land as pid-labelled gauges in the
    metrics registry.
    """
    return {
        "hits": _GEOMETRY_STATS["hits"],
        "misses": _GEOMETRY_STATS["misses"],
        "size": len(_GEOMETRY_CACHE),
    }


def _fold_matrices(gates: Sequence[Gate]) -> np.ndarray:
    matrix = np.eye(2, dtype=complex)
    for gate in gates:
        matrix = gate.matrix() @ matrix
    return matrix


def _prep_density(gates: Sequence[Gate], error_1q: float) -> np.ndarray:
    """The 2x2 density a noisy 1q prep fragment leaves on its wire."""
    rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
    lam = error_1q * 4.0 / 3.0
    for gate in gates:
        matrix = gate.matrix()
        rho = matrix @ rho @ matrix.conj().T
        if error_1q > 0.0:
            rho = (1.0 - lam) * rho + lam * np.trace(rho) * np.eye(2) / 2.0
    return rho


def _compiled_noisy_geometry(
    subcircuit: Subcircuit, spec: NoisyEvalSpec, fusion_width: int
) -> _NoisyGeometry:
    """Compile (and memoize) the variant-invariant noisy machinery.

    On the device path the *body alone* is transpiled: layout selection
    ignores gate contents and the 1q prep/basis fragments route in place
    without SWAPs, so ``native(prep) @ initial_layout + routed(body) +
    native(basis) @ final_layout`` is gate-for-gate the transpile of the
    full variant circuit — one routing pass serves all ``3^O * 4^rho``
    variants.
    """
    from ..sim.batch import fuse_gates
    from ..sim.noisy_batch import noisy_body_plan

    noise = spec.effective_noise
    width = subcircuit.width
    init_positions = tuple(line.line for line in subcircuit.init_lines)
    meas_positions = tuple(line.line for line in subcircuit.meas_lines)
    device_key = None
    if spec.device is not None:
        device = spec.device
        device_key = (
            device.name, device.num_qubits, device.coupling_map, device.noise,
        )
    key = (
        subcircuit.circuit.gates, width, init_positions, meas_positions,
        device_key, noise, fusion_width,
    )
    cached = _GEOMETRY_CACHE.get(key)
    if cached is not None:
        _GEOMETRY_STATS["hits"] += 1
        try:
            _GEOMETRY_CACHE.move_to_end(key)
        except KeyError:  # pragma: no cover - concurrent eviction
            pass
        return cached
    _GEOMETRY_STATS["misses"] += 1

    if spec.device is not None:
        from ..devices.transpiler import _native_1q, compact_circuit, transpile

        transpiled = transpile(subcircuit.circuit, spec.device)
        anchors = set(transpiled.initial_layout) | set(transpiled.final_layout)
        compact, kept_wires = compact_circuit(
            transpiled.circuit, keep=sorted(anchors)
        )
        remap = {wire: index for index, wire in enumerate(kept_wires)}
        body_gates = compact.gates
        num_wires = compact.num_qubits

        def fragment_gates(specs, physical):
            gates: List[Gate] = []
            for gate_spec in specs:
                gates.extend(_native_1q(Gate(gate_spec[0], (physical,))))
            return tuple(gates)

        def prep_wire(position):
            return remap[transpiled.initial_layout[position]]

        def basis_wire(position):
            return remap[transpiled.final_layout[position]]

        keep = [remap[transpiled.final_layout[q]] for q in range(width)]
    else:
        body_gates = subcircuit.circuit.gates
        num_wires = width

        def fragment_gates(specs, position):
            return tuple(Gate(gate_spec[0], (position,)) for gate_spec in specs)

        def prep_wire(position):
            return position

        def basis_wire(position):
            return position

        keep = None

    prep: Dict[Tuple[str, int], _Fragment] = {}
    for line_index, position in enumerate(init_positions):
        wire = prep_wire(position)
        for label in INIT_LABELS:
            gates = fragment_gates(_PREP_GATES[label], wire)
            prep[(label, line_index)] = _Fragment(
                gates=gates,
                wire=wire,
                log_clean=clean_log_weight(gates, noise),
                matrix=_fold_matrices(gates),
                rho=_prep_density(gates, noise.error_1q),
                vector=_fold_matrices(gates) @ INITIAL_STATES["zero"],
            )
    basis: Dict[Tuple[str, int], _Fragment] = {}
    for line_index, position in enumerate(meas_positions):
        wire = basis_wire(position)
        for name in MEAS_BASES:
            gates = fragment_gates(_BASIS_GATES[name], wire)
            basis[(name, line_index)] = _Fragment(
                gates=gates,
                wire=wire,
                log_clean=clean_log_weight(gates, noise),
                matrix=_fold_matrices(gates),
            )

    geometry = _NoisyGeometry(
        num_wires=num_wires,
        plan=noisy_body_plan(body_gates, noise, num_wires, fusion_width),
        clean_ops=fuse_gates(body_gates, fusion_width),
        prep=prep,
        basis=basis,
        keep=keep,
    )
    _GEOMETRY_CACHE[key] = geometry
    while len(_GEOMETRY_CACHE) > _GEOMETRY_CACHE_LIMIT:
        _GEOMETRY_CACHE.popitem(last=False)
    return geometry


def _labels_code(labels: Sequence[str]) -> int:
    """Global init-combo index (mixed-radix over :data:`INIT_LABELS`).

    Derived from the combo *content*, so RNG keys built on it are
    independent of how the init space was chunked across workers.
    """
    code = 0
    for label in labels:
        code = code * len(INIT_LABELS) + INIT_LABELS.index(label)
    return code


def _bases_code(bases: Sequence[str]) -> int:
    code = 0
    for name in bases:
        code = code * len(MEAS_BASES) + MEAS_BASES.index(name)
    return code


def batched_noisy_variant_probabilities(
    subcircuit: Subcircuit,
    spec: NoisyEvalSpec,
    fusion_width: int = 2,
    max_batch: int = 0,
    init_combos: Optional[Sequence[Tuple[str, ...]]] = None,
) -> Tuple[Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray], int]:
    """Every *noisy* variant distribution from shared batched body passes.

    The noisy analogue of :func:`batched_variant_probabilities`: the
    (transpiled, on the device path) measurement-free body is evolved
    once per init batch — prep fragments folded into the initial product
    states, so ``rho = 0`` variants never cost an extra pass — and all
    ``3^O`` basis distributions are derived from the retained states by
    applying only the cheap noisy 1q basis fragments.

    ``method="trajectory"`` runs one noise-free clean pass plus
    ``spec.trajectories`` injection passes per chunk (each a *fixed*
    Pauli pattern, hence one linear map for the whole batch) and mixes
    them with the analytic clean weight exactly like the serial
    :class:`~repro.sim.noise.NoisySimulator`.  ``method="density"``
    evolves the exact channel in one batched density pass.  Trajectory
    injections, basis-fragment injections and shot sampling all draw
    from keyed child RNGs (:func:`~repro.sim.noise.spawn_rng`) whose
    keys encode ``(stage, subcircuit, trajectory, item)`` — results are
    bit-identical regardless of worker count or chunk order.

    Returns ``(probabilities, num_body_passes)`` keyed like
    :func:`evaluate_subcircuit`; on the device path each vector is
    already marginalized to the subcircuit's logical qubits.
    """
    from ..sim.batch import BatchedStatevector
    from ..sim.density import BatchedDensityMatrix
    from ..sim.noise import spawn_rng
    from ..sim.noisy_batch import (
        PAULI_NAMES_1Q,
        apply_readout_error_rows,
        marginalize_rows,
        run_density_body,
        run_trajectory_body,
        sample_injection_pattern,
    )
    from ..sim.sampler import sample_distribution

    if max_batch < 0:
        raise ValueError("max_batch must be >= 0")
    geometry = _compiled_noisy_geometry(subcircuit, spec, fusion_width)
    noise = spec.effective_noise
    gate_noise = noise.error_1q > 0.0 or noise.error_2q > 0.0
    num_meas = len(subcircuit.meas_lines)
    index = subcircuit.index
    seed = spec.seed
    zero_vector = INITIAL_STATES["zero"]
    zero_rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex)
    pauli_1q = [gate_matrix(name) for name in PAULI_NAMES_1Q]

    if init_combos is None:
        init_combos = [
            tuple(combo)
            for combo in itertools.product(
                INIT_LABELS, repeat=len(subcircuit.init_lines)
            )
        ]
    else:
        init_combos = [tuple(combo) for combo in init_combos]

    def density_chunk(combos):
        """One exact-channel pass; returns ``bases -> (B, 2^n)`` rows."""
        members = []
        for labels in combos:
            per_wire = [zero_rho] * geometry.num_wires
            for line_index, label in enumerate(labels):
                fragment = geometry.prep[(label, line_index)]
                per_wire[fragment.wire] = fragment.rho
            members.append(per_wire)
        state = BatchedDensityMatrix.from_product_batch(members)
        run_density_body(geometry.plan, state)
        leaves: Dict[Tuple[str, ...], np.ndarray] = {}

        def emit(state, line_index, bases):
            if line_index == num_meas:
                leaves[bases] = state.probabilities()
                return
            for name in MEAS_BASES:
                fragment = geometry.basis[(name, line_index)]
                branch = state
                for position, gate in enumerate(fragment.gates):
                    if position == 0:
                        branch = state.applied(gate.matrix(), gate.qubits)
                    else:
                        branch.apply_matrix(gate.matrix(), gate.qubits)
                    branch.apply_depolarizing(gate.qubits, noise.error_1q)
                emit(branch, line_index + 1, bases + (name,))

        emit(state, 0, ())
        return leaves, 1

    def trajectory_chunk(combos):
        """Clean pass + T shared-pattern passes, mixed per variant."""
        batch = len(combos)
        codes = [_labels_code(labels) for labels in combos]
        clean_members = []
        for labels in combos:
            per_wire = [zero_vector] * geometry.num_wires
            for line_index, label in enumerate(labels):
                fragment = geometry.prep[(label, line_index)]
                per_wire[fragment.wire] = fragment.vector
            clean_members.append(per_wire)
        clean_state = BatchedStatevector.from_product_batch(clean_members)
        clean_state.apply_fused(geometry.clean_ops)
        clean_leaves: Dict[Tuple[str, ...], np.ndarray] = {}

        def emit_clean(state, line_index, bases):
            if line_index == num_meas:
                clean_leaves[bases] = state.probabilities()
                return
            for name in MEAS_BASES:
                fragment = geometry.basis[(name, line_index)]
                branch = state
                if fragment.gates:
                    branch = state.applied(fragment.matrix, [fragment.wire])
                emit_clean(branch, line_index + 1, bases + (name,))

        emit_clean(clean_state, 0, ())
        passes = 1
        if not gate_noise:
            # The serial simulator's shortcut: no gate noise means the
            # clean pass *is* the estimate (readout applies downstream).
            return clean_leaves, passes

        sums = {
            bases: np.zeros_like(rows) for bases, rows in clean_leaves.items()
        }
        counts = {
            bases: np.zeros(batch, dtype=np.int64) for bases in clean_leaves
        }
        for trajectory in range(spec.trajectories):
            pattern, body_injected = sample_injection_pattern(
                geometry.plan, spawn_rng(seed, 0, index, trajectory)
            )
            members = []
            prep_injected = np.zeros(batch, dtype=bool)
            for row, labels in enumerate(combos):
                per_wire = [zero_vector] * geometry.num_wires
                rng = spawn_rng(seed, 1, index, trajectory, codes[row])
                fired = False
                for line_index, label in enumerate(labels):
                    fragment = geometry.prep[(label, line_index)]
                    vector = zero_vector
                    for gate in fragment.gates:
                        vector = gate.matrix() @ vector
                        if rng.random() < noise.error_1q:
                            vector = pauli_1q[rng.integers(3)] @ vector
                            fired = True
                    per_wire[fragment.wire] = vector
                members.append(per_wire)
                prep_injected[row] = fired
            state = BatchedStatevector.from_product_batch(members)
            run_trajectory_body(geometry.plan, state, pattern)
            passes += 1

            def emit_noisy(state, line_index, bases, code, injected):
                if line_index == num_meas:
                    mask = prep_injected | (body_injected or injected)
                    if mask.any():
                        rows = state.probabilities()
                        sums[bases][mask] += rows[mask]
                        counts[bases][mask] += 1
                    return
                for name in MEAS_BASES:
                    fragment = geometry.basis[(name, line_index)]
                    child = code * len(MEAS_BASES) + MEAS_BASES.index(name)
                    if not fragment.gates:
                        emit_noisy(
                            state, line_index + 1, bases + (name,), child,
                            injected,
                        )
                        continue
                    rng = spawn_rng(
                        seed, 2, index, trajectory, line_index, child
                    )
                    branch = None
                    fired = injected
                    for gate in fragment.gates:
                        if branch is None:
                            branch = state.applied(gate.matrix(), gate.qubits)
                        else:
                            branch.apply_matrix(gate.matrix(), gate.qubits)
                        if rng.random() < noise.error_1q:
                            branch.apply_matrix(
                                pauli_1q[rng.integers(3)], gate.qubits
                            )
                            fired = True
                    emit_noisy(
                        branch, line_index + 1, bases + (name,), child, fired
                    )

            emit_noisy(state, 0, (), 0, False)

        log_prep = np.array(
            [
                sum(
                    geometry.prep[(label, line_index)].log_clean
                    for line_index, label in enumerate(labels)
                )
                for labels in combos
            ]
        )
        leaves: Dict[Tuple[str, ...], np.ndarray] = {}
        for bases, clean_rows in clean_leaves.items():
            log_weight = (
                geometry.plan.log_clean
                + log_prep
                + sum(
                    geometry.basis[(name, line_index)].log_clean
                    for line_index, name in enumerate(bases)
                )
            )
            weight = np.exp(log_weight)[:, None]
            count = counts[bases]
            mixed = clean_rows.copy()
            sampled = count > 0
            if sampled.any():
                mean = sums[bases][sampled] / count[sampled, None]
                mixed[sampled] = (
                    weight[sampled] * clean_rows[sampled]
                    + (1.0 - weight[sampled]) * mean
                )
            leaves[bases] = mixed
        return leaves, passes

    probabilities: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray] = {}
    num_passes = 0
    chunk = max_batch if max_batch else max(1, len(init_combos))
    for start in range(0, len(init_combos), chunk):
        combos = init_combos[start : start + chunk]
        with trace.span(
            "evaluate.noisy_variant_batch",
            {"subcircuit": index, "method": spec.method,
             "members": len(combos)},
        ):
            if spec.method == "density":
                leaves, passes = density_chunk(combos)
            else:
                leaves, passes = trajectory_chunk(combos)
        num_passes += passes
        for bases, rows in leaves.items():
            rows = apply_readout_error_rows(rows, noise.readout)
            code = _bases_code(bases)
            if spec.shots:
                rows = np.stack(
                    [
                        sample_distribution(
                            rows[row],
                            spec.shots,
                            spawn_rng(seed, 3, index, codes_for, code),
                        )
                        for row, codes_for in enumerate(
                            _labels_code(labels) for labels in combos
                        )
                    ]
                )
            if geometry.keep is not None:
                rows = marginalize_rows(
                    rows, geometry.keep, geometry.num_wires
                )
            for row, labels in enumerate(combos):
                probabilities[(labels, bases)] = np.ascontiguousarray(
                    rows[row]
                )
    return probabilities, num_passes


@dataclass
class SubcircuitResult:
    """Raw evaluation results of all physical variants of one subcircuit.

    ``probabilities[(inits, bases)]`` is the 2**width probability vector
    of the corresponding variant (line 0 is the most significant bit).
    ``num_variants`` / ``num_unique_circuits`` record how much of the
    variant space was served by shared physical executions (beyond the
    I/Z sharing already folded into :data:`MEAS_BASES`).  ``mode`` says
    how the vectors were produced (``"per-variant"`` circuit executions
    or ``"batched"`` fused body passes); ``num_body_passes`` counts the
    batched passes (0 on the per-variant path).
    """

    subcircuit: Subcircuit
    probabilities: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray]
    num_variants: int = 0
    num_unique_circuits: int = 0
    mode: str = "per-variant"
    num_body_passes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Variants per physical execution (>= 1; 1.0 means no sharing)."""
        if self.num_unique_circuits <= 0:
            return 1.0
        return self.num_variants / self.num_unique_circuits

    def vector(self, inits: Sequence[str], bases: Sequence[str]) -> np.ndarray:
        return self.probabilities[(tuple(inits), tuple(bases))]


def evaluate_subcircuit(
    subcircuit: Subcircuit,
    backend: Optional[Backend] = None,
    sim_batch: int = 0,
    fusion_width: int = 2,
    noisy: Optional[NoisyEvalSpec] = None,
) -> SubcircuitResult:
    """Run every physical variant of ``subcircuit`` through ``backend``.

    The default backend is the exact statevector simulator (what the paper
    uses for its runtime studies, §5.1); pass a noisy device's ``run`` for
    hardware emulation.  Variants whose physical circuits coincide (equal
    structural keys) are executed once and share the result vector; the
    achieved ratio is reported on the returned :class:`SubcircuitResult`.

    With ``sim_batch > 0`` (exact backend only) the batched fast path
    replaces per-variant execution: the fused body runs once per init
    batch of at most ``sim_batch`` members and all measurement bases are
    derived from the retained states — see
    :func:`batched_variant_probabilities`.  With a :class:`NoisyEvalSpec`
    the noisy batched engine runs instead
    (:func:`batched_noisy_variant_probabilities`, mode ``batched-noisy``)
    — ``noisy`` requires ``sim_batch > 0`` and excludes ``backend``.
    """
    if sim_batch < 0:
        raise ValueError("sim_batch must be >= 0")
    if noisy is not None:
        if backend is not None:
            raise ValueError("noisy evaluation excludes a custom backend")
        if not sim_batch:
            raise ValueError("noisy batched evaluation requires sim_batch > 0")
        probabilities, num_passes = batched_noisy_variant_probabilities(
            subcircuit, noisy, fusion_width=fusion_width, max_batch=sim_batch
        )
        return SubcircuitResult(
            subcircuit=subcircuit,
            probabilities=probabilities,
            num_variants=len(probabilities),
            num_unique_circuits=len(probabilities),
            mode="batched-noisy",
            num_body_passes=num_passes,
        )
    if sim_batch:
        if backend is not None:
            raise ValueError(
                "sim_batch requires the exact statevector backend "
                "(a custom backend evaluates whole circuits)"
            )
        probabilities, num_passes = batched_variant_probabilities(
            subcircuit, fusion_width=fusion_width, max_batch=sim_batch
        )
        return SubcircuitResult(
            subcircuit=subcircuit,
            probabilities=probabilities,
            num_variants=len(probabilities),
            num_unique_circuits=len(probabilities),
            mode="batched",
            num_body_passes=num_passes,
        )
    backend = backend or _statevector_backend
    factory = VariantCircuitFactory(subcircuit)
    probabilities = {}
    executed: Dict[Tuple, np.ndarray] = {}
    num_variants = 0
    for variant in generate_variants(subcircuit):
        key = factory.structural_key(variant)
        if key not in executed:
            vector = np.asarray(backend(factory.circuit(variant)), dtype=float)
            if vector.size != 1 << subcircuit.width:
                raise ValueError(
                    f"backend returned vector of size {vector.size} for a "
                    f"{subcircuit.width}-qubit variant"
                )
            executed[key] = vector
        probabilities[(variant.inits, variant.bases)] = executed[key]
        num_variants += 1
    return SubcircuitResult(
        subcircuit=subcircuit,
        probabilities=probabilities,
        num_variants=num_variants,
        num_unique_circuits=len(executed),
    )
