"""Enumerate and evaluate the physical variants of a subcircuit.

Per Fig. 3, the upstream side of every cut is measured in one of the Pauli
bases {I, X, Y, Z} and the downstream side is initialized in one of
{|0>, |1>, |+>, |+i>}.  The I and Z measurements share the same physical
circuit, so a subcircuit with ``O`` measurement lines and ``rho``
initialization lines has ``3^O * 4^rho`` distinct physical variants — the
circuits a quantum device actually runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..circuits.gates import gate_matrix
from ..sim.statevector import INITIAL_STATES, simulate_probabilities
from .cutter import Subcircuit

__all__ = [
    "MEAS_BASES",
    "INIT_LABELS",
    "SubcircuitVariant",
    "generate_variants",
    "variant_circuit",
    "VariantCircuitFactory",
    "circuit_fingerprint",
    "batched_variant_probabilities",
    "evaluate_subcircuit",
    "SubcircuitResult",
    "num_physical_variants",
]

#: Physical measurement bases (I reuses the Z circuit during attribution).
MEAS_BASES: Tuple[str, ...] = ("Z", "X", "Y")
#: Downstream initialization states, in the order used by the term transform.
INIT_LABELS: Tuple[str, ...] = ("zero", "one", "plus", "plus_i")

_PREP_GATES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "zero": (),
    "one": (("x",),),
    "plus": (("h",),),
    "plus_i": (("h",), ("s",)),
}

_BASIS_GATES: Dict[str, Tuple[Tuple[str, ...], ...]] = {
    "Z": (),
    "X": (("h",),),
    "Y": (("sdg",), ("h",)),
}

#: The 2x2 unitary each non-Z basis rotation applies (gate order folded:
#: Y measures through sdg then h, i.e. ``H @ Sdg`` as one matrix).
_BASIS_MATRICES: Dict[str, np.ndarray] = {
    "X": gate_matrix("h"),
    "Y": gate_matrix("h") @ gate_matrix("sdg"),
}


@dataclass(frozen=True)
class SubcircuitVariant:
    """One physical variant: init labels and measurement bases per line."""

    inits: Tuple[str, ...]
    bases: Tuple[str, ...]


def num_physical_variants(subcircuit: Subcircuit) -> int:
    """``3^O * 4^rho`` — the device workload per subcircuit."""
    return (len(MEAS_BASES) ** len(subcircuit.meas_lines)) * (
        len(INIT_LABELS) ** len(subcircuit.init_lines)
    )


def generate_variants(subcircuit: Subcircuit) -> List[SubcircuitVariant]:
    """All physical variants, inits varying slowest (deterministic order)."""
    init_choices = itertools.product(
        INIT_LABELS, repeat=len(subcircuit.init_lines)
    )
    variants = []
    for inits in init_choices:
        for bases in itertools.product(MEAS_BASES, repeat=len(subcircuit.meas_lines)):
            variants.append(SubcircuitVariant(inits=tuple(inits), bases=tuple(bases)))
    return variants


class VariantCircuitFactory:
    """Emit variant circuits without re-walking the shared body per variant.

    ``variant_circuit`` used to rebuild the whole gate list — body
    included — for every one of the ``3^O * 4^rho`` variants.  The
    factory hoists the (already validated) body gate tuple once and
    materializes each variant as prep fragment + body + basis fragment,
    so per-variant cost is proportional to the *fragment* size.

    It also owns the **structural key**: the cheap hashable identity
    ``(width, body gates, init/meas line positions, inits, bases)``.
    Two variants — of the same or of different subcircuits — with equal
    structural keys produce identical physical circuits, so every dedup
    path can key on it instead of fingerprinting full gate lists.
    """

    def __init__(self, subcircuit: Subcircuit):
        self.subcircuit = subcircuit
        self._width = subcircuit.width
        self._body = subcircuit.circuit.gates
        self._init_positions = tuple(
            line.line for line in subcircuit.init_lines
        )
        self._meas_positions = tuple(
            line.line for line in subcircuit.meas_lines
        )
        self._prep_fragments = {
            (label, position): tuple(
                Gate(spec[0], (position,)) for spec in _PREP_GATES[label]
            )
            for label in INIT_LABELS
            for position in self._init_positions
        }
        self._basis_fragments = {
            (basis, position): tuple(
                Gate(spec[0], (position,)) for spec in _BASIS_GATES[basis]
            )
            for basis in MEAS_BASES
            for position in self._meas_positions
        }
        #: Shared-body identity; equal body keys mean *every* variant of
        #: the two subcircuits coincides pairwise.
        self.body_key: Tuple = (
            self._width,
            self._body,
            self._init_positions,
            self._meas_positions,
        )

    def _check_shape(self, variant: SubcircuitVariant) -> None:
        if len(variant.inits) != len(self._init_positions):
            raise ValueError(
                f"variant has {len(variant.inits)} init labels, subcircuit "
                f"has {len(self._init_positions)} init lines"
            )
        if len(variant.bases) != len(self._meas_positions):
            raise ValueError(
                f"variant has {len(variant.bases)} bases, subcircuit has "
                f"{len(self._meas_positions)} measurement lines"
            )

    def circuit(self, variant: SubcircuitVariant) -> QuantumCircuit:
        """The runnable circuit: state prep + body + basis rotations."""
        self._check_shape(variant)
        gates: List[Gate] = []
        for label, position in zip(variant.inits, self._init_positions):
            gates.extend(self._prep_fragments[(label, position)])
        gates.extend(self._body)
        for basis, position in zip(variant.bases, self._meas_positions):
            gates.extend(self._basis_fragments[(basis, position)])
        return QuantumCircuit._unchecked(self._width, gates)

    def structural_key(self, variant: SubcircuitVariant) -> Tuple:
        """Hashable physical-circuit identity, O(1) per variant."""
        self._check_shape(variant)
        return (self.body_key, variant.inits, variant.bases)


def variant_circuit(
    subcircuit: Subcircuit, variant: SubcircuitVariant
) -> QuantumCircuit:
    """The runnable circuit: state prep + body + basis rotations."""
    return VariantCircuitFactory(subcircuit).circuit(variant)


def circuit_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Hashable identity of a physical circuit (width + exact gate list).

    Two variants with equal fingerprints produce identical output
    distributions on any backend, so one execution can serve both; every
    dedup path (per-subcircuit and batched) keys on this one function.
    """
    return (circuit.num_qubits, circuit.gates)


#: An evaluation backend maps a runnable circuit to a probability vector.
Backend = Callable[[QuantumCircuit], np.ndarray]


def _statevector_backend(circuit: QuantumCircuit) -> np.ndarray:
    return simulate_probabilities(circuit)


# ----------------------------------------------------------------------
# Batched evaluation: one fused body pass per init batch
# ----------------------------------------------------------------------

def batched_variant_probabilities(
    subcircuit: Subcircuit,
    fusion_width: int = 2,
    max_batch: int = 0,
    init_combos: Optional[Sequence[Tuple[str, ...]]] = None,
) -> Tuple[Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray], int]:
    """Every variant distribution from a handful of fused batched passes.

    Instead of ``3^O * 4^rho`` full simulations, the measurement-free
    body is simulated **once per init batch**: the ``4^rho`` initial
    product states are stacked on the batch axis of a
    :class:`~repro.sim.batch.BatchedStatevector`, the body is applied as
    fused <= ``fusion_width``-qubit unitaries, and all ``3^O``
    measurement-basis distributions are derived from the retained final
    states by applying only the cheap single-qubit basis rotations
    (sharing every common basis prefix).

    ``max_batch`` caps the members per pass (memory is
    ``members * 2^width * 16`` bytes per live tensor); ``0`` runs the
    whole init space in one pass.  ``init_combos`` restricts the sweep to
    a subset of init label tuples — the unit a
    :class:`~repro.core.executor.VariantExecutor` ships to pool workers.

    Returns ``(probabilities, num_body_passes)`` with the same
    ``(inits, bases) -> vector`` keying as :func:`evaluate_subcircuit`.
    """
    from ..sim.batch import BatchedStatevector, fuse_gates

    if max_batch < 0:
        raise ValueError("max_batch must be >= 0")
    width = subcircuit.width
    init_positions = [line.line for line in subcircuit.init_lines]
    meas_positions = [line.line for line in subcircuit.meas_lines]
    if init_combos is None:
        init_combos = [
            tuple(combo)
            for combo in itertools.product(
                INIT_LABELS, repeat=len(init_positions)
            )
        ]
    else:
        init_combos = [tuple(combo) for combo in init_combos]
    ops = fuse_gates(subcircuit.circuit, fusion_width)

    probabilities: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray] = {}
    zero = INITIAL_STATES["zero"]

    def emit(
        state: "BatchedStatevector",
        line_index: int,
        bases: Tuple[str, ...],
        combos: Sequence[Tuple[str, ...]],
    ) -> None:
        """Depth-first over measurement lines, sharing basis prefixes."""
        if line_index == len(meas_positions):
            vectors = state.probabilities()
            for row, inits in enumerate(combos):
                probabilities[(inits, bases)] = vectors[row]
            return
        position = meas_positions[line_index]
        for basis in MEAS_BASES:
            if basis == "Z":
                rotated = state
            else:
                rotated = state.applied(_BASIS_MATRICES[basis], [position])
            emit(rotated, line_index + 1, bases + (basis,), combos)

    chunk = max_batch if max_batch else len(init_combos)
    num_passes = 0
    for start in range(0, len(init_combos), chunk):
        combos = init_combos[start : start + chunk]
        members = []
        for labels in combos:
            per_qubit = [zero] * width
            for label, position in zip(labels, init_positions):
                per_qubit[position] = INITIAL_STATES[label]
            members.append(per_qubit)
        state = BatchedStatevector.from_product_batch(members)
        state.apply_fused(ops)
        num_passes += 1
        emit(state, 0, (), combos)
    return probabilities, num_passes


@dataclass
class SubcircuitResult:
    """Raw evaluation results of all physical variants of one subcircuit.

    ``probabilities[(inits, bases)]`` is the 2**width probability vector
    of the corresponding variant (line 0 is the most significant bit).
    ``num_variants`` / ``num_unique_circuits`` record how much of the
    variant space was served by shared physical executions (beyond the
    I/Z sharing already folded into :data:`MEAS_BASES`).  ``mode`` says
    how the vectors were produced (``"per-variant"`` circuit executions
    or ``"batched"`` fused body passes); ``num_body_passes`` counts the
    batched passes (0 on the per-variant path).
    """

    subcircuit: Subcircuit
    probabilities: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], np.ndarray]
    num_variants: int = 0
    num_unique_circuits: int = 0
    mode: str = "per-variant"
    num_body_passes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Variants per physical execution (>= 1; 1.0 means no sharing)."""
        if self.num_unique_circuits <= 0:
            return 1.0
        return self.num_variants / self.num_unique_circuits

    def vector(self, inits: Sequence[str], bases: Sequence[str]) -> np.ndarray:
        return self.probabilities[(tuple(inits), tuple(bases))]


def evaluate_subcircuit(
    subcircuit: Subcircuit,
    backend: Optional[Backend] = None,
    sim_batch: int = 0,
    fusion_width: int = 2,
) -> SubcircuitResult:
    """Run every physical variant of ``subcircuit`` through ``backend``.

    The default backend is the exact statevector simulator (what the paper
    uses for its runtime studies, §5.1); pass a noisy device's ``run`` for
    hardware emulation.  Variants whose physical circuits coincide (equal
    structural keys) are executed once and share the result vector; the
    achieved ratio is reported on the returned :class:`SubcircuitResult`.

    With ``sim_batch > 0`` (exact backend only) the batched fast path
    replaces per-variant execution: the fused body runs once per init
    batch of at most ``sim_batch`` members and all measurement bases are
    derived from the retained states — see
    :func:`batched_variant_probabilities`.
    """
    if sim_batch < 0:
        raise ValueError("sim_batch must be >= 0")
    if sim_batch:
        if backend is not None:
            raise ValueError(
                "sim_batch requires the exact statevector backend "
                "(a custom backend evaluates whole circuits)"
            )
        probabilities, num_passes = batched_variant_probabilities(
            subcircuit, fusion_width=fusion_width, max_batch=sim_batch
        )
        return SubcircuitResult(
            subcircuit=subcircuit,
            probabilities=probabilities,
            num_variants=len(probabilities),
            num_unique_circuits=len(probabilities),
            mode="batched",
            num_body_passes=num_passes,
        )
    backend = backend or _statevector_backend
    factory = VariantCircuitFactory(subcircuit)
    probabilities = {}
    executed: Dict[Tuple, np.ndarray] = {}
    num_variants = 0
    for variant in generate_variants(subcircuit):
        key = factory.structural_key(variant)
        if key not in executed:
            vector = np.asarray(backend(factory.circuit(variant)), dtype=float)
            if vector.size != 1 << subcircuit.width:
                raise ValueError(
                    f"backend returned vector of size {vector.size} for a "
                    f"{subcircuit.width}-qubit variant"
                )
            executed[key] = vector
        probabilities[(variant.inits, variant.bases)] = executed[key]
        num_variants += 1
    return SubcircuitResult(
        subcircuit=subcircuit,
        probabilities=probabilities,
        num_variants=num_variants,
        num_unique_circuits=len(executed),
    )
