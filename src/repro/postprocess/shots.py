"""Shot-level DD evaluation and shot-budget estimation.

Two pieces the paper describes but the precomputed-tensor path glosses
over:

* :class:`ShotBasedTensorProvider` implements Algorithm 1's inner loop
  literally: each DD recursion *re-runs* the subcircuit variants with a
  finite number of shots and "groups shots with common merged qubits
  together" — the merged representation is built from counts, never from
  a full 2^f vector.  This is the execution mode a real deployment uses.

* :func:`estimate_required_shots` answers §3.2's sufficiency question
  ("one is also expected to take sufficient shots for the subcircuits"):
  given a target L-infinity reconstruction error, how many shots must
  each variant take?  The bound follows from the reconstruction being a
  sum of 4^K products of (at most unit-norm) attributed values, each
  estimated with multinomial standard error ~ sqrt(1/shots), scaled by
  the per-cut expansion factors.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit, Subcircuit
from ..cutting.variants import INIT_LABELS, MEAS_BASES, SubcircuitVariant, variant_circuit
from ..sim.sampler import sample_counts
from ..sim.statevector import simulate_probabilities
from .attribution import ATTRIBUTION_BASES, TermTensor, transform_attributed_to_terms
from .plan import CachingTensorProvider, Role

__all__ = ["ShotBasedTensorProvider", "estimate_required_shots"]

_SIGNS = {
    "I": np.array([1.0, 1.0]),
    "X": np.array([1.0, -1.0]),
    "Y": np.array([1.0, -1.0]),
    "Z": np.array([1.0, -1.0]),
}


class ShotBasedTensorProvider(CachingTensorProvider):
    """DD tensor provider that samples shots per recursion (Algorithm 1).

    Parameters
    ----------
    cut_circuit:
        The cut to evaluate.
    shots:
        Shots per physical variant per recursion (the paper used up to
        8192 per subcircuit on hardware).
    backend:
        Optional ``circuit -> probability vector`` callable giving the
        *true* variant distribution shots are drawn from; defaults to
        exact statevector simulation.  (Devices already add their own
        shot noise — pass ``device.backend(shots=...)`` there and keep
        this provider's ``shots`` for the merging path only.)
    workers:
        When > 1, the first recursion evaluates all physical variants as
        one batch through a
        :class:`~repro.core.executor.VariantExecutor` fanned over this
        many processes (instead of lazily, one circuit at a time).
    cache:
        Reuse merged shot tensors across bins/recursions whose role
        signature matches (Algorithm 1's "group shots with common merged
        qubits together").  ``False`` redraws shots on every collapse.
    sim_batch:
        With the default exact backend, fill each subcircuit's variant
        distributions from batched fused body passes (at most
        ``sim_batch`` init states per pass) instead of simulating one
        circuit per variant — the shots are then sampled from the
        basis-rotated retained states.  ``0`` disables; ignored when a
        custom ``backend`` is given.
    fusion_width:
        Max fused-unitary width for the batched fill's fusion pass.
    """

    def __init__(
        self,
        cut_circuit: CutCircuit,
        shots: int = 8192,
        backend=None,
        seed: Optional[int] = None,
        workers: int = 1,
        cache: bool = True,
        cache_limit: int = 512,
        sim_batch: int = 0,
        fusion_width: int = 2,
    ):
        if shots <= 0:
            raise ValueError("shots must be positive")
        if sim_batch < 0:
            raise ValueError("sim_batch must be >= 0")
        super().__init__(cut_circuit, cache=cache, cache_limit=cache_limit)
        self.shots = int(shots)
        self._exact_backend = backend is None
        self.backend = backend or simulate_probabilities
        self.workers = int(workers)
        self.sim_batch = int(sim_batch) if backend is None else 0
        self.fusion_width = int(fusion_width)
        self._rng = np.random.default_rng(seed)
        # Variant distributions are fixed physics: cache them so each
        # recursion redraws *shots*, not re-simulations.
        self._distribution_cache: Dict[Tuple[int, Tuple[str, ...], Tuple[str, ...]], np.ndarray] = {}
        self._prefilled = False

    # ------------------------------------------------------------------
    def collapsed(self, roles: Dict[int, Role]) -> List[Tuple[TermTensor, List[int]]]:
        self._prefill()
        return super().collapsed(roles)

    def _collapse_subcircuit(
        self, subcircuit: Subcircuit, roles: Dict[int, Role]
    ) -> Tuple[TermTensor, List[int]]:
        return self._evaluate_merged(subcircuit, roles)

    def _prefill(self) -> None:
        """Populate the distribution cache as one deduplicated parallel
        batch (only worthwhile when workers > 1)."""
        if self._prefilled or self.workers <= 1:
            return
        # Local import: repro.core imports repro.postprocess at package
        # initialization time.
        from ..core.executor import VariantExecutor

        executor = VariantExecutor(
            backend=None if self._exact_backend else self.backend,
            workers=self.workers,
            sim_batch=self.sim_batch,
            fusion_width=self.fusion_width,
        )
        for result in executor.run(self.cut_circuit.subcircuits):
            index = result.subcircuit.index
            for (inits, bases), vector in result.probabilities.items():
                self._distribution_cache[(index, inits, bases)] = vector
        self._prefilled = True

    # ------------------------------------------------------------------
    def _variant_distribution(
        self, subcircuit: Subcircuit, variant: SubcircuitVariant
    ) -> np.ndarray:
        key = (subcircuit.index, variant.inits, variant.bases)
        if key not in self._distribution_cache:
            if self.sim_batch:
                # One batched fill per subcircuit: every (inits, bases)
                # distribution lands at once, so a missing key means the
                # subcircuit has not been filled yet.
                from ..cutting.variants import batched_variant_probabilities

                probabilities, _ = batched_variant_probabilities(
                    subcircuit,
                    fusion_width=self.fusion_width,
                    max_batch=self.sim_batch,
                )
                for (inits, bases), vector in probabilities.items():
                    self._distribution_cache[
                        (subcircuit.index, inits, bases)
                    ] = vector
                return self._distribution_cache[key]
            circuit = variant_circuit(subcircuit, variant)
            self._distribution_cache[key] = np.asarray(
                self.backend(circuit), dtype=float
            )
        return self._distribution_cache[key]

    def _evaluate_merged(
        self, subcircuit: Subcircuit, roles: Dict[int, Role]
    ) -> Tuple[TermTensor, List[int]]:
        output_lines = subcircuit.output_lines
        meas_lines = subcircuit.meas_lines
        init_lines = subcircuit.init_lines
        num_meas = len(meas_lines)
        num_init = len(init_lines)
        active_positions = [
            position
            for position, line in enumerate(output_lines)
            if roles[line.wire][0] == "active"
        ]
        active_wires = [output_lines[p].wire for p in active_positions]
        kept = 1 << len(active_wires)

        shape = (4,) * (num_init + num_meas) + (kept,)
        attributed = np.zeros(shape)
        for init_combo in itertools.product(range(4), repeat=num_init):
            init_labels = tuple(INIT_LABELS[i] for i in init_combo)
            merged_by_physical: Dict[Tuple[str, ...], np.ndarray] = {}
            for bases_physical in itertools.product(MEAS_BASES, repeat=num_meas):
                variant = SubcircuitVariant(inits=init_labels, bases=bases_physical)
                distribution = self._variant_distribution(subcircuit, variant)
                counts = sample_counts(distribution, self.shots, self._rng)
                merged_by_physical[bases_physical] = self._merge_counts(
                    subcircuit, counts, roles, active_positions
                )
            for basis_combo in itertools.product(range(4), repeat=num_meas):
                bases = tuple(ATTRIBUTION_BASES[b] for b in basis_combo)
                physical = tuple("Z" if b == "I" else b for b in bases)
                tensor = merged_by_physical[physical]
                for axis in reversed(range(num_meas)):
                    tensor = np.tensordot(
                        tensor, _SIGNS[bases[axis]], axes=([axis], [0])
                    )
                attributed[init_combo + basis_combo] = tensor.reshape(-1)

        axis_cut_ids = [line.init_cut for line in init_lines] + [
            line.meas_cut for line in meas_lines
        ]
        term_tensor = transform_attributed_to_terms(
            attributed,
            num_init=num_init,
            num_meas=num_meas,
            axis_cut_ids=axis_cut_ids,
            num_effective=len(active_wires),
            subcircuit_index=subcircuit.index,
        )
        return term_tensor, active_wires

    def _merge_counts(
        self,
        subcircuit: Subcircuit,
        counts: np.ndarray,
        roles: Dict[int, Role],
        active_positions: List[int],
    ) -> np.ndarray:
        """Group shots: meas bits kept, active bits kept, fixed selected,
        merged summed — Algorithm 1's shot attribution step."""
        output_lines = subcircuit.output_lines
        tensor = counts.reshape((2,) * subcircuit.width).astype(float)
        # Walk output axes from the back so axis indices stay valid; the
        # measurement axes (never output lines) are untouched.
        for position in reversed(range(len(output_lines))):
            line = output_lines[position]
            role = roles[line.wire]
            axis = line.line
            if role[0] == "merged":
                tensor = tensor.sum(axis=axis, keepdims=True)
            elif role[0] == "fixed":
                tensor = np.take(tensor, [int(role[1])], axis=axis)
        # Now flatten: meas axes (line order) first, active axes after.
        meas_axes = [line.line for line in subcircuit.meas_lines]
        active_axes = [output_lines[p].line for p in active_positions]
        ordered = np.transpose(
            tensor,
            axes=meas_axes
            + active_axes
            + [
                axis
                for axis in range(subcircuit.width)
                if axis not in meas_axes and axis not in active_axes
            ],
        )
        flattened = ordered.reshape(
            (2,) * len(meas_axes) + (1 << len(active_axes),)
        )
        return flattened / self.shots


def estimate_required_shots(
    cut_circuit: CutCircuit,
    target_error: float = 0.01,
    confidence_sigmas: float = 2.0,
) -> int:
    """Shots per variant for a target reconstruction error (§3.2).

    Each reconstructed probability is ``(1/2^K) * sum over 4^K terms`` of
    products of attributed estimates.  An attributed value is a signed sum
    of multinomial frequencies, so its standard error is at most
    ``c / sqrt(shots)`` with ``c <= 2`` (the |+>/|+i> terms weigh raw
    frequencies by up to 2).  First-order error propagation over the term
    sum gives ``error <= confidence_sigmas * 4^K/2^K * c / sqrt(shots)``,
    which this function inverts.  The bound is loose (it ignores the
    cancellation that makes real reconstructions far more accurate) but
    gives the right scaling in K — the paper's observation that more cuts
    demand more shots.
    """
    if target_error <= 0:
        raise ValueError("target_error must be positive")
    num_cuts = cut_circuit.num_cuts
    amplification = (4.0**num_cuts) / (2.0**num_cuts)
    per_term_constant = 2.0
    shots = (confidence_sigmas * amplification * per_term_constant / target_error) ** 2
    return max(1, int(math.ceil(shots)))
