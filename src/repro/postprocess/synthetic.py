"""Synthetic subcircuit outputs for beyond-simulation-limit studies.

The paper's Fig. 10 benchmarks DD postprocessing on 30-100 qubit circuits
— far past what any backend can evaluate — by substituting synthetic
distributions for the subcircuit outputs (§5.1: "we used uniform
distributions as the subcircuit output to study the runtime").

:class:`RandomTensorProvider` implements the DD
:class:`~repro.postprocess.dd.TensorProvider` protocol without ever
materializing a subcircuit's full ``2^f`` output: for each physical
variant it draws (or fixes to uniform) the *merged* distribution over the
cut-measure bits and the currently-active output bits only, then runs the
exact same attribution + term-transform code path as real evaluations.
Reconstruction cost and memory therefore match a real DD recursion at the
same definition.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit
from .attribution import ATTRIBUTION_BASES, TermTensor, transform_attributed_to_terms
from .plan import CachingTensorProvider, Role

__all__ = ["RandomTensorProvider"]

_SIGNS = {
    "I": np.array([1.0, 1.0]),
    "X": np.array([1.0, -1.0]),
    "Y": np.array([1.0, -1.0]),
    "Z": np.array([1.0, -1.0]),
}


class RandomTensorProvider(CachingTensorProvider):
    """DD tensor provider backed by synthetic subcircuit outputs.

    Parameters
    ----------
    cut_circuit:
        The structural cut (subcircuits are never executed).
    distribution:
        ``"random"`` (default) draws a fresh positive random distribution
        per variant; ``"uniform"`` uses exactly uniform outputs as in the
        paper's Fig. 10 protocol.  Uniform outputs make every non-(I, Z)
        attributed term exactly zero, so benchmarks wanting to exercise
        the full 4^K term space should use ``"random"``.
    cache:
        Off by default: fresh synthetic draws per collapse match the
        seed protocol.  Benchmarks studying the collapse cache enable it
        to make the synthetic provider behave like a real one (the same
        role signature then always yields the same tensor).
    """

    def __init__(
        self,
        cut_circuit: CutCircuit,
        seed: int = 0,
        distribution: str = "random",
        cache: bool = False,
        cache_limit: int = 512,
    ):
        if distribution not in ("random", "uniform"):
            raise ValueError(f"unknown distribution {distribution!r}")
        super().__init__(cut_circuit, cache=cache, cache_limit=cache_limit)
        self.distribution = distribution
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _collapse_subcircuit(self, subcircuit, roles: Dict[int, Role]):
        active_wires = [
            line.wire
            for line in subcircuit.output_lines
            if roles[line.wire][0] == "active"
        ]
        fixed_count = sum(
            1
            for line in subcircuit.output_lines
            if roles[line.wire][0] == "fixed"
        )
        tensor = self._synthesize(subcircuit, len(active_wires), fixed_count)
        return tensor, active_wires

    # ------------------------------------------------------------------
    def _synthesize(self, subcircuit, num_active: int, num_fixed: int) -> TermTensor:
        num_init = len(subcircuit.init_lines)
        num_meas = len(subcircuit.meas_lines)
        kept = 1 << num_active
        tensor_bytes = (4 ** (num_init + num_meas)) * kept * 8
        if tensor_bytes > 4 * 1024**3:
            raise MemoryError(
                f"subcircuit {subcircuit.index} term tensor would need "
                f"{tensor_bytes / 1024**3:.0f} GiB "
                f"(4^{num_init + num_meas} terms x 2^{num_active} active "
                "bins); lower the definition, spread active qubits across "
                "subcircuits, or cut with fewer cuts per subcircuit"
            )
        # Fixing a qubit keeps roughly half its shot mass per fixed bit.
        mass = 0.5**num_fixed

        def merged_variant() -> np.ndarray:
            """Distribution over (meas bits, active bits), summing to mass."""
            size = (1 << num_meas) * kept
            if self.distribution == "uniform":
                flat = np.full(size, mass / size)
            else:
                flat = self._rng.random(size)
                flat *= mass / flat.sum()
            return flat.reshape((2,) * num_meas + (kept,))

        shape = (4,) * (num_init + num_meas) + (kept,)
        attributed = np.zeros(shape)
        # Physical variants: I and Z share a circuit, so draw per physical
        # basis combo and reuse for the I/Z attribution pair.
        for init_combo in itertools.product(range(4), repeat=num_init):
            physical: Dict[Tuple[int, ...], np.ndarray] = {}
            for basis_combo in itertools.product(range(4), repeat=num_meas):
                bases = tuple(ATTRIBUTION_BASES[b] for b in basis_combo)
                key = tuple(3 if b == 0 else b for b in basis_combo)  # I -> Z
                if key not in physical:
                    physical[key] = merged_variant()
                tensor = physical[key]
                for axis in reversed(range(num_meas)):
                    tensor = np.tensordot(
                        tensor, _SIGNS[bases[axis]], axes=([axis], [0])
                    )
                attributed[init_combo + basis_combo] = tensor.reshape(-1)

        axis_cut_ids = [line.init_cut for line in subcircuit.init_lines] + [
            line.meas_cut for line in subcircuit.meas_lines
        ]
        return transform_attributed_to_terms(
            attributed,
            num_init=num_init,
            num_meas=num_meas,
            axis_cut_ids=axis_cut_ids,
            num_effective=num_active,
            subcircuit_index=subcircuit.index,
        )
