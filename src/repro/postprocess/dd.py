"""Dynamic-definition (DD) query — paper §4.3, Algorithm 1.

DD reconstructs a *binned* view of the uncut distribution: a chosen subset
of qubits is ``active`` (their states resolved), the rest are ``merged``
(probabilities summed per bin).  Recursions zoom into the highest-
probability bin by fixing its active qubits (``zoomed``) and activating a
fresh batch of merged qubits, so solution states of sparse circuits are
located in O(n) recursions and dense distributions can be sampled at any
definition without ever storing the full 2**n vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit
from ..cutting.variants import SubcircuitResult
from ..utils import permute_qubits
from .attribution import TermTensor, build_term_tensor
from .engine import ContractionEngine
from .reconstruct import binned_tensor

__all__ = [
    "Bin",
    "DDRecursion",
    "TensorProvider",
    "PrecomputedTensorProvider",
    "DynamicDefinitionQuery",
]

Role = Tuple  # ("active",) | ("merged",) | ("fixed", bit)


@dataclass
class Bin:
    """One probability bin: fixed (zoomed) qubits + one active-qubit state."""

    fixed: Dict[int, int]
    active: Tuple[int, ...]
    index: int
    probability: float
    recursion: int
    zoomed: bool = False  # True once a later recursion refined this bin

    @property
    def assignment(self) -> Dict[int, int]:
        """All resolved qubits: fixed plus this bin's active-qubit bits."""
        resolved = dict(self.fixed)
        width = len(self.active)
        for position, wire in enumerate(self.active):
            resolved[wire] = (self.index >> (width - 1 - position)) & 1
        return resolved

    def merged_wires(self, num_qubits: int) -> List[int]:
        resolved = self.assignment
        return [w for w in range(num_qubits) if w not in resolved]


@dataclass
class DDRecursion:
    """The output of one DD recursion (one reconstruction pass)."""

    index: int
    fixed: Dict[int, int]
    active: Tuple[int, ...]
    probabilities: np.ndarray
    elapsed_seconds: float
    parent_bin: Optional[Bin] = None


class TensorProvider(Protocol):
    """Supplies collapsed term tensors for a DD qubit-role spec."""

    @property
    def num_qubits(self) -> int: ...

    @property
    def num_cuts(self) -> int: ...

    def collapsed(
        self, roles: Dict[int, Role]
    ) -> List[Tuple[TermTensor, List[int]]]: ...


class PrecomputedTensorProvider:
    """Default provider: collapse fully-evaluated subcircuit term tensors."""

    def __init__(
        self,
        cut_circuit: CutCircuit,
        results: Optional[Sequence[SubcircuitResult]] = None,
        tensors: Optional[Sequence[TermTensor]] = None,
    ):
        self.cut_circuit = cut_circuit
        if tensors is None:
            if results is None:
                raise ValueError("provide subcircuit results or term tensors")
            tensors = [build_term_tensor(result) for result in results]
        self.tensors = sorted(tensors, key=lambda t: t.subcircuit_index)

    @property
    def num_qubits(self) -> int:
        return self.cut_circuit.circuit.num_qubits

    @property
    def num_cuts(self) -> int:
        return self.cut_circuit.num_cuts

    def collapsed(self, roles: Dict[int, Role]):
        return [
            binned_tensor(tensor, self.cut_circuit.subcircuits[i], roles)
            for i, tensor in enumerate(self.tensors)
        ]


class DynamicDefinitionQuery:
    """Algorithm 1: recursive zoom-in over probability bins."""

    def __init__(
        self,
        provider: TensorProvider,
        max_active_qubits: int,
        active_order: Optional[Sequence[int]] = None,
        engine: Optional[ContractionEngine] = None,
    ):
        if max_active_qubits < 1:
            raise ValueError("max_active_qubits must be positive")
        self.provider = provider
        self.engine = engine or ContractionEngine(strategy="auto")
        self.max_active_qubits = int(max_active_qubits)
        order = (
            list(range(provider.num_qubits))
            if active_order is None
            else list(active_order)
        )
        if sorted(order) != list(range(provider.num_qubits)):
            raise ValueError("active_order must be a permutation of all wires")
        self.active_order = order
        self.bins: List[Bin] = []
        self.recursions: List[DDRecursion] = []

    # ------------------------------------------------------------------
    def run(self, max_recursions: int) -> List[DDRecursion]:
        """Run up to ``max_recursions`` recursions (Algorithm 1 loop)."""
        for _ in range(max_recursions):
            if self.recursions and self._choose_bin() is None:
                break  # nothing left to zoom into
            self.step()
        return self.recursions

    def step(self) -> DDRecursion:
        """One DD recursion: choose a bin, zoom, reconstruct, re-bin."""
        import time

        if not self.recursions:
            fixed: Dict[int, int] = {}
            parent: Optional[Bin] = None
        else:
            parent = self._choose_bin()
            if parent is None:
                raise RuntimeError("no expandable bin remains")
            fixed = parent.assignment
            parent.zoomed = True
        active = self._next_active(fixed)
        if not active:
            raise RuntimeError("no merged qubit remains to activate")
        roles: Dict[int, Role] = {}
        for wire in range(self.provider.num_qubits):
            if wire in fixed:
                roles[wire] = ("fixed", fixed[wire])
            elif wire in active:
                roles[wire] = ("active",)
            else:
                roles[wire] = ("merged",)
        began = time.perf_counter()
        probabilities = self._reconstruct(roles, active)
        elapsed = time.perf_counter() - began
        recursion = DDRecursion(
            index=len(self.recursions),
            fixed=fixed,
            active=tuple(active),
            probabilities=probabilities,
            elapsed_seconds=elapsed,
            parent_bin=parent,
        )
        self.recursions.append(recursion)
        for index, probability in enumerate(probabilities):
            self.bins.append(
                Bin(
                    fixed=dict(fixed),
                    active=tuple(active),
                    index=index,
                    probability=float(probability),
                    recursion=recursion.index,
                )
            )
        return recursion

    # ------------------------------------------------------------------
    def _choose_bin(self) -> Optional[Bin]:
        """Highest-probability bin that still has merged qubits to expand."""
        best: Optional[Bin] = None
        total = self.provider.num_qubits
        for candidate in self.bins:
            if candidate.zoomed:
                continue
            if len(candidate.assignment) >= total:
                continue  # fully resolved, nothing to zoom into
            if best is None or candidate.probability > best.probability:
                best = candidate
        return best

    def _next_active(self, fixed: Dict[int, int]) -> List[int]:
        remaining = [w for w in self.active_order if w not in fixed]
        return remaining[: self.max_active_qubits]

    def _reconstruct(
        self, roles: Dict[int, Role], active: Sequence[int]
    ) -> np.ndarray:
        collapsed = self.provider.collapsed(roles)
        tensors = [item[0] for item in collapsed]
        kron_wires: List[int] = []
        order = sorted(
            range(len(tensors)), key=lambda i: tensors[i].num_effective
        )
        for index in order:
            kron_wires.extend(collapsed[index][1])
        num_cuts = self.provider.num_cuts
        contraction = self.engine.contract(tensors, order, num_cuts)
        vector = contraction.vector * (0.5**num_cuts)
        permutation = [kron_wires.index(w) for w in active]
        return permute_qubits(vector, permutation)

    # ------------------------------------------------------------------
    # Query products
    # ------------------------------------------------------------------
    @property
    def current_partition(self) -> List[Bin]:
        """Bins that currently tile the whole Hilbert space (not zoomed)."""
        return [b for b in self.bins if not b.zoomed]

    def solution_states(self, threshold: float = 0.5) -> List[Tuple[str, float]]:
        """Fully-resolved states with probability above ``threshold``."""
        total = self.provider.num_qubits
        states = []
        for candidate in self.bins:
            resolved = candidate.assignment
            if len(resolved) == total and candidate.probability >= threshold:
                bits = "".join(str(resolved[w]) for w in range(total))
                states.append((bits, candidate.probability))
        states.sort(key=lambda item: -item[1])
        return states

    def approximate_distribution(self) -> np.ndarray:
        """The blurred 2**n landscape from the current partition (Fig. 8).

        Each unzoomed bin spreads its probability uniformly over its merged
        qubits.  Only sensible for small ``n`` (it materializes 2**n).
        """
        total = self.provider.num_qubits
        out = np.zeros((2,) * total)
        for candidate in self.current_partition:
            resolved = candidate.assignment
            merged = candidate.merged_wires(total)
            slicer = tuple(
                resolved[w] if w in resolved else slice(None) for w in range(total)
            )
            weight = candidate.probability / (2 ** len(merged))
            out[slicer] = weight
        return out.reshape(-1)
