"""Dynamic-definition (DD) query — paper §4.3, Algorithm 1.

DD reconstructs a *binned* view of the uncut distribution: a chosen subset
of qubits is ``active`` (their states resolved), the rest are ``merged``
(probabilities summed per bin).  Recursions zoom into the highest-
probability bin by fixing its active qubits (``zoomed``) and activating a
fresh batch of merged qubits, so solution states of sparse circuits are
located in O(n) recursions and dense distributions can be sampled at any
definition without ever storing the full ``2**n`` vector.

This implementation is built for scale:

* every recursion is a :class:`~repro.postprocess.plan.QueryPlan` — the
  same abstraction the FD and streaming-FD paths dispatch through;
* collapsed subcircuit tensors are cached by their restricted role
  signature (:class:`~repro.postprocess.plan.CachingTensorProvider`), so
  sibling bins and successive recursions reuse collapses instead of
  re-summing full term tensors;
* the bin frontier is a priority heap — choosing the next bin is
  O(log bins), not an O(bins) rescan of every bin ever created;
* ``zoom_width=k`` expands the top-k bins per round, contracting them in
  parallel through the shared
  :class:`~repro.postprocess.engine.ContractionEngine` worker pool.

Query products (``solution_states``, ``approximate_distribution``) are
unchanged from the naive implementation; :meth:`DynamicDefinitionQuery.stats`
reports recursion latencies, cache hit rates and frontier size.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import trace
from ..obs.metrics import get_registry
from .engine import ContractionEngine
from .plan import (
    CachingTensorProvider,
    PrecomputedTensorProvider,
    QueryPlan,
    Role,
    RoleMap,
    TensorProvider,
    binned_tensor,
)

__all__ = [
    "Bin",
    "DDRecursion",
    "DDStats",
    "TensorProvider",
    "PrecomputedTensorProvider",
    "DynamicDefinitionQuery",
]

_DD_ROUNDS = get_registry().counter(
    "repro_dd_rounds_total", "Dynamic-definition zoom rounds executed."
)
_DD_CACHE = get_registry().counter(
    "repro_dd_cache_total",
    "DD collapse-cache lookups by outcome (hit/miss).",
    ("outcome",),
)


@dataclass
class Bin:
    """One probability bin: fixed (zoomed) qubits + one active-qubit state."""

    fixed: Dict[int, int]
    active: Tuple[int, ...]
    index: int
    probability: float
    recursion: int
    zoomed: bool = False  # True once a later recursion refined this bin

    @property
    def assignment(self) -> Dict[int, int]:
        """All resolved qubits: fixed plus this bin's active-qubit bits."""
        resolved = dict(self.fixed)
        width = len(self.active)
        for position, wire in enumerate(self.active):
            resolved[wire] = (self.index >> (width - 1 - position)) & 1
        return resolved

    @property
    def num_resolved(self) -> int:
        """Resolved-qubit count without building the assignment dict."""
        return len(self.fixed) + len(self.active)

    def merged_wires(self, num_qubits: int) -> List[int]:
        resolved = self.assignment
        return [w for w in range(num_qubits) if w not in resolved]


@dataclass
class DDRecursion:
    """The output of one DD recursion (one reconstruction pass)."""

    index: int
    fixed: Dict[int, int]
    active: Tuple[int, ...]
    probabilities: np.ndarray
    elapsed_seconds: float
    parent_bin: Optional[Bin] = None


@dataclass
class DDStats:
    """Aggregate query statistics (latency, caching, frontier)."""

    num_recursions: int
    num_rounds: int
    zoom_width: int
    num_bins: int
    frontier_size: int
    total_elapsed_seconds: float
    collapse_seconds: float
    contract_seconds: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_recursions": self.num_recursions,
            "num_rounds": self.num_rounds,
            "zoom_width": self.zoom_width,
            "num_bins": self.num_bins,
            "frontier_size": self.frontier_size,
            "total_elapsed_seconds": self.total_elapsed_seconds,
            "collapse_seconds": self.collapse_seconds,
            "contract_seconds": self.contract_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }


class DynamicDefinitionQuery:
    """Algorithm 1: recursive zoom-in over probability bins.

    Parameters
    ----------
    provider:
        Supplies collapsed term tensors per role spec (precomputed,
        shot-based, or synthetic).
    max_active_qubits:
        Definition per recursion — each recursion resolves this many new
        qubits into ``2**max_active_qubits`` bins.
    active_order:
        Wire activation order (default: ascending wire index).
    engine:
        Shared contraction engine; its ``workers`` setting also drives
        the parallel zoom when ``zoom_width > 1``.
    zoom_width:
        Bins expanded per round by :meth:`run`.  ``1`` reproduces the
        paper's strictly sequential Algorithm 1; ``k > 1`` zooms into the
        top-k frontier bins per round and contracts them in parallel.
    pool:
        A persistent :class:`~repro.postprocess.parallel.WorkerPool`.
        When set, every batched zoom round dispatches to the warm
        workers instead of constructing a throwaway
        ``multiprocessing.Pool`` per round (the engine is cloned with
        the pool attached if it does not already carry one).
    """

    def __init__(
        self,
        provider: TensorProvider,
        max_active_qubits: int,
        active_order: Optional[Sequence[int]] = None,
        engine: Optional[ContractionEngine] = None,
        zoom_width: int = 1,
        pool=None,
    ):
        if max_active_qubits < 1:
            raise ValueError("max_active_qubits must be positive")
        if zoom_width < 1:
            raise ValueError("zoom_width must be positive")
        self.provider = provider
        self.engine = engine or ContractionEngine(strategy="auto")
        if pool is not None and self.engine.pool is None:
            self.engine = replace(self.engine, pool=pool)
        self.max_active_qubits = int(max_active_qubits)
        self.zoom_width = int(zoom_width)
        order = (
            list(range(provider.num_qubits))
            if active_order is None
            else list(active_order)
        )
        if sorted(order) != list(range(provider.num_qubits)):
            raise ValueError("active_order must be a permutation of all wires")
        self.active_order = order
        self.bins: List[Bin] = []
        self.recursions: List[DDRecursion] = []
        # Max-heap frontier of expandable bins: (-probability, seq, Bin).
        # Bins never change probability and are removed when zoomed, so
        # lazy invalidation keeps every operation O(log bins).
        self._frontier: List[Tuple[float, int, Bin]] = []
        self._pushed = 0
        self._num_rounds = 0
        self._collapse_seconds = 0.0
        self._contract_seconds = 0.0
        # Snapshot the provider's cache counters so stats() reports this
        # query's hits/misses even when the provider is reused.
        cache = getattr(provider, "cache_stats", None)
        self._cache_base_hits = cache.hits if cache is not None else 0
        self._cache_base_misses = cache.misses if cache is not None else 0

    # ------------------------------------------------------------------
    def run(self, max_recursions: int) -> List[DDRecursion]:
        """Run up to ``max_recursions`` *further* recursions (Algorithm 1
        loop) — repeated calls deepen the query progressively.

        Recursions are expanded in rounds of up to ``zoom_width`` bins;
        the loop stops early when no expandable bin remains.
        """
        target = len(self.recursions) + max_recursions
        while len(self.recursions) < target:
            if self.recursions and self._peek_bin() is None:
                break  # nothing left to zoom into
            width = min(self.zoom_width, target - len(self.recursions))
            self._expand_round(width)
        return self.recursions

    def step(self) -> DDRecursion:
        """One DD recursion: choose a bin, zoom, reconstruct, re-bin."""
        return self._expand_round(1)[0]

    def _expand_round(self, width: int) -> List[DDRecursion]:
        """Expand up to ``width`` frontier bins as one batched round."""
        cache = getattr(self.provider, "cache_stats", None)
        hits0 = cache.hits if cache is not None else 0
        misses0 = cache.misses if cache is not None else 0
        with trace.span("query.dd.round", {"width": width}):
            recursions = self._expand_round_impl(width)
        _DD_ROUNDS.inc()
        if cache is not None:
            hit_delta = cache.hits - hits0
            miss_delta = cache.misses - misses0
            if hit_delta:
                _DD_CACHE.inc(hit_delta, outcome="hit")
            if miss_delta:
                _DD_CACHE.inc(miss_delta, outcome="miss")
        return recursions

    def _expand_round_impl(self, width: int) -> List[DDRecursion]:
        parents: List[Optional[Bin]] = []
        if not self.recursions:
            parents.append(None)  # the root recursion has no parent bin
        else:
            for _ in range(width):
                parent = self._pop_bin()
                if parent is None:
                    if not parents:
                        raise RuntimeError("no expandable bin remains")
                    break
                parent.zoomed = True
                parents.append(parent)

        prepared = []
        collapse_seconds: List[float] = []
        for parent in parents:
            fixed = {} if parent is None else parent.assignment
            active = self._next_active(fixed)
            if not active:
                raise RuntimeError("no merged qubit remains to activate")
            plan = QueryPlan.binned(
                self.provider.num_qubits,
                self.provider.num_cuts,
                fixed,
                active,
            )
            collapse_began = time.perf_counter()
            prep = plan.prepared(self.provider)
            collapse_seconds.append(time.perf_counter() - collapse_began)
            prepared.append((parent, fixed, tuple(active), prep))

        contract_began = time.perf_counter()
        if len(prepared) == 1:
            # Single bin: let the engine parallelize *inside* the sweep.
            contractions = [
                prepared[0][3].contract(self.engine).contraction
            ]
        else:
            contractions = self.engine.contract_batch(
                [prep.payload for _, _, _, prep in prepared]
            )
        contract_elapsed = time.perf_counter() - contract_began
        self._collapse_seconds += sum(collapse_seconds)
        self._contract_seconds += contract_elapsed
        self._num_rounds += 1

        recursions: List[DDRecursion] = []
        share = contract_elapsed / len(prepared)
        for (parent, fixed, active, prep), contraction, collapsed_s in zip(
            prepared, contractions, collapse_seconds
        ):
            probabilities = prep.finish(contraction).probabilities
            recursion = DDRecursion(
                index=len(self.recursions),
                fixed=fixed,
                active=active,
                probabilities=probabilities,
                elapsed_seconds=collapsed_s + share,
                parent_bin=parent,
            )
            self.recursions.append(recursion)
            recursions.append(recursion)
            self._emit_bins(recursion)
        return recursions

    def _emit_bins(self, recursion: DDRecursion) -> None:
        expandable = (
            len(recursion.fixed) + len(recursion.active)
            < self.provider.num_qubits
        )
        for index, probability in enumerate(recursion.probabilities):
            entry = Bin(
                fixed=dict(recursion.fixed),
                active=recursion.active,
                index=index,
                probability=float(probability),
                recursion=recursion.index,
            )
            self.bins.append(entry)
            if expandable:
                heapq.heappush(
                    self._frontier,
                    (-entry.probability, self._pushed, entry),
                )
                self._pushed += 1

    # ------------------------------------------------------------------
    def _pop_bin(self) -> Optional[Bin]:
        """Remove and return the highest-probability expandable bin."""
        while self._frontier:
            _, _, candidate = heapq.heappop(self._frontier)
            if candidate.zoomed:
                continue  # invalidated lazily
            return candidate
        return None

    def _peek_bin(self) -> Optional[Bin]:
        """The bin :meth:`_pop_bin` would return, without removing it."""
        while self._frontier:
            _, _, candidate = self._frontier[0]
            if candidate.zoomed:
                heapq.heappop(self._frontier)
                continue
            return candidate
        return None

    def _choose_bin(self) -> Optional[Bin]:
        """Highest-probability bin that still has merged qubits to expand."""
        return self._peek_bin()

    def _next_active(self, fixed: Dict[int, int]) -> List[int]:
        remaining = [w for w in self.active_order if w not in fixed]
        return remaining[: self.max_active_qubits]

    # ------------------------------------------------------------------
    # Query products
    # ------------------------------------------------------------------
    @property
    def current_partition(self) -> List[Bin]:
        """Bins that currently tile the whole Hilbert space (not zoomed)."""
        return [b for b in self.bins if not b.zoomed]

    def solution_states(self, threshold: float = 0.5) -> List[Tuple[str, float]]:
        """Fully-resolved states with probability above ``threshold``."""
        total = self.provider.num_qubits
        states = []
        for candidate in self.bins:
            if candidate.num_resolved < total:
                continue
            if candidate.probability < threshold:
                continue
            resolved = candidate.assignment
            bits = "".join(str(resolved[w]) for w in range(total))
            states.append((bits, candidate.probability))
        states.sort(key=lambda item: -item[1])
        return states

    def approximate_distribution(self) -> np.ndarray:
        """The blurred 2**n landscape from the current partition (Fig. 8).

        Each unzoomed bin spreads its probability uniformly over its merged
        qubits.  Only sensible for small ``n`` (it materializes 2**n).
        """
        total = self.provider.num_qubits
        out = np.zeros((2,) * total)
        for candidate in self.current_partition:
            resolved = candidate.assignment
            merged = candidate.merged_wires(total)
            slicer = tuple(
                resolved[w] if w in resolved else slice(None) for w in range(total)
            )
            weight = candidate.probability / (2 ** len(merged))
            out[slicer] = weight
        return out.reshape(-1)

    def stats(self) -> DDStats:
        """Latency, cache and frontier statistics for the query so far."""
        cache = getattr(self.provider, "cache_stats", None)
        hits = misses = 0
        if cache is not None:
            # Deltas against the construction-time snapshot: the counters
            # must describe *this query*, not the provider's lifetime.
            hits = max(0, cache.hits - self._cache_base_hits)
            misses = max(0, cache.misses - self._cache_base_misses)
        requests = hits + misses
        rate = hits / requests if requests else 0.0
        return DDStats(
            num_recursions=len(self.recursions),
            num_rounds=self._num_rounds,
            zoom_width=self.zoom_width,
            num_bins=len(self.bins),
            frontier_size=len(self._frontier),
            total_elapsed_seconds=sum(
                r.elapsed_seconds for r in self.recursions
            ),
            collapse_seconds=self._collapse_seconds,
            contract_seconds=self._contract_seconds,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=rate,
        )
