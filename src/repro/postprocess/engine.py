"""Unified contraction engine shared by FD and DD reconstruction.

Both query modes end at the same mathematical object: the sum over all
``4^K`` cut-term assignments of the Kronecker product of per-subcircuit
term vectors (Eq. 2/§4.2 for the full-definition query, the collapsed
variant of it for every dynamic-definition recursion).  This module is
the single implementation of that contraction; :mod:`.reconstruct` and
:mod:`.dd` are thin dispatchers over it.

Three strategies are provided:

``kron``
    Blocked, batched Kronecker accumulation.  Assignments are processed
    in vectorized chunks; the surviving (non-zero) assignments of a chunk
    are gathered into per-subcircuit matrices and contracted with one
    broadcasted outer product plus a single BLAS matmul per block —
    ``accumulator += prefix.T @ last`` — instead of a per-assignment
    Python ``reduce(np.kron, ...)`` loop.  Implements the paper's greedy
    order, early termination, and multiprocessing optimizations.

``tensor_network``
    Greedy pairwise contraction of the term tensors as a tensor network.
    Axis labels are plain Python objects (cut ids and output slots), so
    the contraction has no symbol pool at all — unlike subscript-based
    ``einsum`` (both the string *and* the integer-sublist forms exhaust
    NumPy's 52-letter alphabet once ``num_cuts + num_subcircuits >= 52``).
    Each pairwise step is an ``np.tensordot`` (BLAS).

``auto``
    Estimates the floating-point work of both strategies from tensor
    shapes and sparsity and picks the cheaper one.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import trace
from .attribution import TermTensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .parallel import WorkerPool

__all__ = [
    "STRATEGIES",
    "ContractionResult",
    "ContractionEngine",
    "contract_terms",
    "resolve_strategy",
]

#: The strategies :func:`contract_terms` accepts.
STRATEGIES: Tuple[str, ...] = ("kron", "tensor_network", "auto")

#: Assignments processed per vectorized row computation.
_CHUNK = 1 << 14
#: Soft cap on elements held by one batched-Kronecker prefix block.
_BLOCK_ELEMENTS = 1 << 22
#: Below this many assignments, multiprocessing overhead cannot pay off.
_MIN_PARALLEL_TERMS = 256


@dataclass
class ContractionResult:
    """Output of one engine contraction (before the ``1/2^K`` scale)."""

    vector: np.ndarray
    num_skipped: int
    strategy: str  # the strategy actually executed ("auto" is resolved)


# ----------------------------------------------------------------------
# kron strategy: blocked/batched Kronecker accumulation
# ----------------------------------------------------------------------

def _row_indices(
    tensor: TermTensor, assignments: np.ndarray, num_cuts: int
) -> np.ndarray:
    """Vectorized map from global assignment indices to tensor rows."""
    rows = np.zeros(assignments.shape, dtype=np.int64)
    for cut_id in tensor.cut_order:
        digit = (assignments >> (2 * (num_cuts - 1 - cut_id))) & 3
        rows = (rows << 2) | digit
    return rows


def _accumulate_range(
    tensors: Sequence[TermTensor],
    order: Sequence[int],
    num_cuts: int,
    start: int,
    stop: int,
    early_termination: bool,
    block_elements: int = _BLOCK_ELEMENTS,
) -> Tuple[np.ndarray, int]:
    """Sum the Kronecker terms for assignments in ``[start, stop)``.

    Surviving assignments are contracted per *block*: all-but-the-last
    vectors are combined with one broadcasted outer product into a
    ``(block, prefix_len)`` matrix, then folded into the accumulator with
    a single matmul against the last (largest, under greedy order)
    tensor's gathered rows.  Block size adapts so the prefix matrix stays
    under ``block_elements`` elements.
    """
    ordered = [tensors[i] for i in order]
    total_qubits = sum(t.num_effective for t in ordered)
    accumulator = np.zeros(1 << total_qubits)
    skipped = 0
    lengths = [1 << t.num_effective for t in ordered]
    prefix_len = 1
    for length in lengths[:-1]:
        prefix_len *= length
    # Both the prefix block and the gathered last-tensor rows must stay
    # within the element budget.
    widest = max(prefix_len, max(lengths))
    rows_per_block = max(1, block_elements // max(1, widest))
    for chunk_start in range(start, stop, _CHUNK):
        chunk_stop = min(chunk_start + _CHUNK, stop)
        assignments = np.arange(chunk_start, chunk_stop, dtype=np.int64)
        rows = [_row_indices(t, assignments, num_cuts) for t in ordered]
        if early_termination:
            alive = np.ones(assignments.shape, dtype=bool)
            for tensor, tensor_rows in zip(ordered, rows):
                alive &= tensor.nonzero[tensor_rows]
            skipped += int((~alive).sum())
            survivors = np.nonzero(alive)[0]
        else:
            survivors = np.arange(assignments.size)
        for block_start in range(0, survivors.size, rows_per_block):
            block = survivors[block_start : block_start + rows_per_block]
            matrices = [
                tensor.data[tensor_rows[block]]
                for tensor, tensor_rows in zip(ordered, rows)
            ]
            if len(matrices) == 1:
                accumulator += matrices[0].sum(axis=0)
                continue
            prefix = matrices[0]
            for matrix in matrices[1:-1]:
                prefix = (prefix[:, :, None] * matrix[:, None, :]).reshape(
                    prefix.shape[0], -1
                )
            accumulator += (prefix.T @ matrices[-1]).reshape(-1)
    return accumulator, skipped


# -- multiprocessing plumbing -------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(tensors, order, num_cuts, early_termination):  # pragma: no cover
    _WORKER_STATE["args"] = (tensors, order, num_cuts, early_termination)


def _worker_run(bounds):  # pragma: no cover - exercised via integration tests
    tensors, order, num_cuts, early_termination = _WORKER_STATE["args"]
    return _accumulate_range(
        tensors, order, num_cuts, bounds[0], bounds[1], early_termination
    )


def _enumerate_kron(
    tensors: Sequence[TermTensor],
    order: Sequence[int],
    num_cuts: int,
    workers: int,
    early_termination: bool,
) -> Tuple[np.ndarray, int]:
    """The full ``4^K`` sweep, optionally partitioned across processes."""
    total = 4**num_cuts
    if workers <= 1 or total < _MIN_PARALLEL_TERMS:
        return _accumulate_range(
            tensors, order, num_cuts, 0, total, early_termination
        )
    bounds = []
    step = (total + workers - 1) // workers
    for start in range(0, total, step):
        bounds.append((start, min(start + step, total)))
    # try/finally with an explicit join so a worker exception cannot
    # orphan the pool's processes (``with`` terminates but never joins).
    pool = multiprocessing.Pool(
        processes=workers,
        initializer=_worker_init,
        initargs=(list(tensors), list(order), num_cuts, early_termination),
    )
    try:
        partials = pool.map(_worker_run, bounds)
    finally:
        pool.terminate()
        pool.join()
    vector = np.zeros_like(partials[0][0])
    skipped = 0
    for partial, partial_skipped in partials:
        vector += partial
        skipped += partial_skipped
    return vector, skipped


# ----------------------------------------------------------------------
# tensor_network strategy: greedy pairwise tensordot contraction
# ----------------------------------------------------------------------

def _network_nodes(
    tensors: Sequence[TermTensor], order: Sequence[int]
) -> List[Tuple[np.ndarray, List[Tuple[str, int]]]]:
    """One node per subcircuit: cut axes labelled by cut id, output axis
    labelled by its Kronecker position."""
    nodes = []
    for position, index in enumerate(order):
        tensor = tensors[index]
        shape = (4,) * tensor.num_cuts + (1 << tensor.num_effective,)
        labels: List[Tuple[str, int]] = [
            ("cut", cut_id) for cut_id in tensor.cut_order
        ]
        labels.append(("out", position))
        nodes.append((tensor.data.reshape(shape), labels))
    return nodes


def _select_pair(shapes) -> Optional[Tuple[int, int, set, int]]:
    """Greedy choice shared by the contraction and its cost model: among
    connected pairs, the one whose contraction result is smallest.

    ``shapes`` is one ``{label: dim}`` dict per node; returns
    ``(i, j, shared_labels, shared_dim)`` or None if no pair connects.
    """
    sizes = []
    for dims in shapes:
        size = 1.0
        for dim in dims.values():
            size *= dim
        sizes.append(size)
    best: Optional[Tuple[int, int, set, int]] = None
    best_size = None
    for i in range(len(shapes)):
        for j in range(i + 1, len(shapes)):
            shared = set(shapes[i]).intersection(shapes[j])
            if not shared:
                continue
            shared_dim = 1
            for label in shared:
                shared_dim *= shapes[i][label]
            size = sizes[i] * sizes[j] / (shared_dim * shared_dim)
            if best_size is None or size < best_size:
                best, best_size = (i, j, shared, shared_dim), size
    return best


def _contract_pair(nodes, i: int, j: int) -> None:
    """Contract nodes ``i`` and ``j`` over their shared labels, in place."""
    array_a, labels_a = nodes[i]
    array_b, labels_b = nodes[j]
    shared = [label for label in labels_a if label in labels_b]
    axes_a = [labels_a.index(label) for label in shared]
    axes_b = [labels_b.index(label) for label in shared]
    merged = np.tensordot(array_a, array_b, axes=(axes_a, axes_b))
    labels = [label for label in labels_a if label not in shared] + [
        label for label in labels_b if label not in shared
    ]
    del nodes[j], nodes[i]  # j > i: delete the higher index first
    nodes.append((merged, labels))


def _contract_network(
    tensors: Sequence[TermTensor], order: Sequence[int]
) -> np.ndarray:
    """Contract the term-tensor network down to the ordered output vector."""
    nodes = _network_nodes(tensors, order)
    while len(nodes) > 1:
        shapes = [dict(zip(labels, array.shape)) for array, labels in nodes]
        selected = _select_pair(shapes)
        pair = (0, 1) if selected is None else selected[:2]
        _contract_pair(nodes, *pair)
    array, labels = nodes[0]
    permutation = sorted(range(len(labels)), key=lambda axis: labels[axis][1])
    return np.transpose(array, axes=permutation).reshape(-1)


# ----------------------------------------------------------------------
# auto strategy: shape/sparsity cost model
# ----------------------------------------------------------------------

def _kron_cost(
    tensors: Sequence[TermTensor], order: Sequence[int], num_cuts: int
) -> float:
    """Estimated flops of the blocked enumeration: mask work over the full
    ``4^K`` space plus Kronecker work on the surviving fraction."""
    terms = 4.0**num_cuts
    total = float(1 << sum(tensors[i].num_effective for i in order))
    alive = 1.0
    for index in order:
        nonzero = tensors[index].nonzero
        alive *= float(nonzero.mean()) if nonzero.size else 1.0
    return terms * len(order) + terms * alive * total


def _tn_cost(tensors: Sequence[TermTensor], order: Sequence[int]) -> float:
    """Simulated cost of the greedy pairwise path (sum of result sizes
    weighted by the contracted dimension)."""
    shapes: List[dict] = []
    for position, index in enumerate(order):
        tensor = tensors[index]
        dims = {("cut", cut_id): 4 for cut_id in tensor.cut_order}
        dims[("out", position)] = 1 << tensor.num_effective
        shapes.append(dims)
    cost = 0.0
    while len(shapes) > 1:
        selected = _select_pair(shapes)
        if selected is None:
            i, j, shared, shared_dim = 0, 1, set(), 1
        else:
            i, j, shared, shared_dim = selected
        merged = {
            label: dim
            for labelled in (shapes[i], shapes[j])
            for label, dim in labelled.items()
            if label not in shared
        }
        result_size = 1.0
        for dim in merged.values():
            result_size *= dim
        cost += result_size * shared_dim
        del shapes[j], shapes[i]
        shapes.append(merged)
    return cost


def resolve_strategy(
    strategy: str,
    tensors: Sequence[TermTensor],
    order: Sequence[int],
    num_cuts: int,
) -> str:
    """Resolve ``"auto"`` to a concrete strategy via the cost model."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if strategy != "auto":
        return strategy
    if _tn_cost(tensors, order) < _kron_cost(tensors, order, num_cuts):
        return "tensor_network"
    return "kron"


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def _contract_payload(payload):
    """Top-level (picklable) worker for :meth:`ContractionEngine.contract_batch`."""
    tensors, order, num_cuts, strategy, early_termination = payload
    return contract_terms(
        tensors,
        order,
        num_cuts,
        strategy=strategy,
        workers=1,
        early_termination=early_termination,
    )


def contract_terms(
    tensors: Sequence[TermTensor],
    order: Sequence[int],
    num_cuts: int,
    strategy: str = "auto",
    workers: int = 1,
    early_termination: bool = True,
) -> ContractionResult:
    """Contract term tensors into the (unscaled) combined output vector.

    Parameters
    ----------
    tensors:
        One :class:`~repro.postprocess.attribution.TermTensor` per
        subcircuit, indexed consistently with ``order``.
    order:
        Kronecker order of the subcircuits (greedy: smallest first).
    num_cuts:
        K — the global number of cuts (term rows use 2 bits per cut).
    strategy:
        ``"kron"``, ``"tensor_network"``, or ``"auto"`` (cost-model pick).
    workers:
        Process count for the ``kron`` enumeration (ignored by the
        tensor-network path, whose BLAS calls already use native threads).
    early_termination:
        Skip assignments whose component vector is all zeros (§4.2);
        ``kron`` only.

    Returns the raw sum; callers apply the ``1/2^K`` scale.
    """
    resolved = resolve_strategy(strategy, tensors, order, num_cuts)
    with trace.span(
        "contract", {"strategy": resolved, "num_cuts": num_cuts}
    ):
        if resolved == "tensor_network":
            vector = _contract_network(tensors, order)
            return ContractionResult(
                vector=vector, num_skipped=0, strategy=resolved
            )
        vector, skipped = _enumerate_kron(
            tensors, order, num_cuts, workers, early_termination
        )
        return ContractionResult(
            vector=vector, num_skipped=skipped, strategy=resolved
        )


@dataclass
class ContractionEngine:
    """Reusable contraction configuration (strategy + parallelism).

    The pipeline creates one engine and hands it to both the FD
    reconstructor and the DD query so a single set of knobs governs every
    contraction in a run.  With a persistent
    :class:`~repro.postprocess.parallel.WorkerPool` injected via
    ``pool``, every parallel dispatch (a large ``kron`` sweep, a batch of
    DD-bin contractions) reuses the warm workers instead of constructing
    a throwaway ``multiprocessing.Pool`` per call.
    """

    strategy: str = "auto"
    workers: int = 1
    early_termination: bool = True
    pool: Optional["WorkerPool"] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}"
            )
        if self.workers < 1:
            raise ValueError("workers must be positive")

    def contract(
        self,
        tensors: Sequence[TermTensor],
        order: Sequence[int],
        num_cuts: int,
        strategy: Optional[str] = None,
        workers: Optional[int] = None,
        early_termination: Optional[bool] = None,
    ) -> ContractionResult:
        """:func:`contract_terms` with this engine's defaults.

        When a worker pool is injected and the ``kron`` strategy wins, a
        large enough sweep is range-split across the warm workers with a
        shared-memory reduction tree (ignoring the per-call ``workers``
        count — the pool's size governs).
        """
        resolved_strategy = self.strategy if strategy is None else strategy
        early = (
            self.early_termination
            if early_termination is None
            else early_termination
        )
        if self.pool is not None:
            resolved = resolve_strategy(
                resolved_strategy, tensors, order, num_cuts
            )
            if (
                resolved == "kron"
                and self.pool.workers > 1
                and 4**num_cuts >= _MIN_PARALLEL_TERMS
            ):
                vector, skipped = self.pool.contract_kron(
                    tensors, order, num_cuts, early_termination=early
                )
                return ContractionResult(
                    vector=vector, num_skipped=skipped, strategy="kron"
                )
        return contract_terms(
            tensors,
            order,
            num_cuts,
            strategy=resolved_strategy,
            workers=self.workers if workers is None else workers,
            early_termination=early,
        )

    def contract_batch(
        self,
        batch: Sequence[Tuple[Sequence[TermTensor], Sequence[int], int]],
        strategy: Optional[str] = None,
        early_termination: Optional[bool] = None,
    ) -> List[ContractionResult]:
        """Contract many independent term sets, fanned over the worker pool.

        ``batch`` holds ``(tensors, order, num_cuts)`` triples — one per
        DD zoom bin or FD shard.  With an injected worker pool the batch
        fans out over the persistent workers (shared-memory transport);
        otherwise ``workers > 1`` falls back to a per-call process pool
        (each item single-process internally).  The per-item parallelism
        of :meth:`contract` is the right tool for *one* large
        contraction, this one for *many* small ones.
        """
        strategy = self.strategy if strategy is None else strategy
        early = (
            self.early_termination
            if early_termination is None
            else early_termination
        )
        if self.pool is not None and len(batch) > 1:
            return self.pool.contract_batch(
                batch, strategy=strategy, early_termination=early
            )
        payloads = [
            (list(tensors), list(order), num_cuts, strategy, early)
            for tensors, order, num_cuts in batch
        ]
        if self.workers <= 1 or len(payloads) <= 1:
            return [_contract_payload(payload) for payload in payloads]
        # try/finally with an explicit join: a worker exception must not
        # orphan the freshly constructed pool's processes (``with`` only
        # terminates, it does not wait for the children to die).
        pool = multiprocessing.Pool(processes=min(self.workers, len(payloads)))
        try:
            return pool.map(_contract_payload, payloads)
        finally:
            pool.terminate()
            pool.join()
