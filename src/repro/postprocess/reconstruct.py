"""Full-definition (FD) reconstruction — paper §4.2.

The uncut distribution is the sum over all ``4^K`` cut-term assignments of
the Kronecker product of the subcircuits' term vectors, scaled by
``1/2^K``.  The actual contraction lives in the shared
:mod:`~repro.postprocess.engine`; this module keeps the FD-specific
plumbing — greedy subcircuit ordering, wire-order restoration, and the
stats the benches report — and implements the paper's three
optimizations through the engine:

* **greedy subcircuit order** — Kronecker products accumulate smallest
  subcircuits first, minimizing carry-over vector sizes;
* **early termination** — a term whose component vector is all zeros
  contributes nothing and is skipped;
* **parallel processing** — the ``4^K`` term space is partitioned across a
  ``multiprocessing`` pool with no inter-worker communication (the paper's
  compute-node model).

The engine's ``tensor_network`` strategy (greedy pairwise contraction of
the same tensors) computes the identical output without the explicit 4^K
enumeration, and ``auto`` picks between the two from a cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit, Subcircuit
from ..cutting.variants import SubcircuitResult
from ..utils import permute_qubits
from .attribution import TermTensor, build_term_tensor
from .engine import STRATEGIES, ContractionEngine, contract_terms

__all__ = [
    "ReconstructionStats",
    "ReconstructionResult",
    "Reconstructor",
    "reconstruct_full",
    "binned_tensor",
]


@dataclass
class ReconstructionStats:
    """Bookkeeping the benches report alongside the distribution."""

    num_cuts: int
    num_terms: int
    num_skipped: int
    elapsed_seconds: float
    workers: int
    strategy: str
    subcircuit_order: Tuple[int, ...]


@dataclass
class ReconstructionResult:
    probabilities: np.ndarray  # original circuit qubit order
    stats: ReconstructionStats


class Reconstructor:
    """FD reconstruction engine bound to one cut circuit's results."""

    def __init__(
        self,
        cut_circuit: CutCircuit,
        results: Optional[Sequence[SubcircuitResult]] = None,
        tensors: Optional[Sequence[TermTensor]] = None,
        engine: Optional[ContractionEngine] = None,
    ):
        self.cut_circuit = cut_circuit
        self.engine = engine or ContractionEngine(strategy="kron")
        if tensors is None:
            if results is None:
                raise ValueError("provide subcircuit results or term tensors")
            tensors = [build_term_tensor(result) for result in results]
        self.tensors = sorted(tensors, key=lambda t: t.subcircuit_index)
        if len(self.tensors) != cut_circuit.num_subcircuits:
            raise ValueError(
                f"{len(self.tensors)} tensors for "
                f"{cut_circuit.num_subcircuits} subcircuits"
            )

    # ------------------------------------------------------------------
    def subcircuit_order(self, greedy: bool = True) -> List[int]:
        """Greedy order: smallest effective size first (§4.2)."""
        indices = list(range(len(self.tensors)))
        if greedy:
            indices.sort(key=lambda i: self.tensors[i].num_effective)
        return indices

    def reconstruct(
        self,
        workers: Optional[int] = None,
        greedy_order: bool = True,
        early_termination: Optional[bool] = None,
        strategy: Optional[str] = None,
    ) -> ReconstructionResult:
        """Compute the full 2**n distribution of the uncut circuit.

        ``workers``, ``early_termination`` and ``strategy`` default to the
        bound :class:`~repro.postprocess.engine.ContractionEngine`'s
        settings when not given.
        """
        workers = self.engine.workers if workers is None else workers
        strategy = self.engine.strategy if strategy is None else strategy
        if early_termination is None:
            early_termination = self.engine.early_termination
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        began = time.perf_counter()
        num_cuts = self.cut_circuit.num_cuts
        order = self.subcircuit_order(greedy_order)
        contraction = contract_terms(
            self.tensors,
            order,
            num_cuts,
            strategy=strategy,
            workers=workers,
            early_termination=early_termination,
        )
        vector = contraction.vector * (0.5**num_cuts)
        probabilities = self._to_original_order(vector, order)
        elapsed = time.perf_counter() - began
        stats = ReconstructionStats(
            num_cuts=num_cuts,
            num_terms=4**num_cuts,
            num_skipped=contraction.num_skipped,
            elapsed_seconds=elapsed,
            workers=workers,
            strategy=contraction.strategy,
            subcircuit_order=tuple(order),
        )
        return ReconstructionResult(probabilities=probabilities, stats=stats)

    def _to_original_order(
        self, vector: np.ndarray, order: Sequence[int]
    ) -> np.ndarray:
        wires = self.cut_circuit.output_wire_order(order)
        permutation = [wires.index(w) for w in range(len(wires))]
        return permute_qubits(vector, permutation)


def reconstruct_full(
    cut_circuit: CutCircuit,
    results: Sequence[SubcircuitResult],
    workers: int = 1,
    greedy_order: bool = True,
    early_termination: bool = True,
    strategy: str = "kron",
) -> ReconstructionResult:
    """One-call FD query: results -> full uncut distribution."""
    reconstructor = Reconstructor(cut_circuit, results=results)
    return reconstructor.reconstruct(
        workers=workers,
        greedy_order=greedy_order,
        early_termination=early_termination,
        strategy=strategy,
    )


def binned_tensor(
    tensor: TermTensor,
    subcircuit: Subcircuit,
    roles: Dict[int, Tuple],
) -> Tuple[TermTensor, List[int]]:
    """Collapse a term tensor per a DD qubit-role spec.

    ``roles`` maps each original wire to ``("active",)``, ``("merged",)``
    or ``("fixed", bit)``.  Output lines of the subcircuit are summed out
    (merged), indexed (fixed) or kept (active); the returned tensor spans
    only the active lines, and the second return value lists their wires
    in axis order.
    """
    output_lines = subcircuit.output_lines
    shape = (tensor.data.shape[0],) + (2,) * len(output_lines)
    working = tensor.data.reshape(shape)
    active_wires: List[int] = []
    # Walk output axes from the last so earlier axis numbers stay valid.
    for position in reversed(range(len(output_lines))):
        role = roles[output_lines[position].wire]
        axis = 1 + position
        if role[0] == "merged":
            working = working.sum(axis=axis)
        elif role[0] == "fixed":
            working = np.take(working, int(role[1]), axis=axis)
        elif role[0] == "active":
            active_wires.insert(0, output_lines[position].wire)
        else:
            raise ValueError(f"unknown qubit role {role!r}")
    data = working.reshape(tensor.data.shape[0], -1)
    collapsed = TermTensor(
        subcircuit_index=tensor.subcircuit_index,
        cut_order=list(tensor.cut_order),
        num_effective=len(active_wires),
        data=data,
        nonzero=np.any(data != 0.0, axis=1),
    )
    return collapsed, active_wires
