"""Full-definition (FD) reconstruction — paper §4.2.

The uncut distribution is the sum over all ``4^K`` cut-term assignments of
the Kronecker product of the subcircuits' term vectors, scaled by
``1/2^K``.  The actual contraction lives in the shared
:mod:`~repro.postprocess.engine`; this module keeps the FD-specific
plumbing — greedy subcircuit ordering, wire-order restoration, and the
stats the benches report — and implements the paper's three
optimizations through the engine:

* **greedy subcircuit order** — Kronecker products accumulate smallest
  subcircuits first, minimizing carry-over vector sizes;
* **early termination** — a term whose component vector is all zeros
  contributes nothing and is skipped;
* **parallel processing** — the ``4^K`` term space is partitioned across a
  ``multiprocessing`` pool with no inter-worker communication (the paper's
  compute-node model).

The engine's ``tensor_network`` strategy (greedy pairwise contraction of
the same tensors) computes the identical output without the explicit 4^K
enumeration, and ``auto`` picks between the two from a cost model.

The FD query materializes the full ``2**n`` vector; for circuits past
that memory wall use :class:`~repro.postprocess.stream.StreamingReconstructor`
(sharded streaming FD) or the DD query instead — all three dispatch
through the same :class:`~repro.postprocess.plan.QueryPlan` abstraction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit
from ..cutting.variants import SubcircuitResult
from .attribution import TermTensor, build_term_tensor
from .engine import STRATEGIES, ContractionEngine
from .plan import PrecomputedTensorProvider, QueryPlan, binned_tensor

__all__ = [
    "ReconstructionStats",
    "ReconstructionResult",
    "Reconstructor",
    "reconstruct_full",
    "binned_tensor",
]


@dataclass
class ReconstructionStats:
    """Bookkeeping the benches report alongside the distribution."""

    num_cuts: int
    num_terms: int
    num_skipped: int
    elapsed_seconds: float
    workers: int
    strategy: str
    subcircuit_order: Tuple[int, ...]


@dataclass
class ReconstructionResult:
    probabilities: np.ndarray  # original circuit qubit order
    stats: ReconstructionStats


class Reconstructor:
    """FD reconstruction engine bound to one cut circuit's results."""

    def __init__(
        self,
        cut_circuit: CutCircuit,
        results: Optional[Sequence[SubcircuitResult]] = None,
        tensors: Optional[Sequence[TermTensor]] = None,
        engine: Optional[ContractionEngine] = None,
    ):
        self.cut_circuit = cut_circuit
        self.engine = engine or ContractionEngine(strategy="kron")
        if tensors is None:
            if results is None:
                raise ValueError("provide subcircuit results or term tensors")
            tensors = [build_term_tensor(result) for result in results]
        self.tensors = sorted(tensors, key=lambda t: t.subcircuit_index)
        if len(self.tensors) != cut_circuit.num_subcircuits:
            raise ValueError(
                f"{len(self.tensors)} tensors for "
                f"{cut_circuit.num_subcircuits} subcircuits"
            )
        # FD dispatches through the same provider/plan layer as DD and
        # streaming queries; the collapse cache is shared across calls.
        self.provider = PrecomputedTensorProvider(
            cut_circuit, tensors=self.tensors
        )

    # ------------------------------------------------------------------
    def subcircuit_order(self, greedy: bool = True) -> List[int]:
        """Greedy order: smallest effective size first (§4.2)."""
        indices = list(range(len(self.tensors)))
        if greedy:
            indices.sort(key=lambda i: self.tensors[i].num_effective)
        return indices

    def reconstruct(
        self,
        workers: Optional[int] = None,
        greedy_order: bool = True,
        early_termination: Optional[bool] = None,
        strategy: Optional[str] = None,
    ) -> ReconstructionResult:
        """Compute the full 2**n distribution of the uncut circuit.

        ``workers``, ``early_termination`` and ``strategy`` default to the
        bound :class:`~repro.postprocess.engine.ContractionEngine`'s
        settings when not given.
        """
        workers = self.engine.workers if workers is None else workers
        strategy = self.engine.strategy if strategy is None else strategy
        if early_termination is None:
            early_termination = self.engine.early_termination
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        began = time.perf_counter()
        num_cuts = self.cut_circuit.num_cuts
        order = self.subcircuit_order(greedy_order)
        plan = QueryPlan.full(self.cut_circuit.circuit.num_qubits, num_cuts)
        execution = plan.execute(
            self.provider,
            self.engine,
            order=order,
            strategy=strategy,
            workers=workers,
            early_termination=early_termination,
        )
        elapsed = time.perf_counter() - began
        stats = ReconstructionStats(
            num_cuts=num_cuts,
            num_terms=4**num_cuts,
            num_skipped=execution.contraction.num_skipped,
            elapsed_seconds=elapsed,
            workers=workers,
            strategy=execution.contraction.strategy,
            subcircuit_order=tuple(order),
        )
        return ReconstructionResult(
            probabilities=execution.probabilities, stats=stats
        )


def reconstruct_full(
    cut_circuit: CutCircuit,
    results: Sequence[SubcircuitResult],
    workers: int = 1,
    greedy_order: bool = True,
    early_termination: bool = True,
    strategy: str = "kron",
) -> ReconstructionResult:
    """One-call FD query: results -> full uncut distribution."""
    reconstructor = Reconstructor(cut_circuit, results=results)
    return reconstructor.reconstruct(
        workers=workers,
        greedy_order=greedy_order,
        early_termination=early_termination,
        strategy=strategy,
    )


# ``binned_tensor`` moved to :mod:`repro.postprocess.plan` (the collapse
# primitive belongs with the query-plan layer); re-exported here for
# backwards compatibility via the import above.
