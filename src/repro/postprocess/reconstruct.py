"""Full-definition (FD) reconstruction — paper §4.2.

The uncut distribution is the sum over all ``4^K`` cut-term assignments of
the Kronecker product of the subcircuits' term vectors, scaled by
``1/2^K``.  This module implements the paper's three optimizations:

* **greedy subcircuit order** — Kronecker products accumulate smallest
  subcircuits first, minimizing carry-over vector sizes;
* **early termination** — a term whose component vector is all zeros
  contributes nothing and is skipped;
* **parallel processing** — the ``4^K`` term space is partitioned across a
  ``multiprocessing`` pool with no inter-worker communication (the paper's
  compute-node model).

A faithful-but-faster ``tensor_network`` strategy (pairwise contraction of
the same tensors via ``einsum``) is provided as an ablation — it computes
the identical output while avoiding the explicit 4^K enumeration.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit, Subcircuit
from ..cutting.variants import SubcircuitResult
from ..utils import permute_qubits
from .attribution import TermTensor, build_term_tensor

__all__ = [
    "ReconstructionStats",
    "ReconstructionResult",
    "Reconstructor",
    "reconstruct_full",
    "binned_tensor",
]

_CHUNK = 1 << 14  # assignments processed per vectorized row computation


@dataclass
class ReconstructionStats:
    """Bookkeeping the benches report alongside the distribution."""

    num_cuts: int
    num_terms: int
    num_skipped: int
    elapsed_seconds: float
    workers: int
    strategy: str
    subcircuit_order: Tuple[int, ...]


@dataclass
class ReconstructionResult:
    probabilities: np.ndarray  # original circuit qubit order
    stats: ReconstructionStats


def _row_indices(
    tensor: TermTensor, assignments: np.ndarray, num_cuts: int
) -> np.ndarray:
    """Vectorized map from global assignment indices to tensor rows."""
    rows = np.zeros(assignments.shape, dtype=np.int64)
    for cut_id in tensor.cut_order:
        digit = (assignments >> (2 * (num_cuts - 1 - cut_id))) & 3
        rows = (rows << 2) | digit
    return rows


def _accumulate_range(
    tensors: Sequence[TermTensor],
    order: Sequence[int],
    num_cuts: int,
    start: int,
    stop: int,
    early_termination: bool,
) -> Tuple[np.ndarray, int]:
    """Sum the Kronecker terms for assignments in ``[start, stop)``."""
    ordered = [tensors[i] for i in order]
    total_qubits = sum(t.num_effective for t in ordered)
    accumulator = np.zeros(1 << total_qubits)
    skipped = 0
    for chunk_start in range(start, stop, _CHUNK):
        chunk_stop = min(chunk_start + _CHUNK, stop)
        assignments = np.arange(chunk_start, chunk_stop, dtype=np.int64)
        rows = [_row_indices(t, assignments, num_cuts) for t in ordered]
        if early_termination:
            alive = np.ones(assignments.shape, dtype=bool)
            for tensor, tensor_rows in zip(ordered, rows):
                alive &= tensor.nonzero[tensor_rows]
            skipped += int((~alive).sum())
            survivors = np.nonzero(alive)[0]
        else:
            survivors = np.arange(assignments.size)
        for position in survivors:
            vectors = [
                tensor.data[tensor_rows[position]]
                for tensor, tensor_rows in zip(ordered, rows)
            ]
            accumulator += reduce(np.kron, vectors)
    return accumulator, skipped


# -- multiprocessing plumbing -------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(tensors, order, num_cuts, early_termination):  # pragma: no cover
    _WORKER_STATE["args"] = (tensors, order, num_cuts, early_termination)


def _worker_run(bounds):  # pragma: no cover - exercised via integration tests
    tensors, order, num_cuts, early_termination = _WORKER_STATE["args"]
    return _accumulate_range(
        tensors, order, num_cuts, bounds[0], bounds[1], early_termination
    )


class Reconstructor:
    """FD reconstruction engine bound to one cut circuit's results."""

    def __init__(
        self,
        cut_circuit: CutCircuit,
        results: Optional[Sequence[SubcircuitResult]] = None,
        tensors: Optional[Sequence[TermTensor]] = None,
    ):
        self.cut_circuit = cut_circuit
        if tensors is None:
            if results is None:
                raise ValueError("provide subcircuit results or term tensors")
            tensors = [build_term_tensor(result) for result in results]
        self.tensors = sorted(tensors, key=lambda t: t.subcircuit_index)
        if len(self.tensors) != cut_circuit.num_subcircuits:
            raise ValueError(
                f"{len(self.tensors)} tensors for "
                f"{cut_circuit.num_subcircuits} subcircuits"
            )

    # ------------------------------------------------------------------
    def subcircuit_order(self, greedy: bool = True) -> List[int]:
        """Greedy order: smallest effective size first (§4.2)."""
        indices = list(range(len(self.tensors)))
        if greedy:
            indices.sort(key=lambda i: self.tensors[i].num_effective)
        return indices

    def reconstruct(
        self,
        workers: int = 1,
        greedy_order: bool = True,
        early_termination: bool = True,
        strategy: str = "kron",
    ) -> ReconstructionResult:
        """Compute the full 2**n distribution of the uncut circuit."""
        if strategy not in ("kron", "tensor_network"):
            raise ValueError(f"unknown strategy {strategy!r}")
        began = time.perf_counter()
        num_cuts = self.cut_circuit.num_cuts
        order = self.subcircuit_order(greedy_order)
        if strategy == "tensor_network":
            vector = self._contract_tensor_network(order)
            skipped = 0
        else:
            vector, skipped = self._enumerate_kron(
                order, workers, early_termination
            )
        vector = vector * (0.5**num_cuts)
        probabilities = self._to_original_order(vector, order)
        elapsed = time.perf_counter() - began
        stats = ReconstructionStats(
            num_cuts=num_cuts,
            num_terms=4**num_cuts,
            num_skipped=skipped,
            elapsed_seconds=elapsed,
            workers=workers,
            strategy=strategy,
            subcircuit_order=tuple(order),
        )
        return ReconstructionResult(probabilities=probabilities, stats=stats)

    # ------------------------------------------------------------------
    def _enumerate_kron(
        self, order: Sequence[int], workers: int, early_termination: bool
    ) -> Tuple[np.ndarray, int]:
        num_cuts = self.cut_circuit.num_cuts
        total = 4**num_cuts
        if workers <= 1 or total < 256:
            return _accumulate_range(
                self.tensors, order, num_cuts, 0, total, early_termination
            )
        bounds = []
        step = (total + workers - 1) // workers
        for start in range(0, total, step):
            bounds.append((start, min(start + step, total)))
        with multiprocessing.Pool(
            processes=workers,
            initializer=_worker_init,
            initargs=(self.tensors, list(order), num_cuts, early_termination),
        ) as pool:
            partials = pool.map(_worker_run, bounds)
        vector = np.zeros_like(partials[0][0])
        skipped = 0
        for partial, partial_skipped in partials:
            vector += partial
            skipped += partial_skipped
        return vector, skipped

    def _contract_tensor_network(self, order: Sequence[int]) -> np.ndarray:
        import string

        letters = iter(string.ascii_letters)
        cut_letters = {
            cut.cut_id: next(letters) for cut in self.cut_circuit.cuts
        }
        operands = []
        subscripts = []
        output = []
        for index in order:
            tensor = self.tensors[index]
            shape = (4,) * tensor.num_cuts + (1 << tensor.num_effective,)
            operands.append(tensor.data.reshape(shape))
            out_letter = next(letters)
            subscripts.append(
                "".join(cut_letters[c] for c in tensor.cut_order) + out_letter
            )
            output.append(out_letter)
        expression = ",".join(subscripts) + "->" + "".join(output)
        contracted = np.einsum(expression, *operands, optimize="greedy")
        return contracted.reshape(-1)

    def _to_original_order(
        self, vector: np.ndarray, order: Sequence[int]
    ) -> np.ndarray:
        wires = self.cut_circuit.output_wire_order(order)
        permutation = [wires.index(w) for w in range(len(wires))]
        return permute_qubits(vector, permutation)


def reconstruct_full(
    cut_circuit: CutCircuit,
    results: Sequence[SubcircuitResult],
    workers: int = 1,
    greedy_order: bool = True,
    early_termination: bool = True,
    strategy: str = "kron",
) -> ReconstructionResult:
    """One-call FD query: results -> full uncut distribution."""
    reconstructor = Reconstructor(cut_circuit, results=results)
    return reconstructor.reconstruct(
        workers=workers,
        greedy_order=greedy_order,
        early_termination=early_termination,
        strategy=strategy,
    )


def binned_tensor(
    tensor: TermTensor,
    subcircuit: Subcircuit,
    roles: Dict[int, Tuple],
) -> Tuple[TermTensor, List[int]]:
    """Collapse a term tensor per a DD qubit-role spec.

    ``roles`` maps each original wire to ``("active",)``, ``("merged",)``
    or ``("fixed", bit)``.  Output lines of the subcircuit are summed out
    (merged), indexed (fixed) or kept (active); the returned tensor spans
    only the active lines, and the second return value lists their wires
    in axis order.
    """
    output_lines = subcircuit.output_lines
    shape = (tensor.data.shape[0],) + (2,) * len(output_lines)
    working = tensor.data.reshape(shape)
    active_wires: List[int] = []
    # Walk output axes from the last so earlier axis numbers stay valid.
    for position in reversed(range(len(output_lines))):
        role = roles[output_lines[position].wire]
        axis = 1 + position
        if role[0] == "merged":
            working = working.sum(axis=axis)
        elif role[0] == "fixed":
            working = np.take(working, int(role[1]), axis=axis)
        elif role[0] == "active":
            active_wires.insert(0, output_lines[position].wire)
        else:
            raise ValueError(f"unknown qubit role {role!r}")
    data = working.reshape(tensor.data.shape[0], -1)
    collapsed = TermTensor(
        subcircuit_index=tensor.subcircuit_index,
        cut_order=list(tensor.cut_order),
        num_effective=len(active_wires),
        data=data,
        nonzero=np.any(data != 0.0, axis=1),
    )
    return collapsed, active_wires
