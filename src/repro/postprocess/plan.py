"""Query plans: the shared abstraction FD and DD queries dispatch through.

Every postprocessing query — the full-definition reconstruction, each
dynamic-definition recursion, and each shard of a streaming FD query —
evaluates the same object: the ``4^K``-term contraction of per-subcircuit
term tensors, *collapsed* per a qubit-role spec that marks each original
wire ``active`` (kept), ``merged`` (summed out) or ``fixed`` (indexed).
This module owns that shared machinery:

:class:`QueryPlan`
    A role spec plus the requested output qubit order.  ``FD`` is the
    plan with every wire active; a DD recursion is a plan with the
    zoomed wires fixed and the new batch active; a streaming-FD shard is
    a plan with the shard qubits fixed and the rest active.  Plans are
    *prepared* (tensors collapsed through a provider) and *contracted*
    (through the shared :class:`~repro.postprocess.engine.ContractionEngine`),
    either one at a time or as a parallel batch.

:class:`CachingTensorProvider`
    The incremental collapse cache.  A subcircuit's collapsed tensor
    depends only on the roles of *its own* output wires (the restricted
    role signature), so sibling bins, successive recursions and
    neighbouring shards can reuse collapses instead of re-summing full
    tensors.  The cache stores the *generalized* collapse (every fixed
    wire kept active) and derives fixed variants by cheap axis indexing:
    all ``2^s`` shards of a streaming query, or all sibling bins of a DD
    zoom round, share a single full collapse per subcircuit.

:func:`binned_tensor`
    The primitive collapse of one term tensor per a role spec (formerly
    in :mod:`.reconstruct`, re-exported there for compatibility).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit, Subcircuit
from ..cutting.variants import SubcircuitResult
from ..obs import trace
from ..utils import permute_qubits
from .attribution import TermTensor, build_term_tensor
from .engine import ContractionEngine, ContractionResult

__all__ = [
    "Role",
    "RoleMap",
    "Signature",
    "binned_tensor",
    "restricted_signature",
    "generalized_signature",
    "CacheStats",
    "TensorProvider",
    "CachingTensorProvider",
    "PrecomputedTensorProvider",
    "QueryPlan",
    "PreparedPlan",
    "PlanExecution",
]

#: One wire's role: ``("active",)`` | ``("merged",)`` | ``("fixed", bit)``.
Role = Tuple

#: Role of every original wire, keyed by wire index.
RoleMap = Dict[int, Role]

#: A subcircuit's restricted role signature (its output wires only).
Signature = Tuple[Tuple[int, Role], ...]


class TensorProvider(Protocol):
    """Supplies collapsed term tensors for a qubit-role spec."""

    @property
    def num_qubits(self) -> int: ...

    @property
    def num_cuts(self) -> int: ...

    def collapsed(
        self, roles: RoleMap
    ) -> List[Tuple[TermTensor, List[int]]]: ...


# ----------------------------------------------------------------------
# The collapse primitive
# ----------------------------------------------------------------------

def binned_tensor(
    tensor: TermTensor,
    subcircuit: Subcircuit,
    roles: Dict[int, Tuple],
) -> Tuple[TermTensor, List[int]]:
    """Collapse a term tensor per a DD qubit-role spec.

    ``roles`` maps each original wire to ``("active",)``, ``("merged",)``
    or ``("fixed", bit)``.  Output lines of the subcircuit are summed out
    (merged), indexed (fixed) or kept (active); the returned tensor spans
    only the active lines, and the second return value lists their wires
    in axis order.
    """
    output_lines = subcircuit.output_lines
    shape = (tensor.data.shape[0],) + (2,) * len(output_lines)
    working = tensor.data.reshape(shape)
    active_wires: List[int] = []
    # Walk output axes from the last so earlier axis numbers stay valid.
    for position in reversed(range(len(output_lines))):
        role = roles[output_lines[position].wire]
        axis = 1 + position
        if role[0] == "merged":
            working = working.sum(axis=axis)
        elif role[0] == "fixed":
            working = np.take(working, int(role[1]), axis=axis)
        elif role[0] == "active":
            active_wires.insert(0, output_lines[position].wire)
        else:
            raise ValueError(f"unknown qubit role {role!r}")
    data = working.reshape(tensor.data.shape[0], -1)
    collapsed = TermTensor(
        subcircuit_index=tensor.subcircuit_index,
        cut_order=list(tensor.cut_order),
        num_effective=len(active_wires),
        data=data,
        nonzero=np.any(data != 0.0, axis=1),
    )
    return collapsed, active_wires


# ----------------------------------------------------------------------
# Role signatures (collapse-cache keys)
# ----------------------------------------------------------------------

def restricted_signature(subcircuit: Subcircuit, roles: RoleMap) -> Signature:
    """The roles restricted to this subcircuit's output wires.

    A subcircuit's collapsed tensor depends on nothing else, so this is
    the collapse-cache key: two role maps that agree on the subcircuit's
    output wires collapse identically no matter how the rest of the
    circuit is binned.
    """
    return tuple(
        (line.wire, tuple(roles[line.wire]))
        for line in subcircuit.output_lines
    )


def generalized_signature(signature: Signature) -> Signature:
    """The signature with every fixed wire promoted back to active.

    The generalized collapse retains the fixed wires as tensor axes, so
    any fixed-bit assignment over them can be *derived* by indexing —
    much cheaper than re-collapsing the full tensor.  All sibling bins
    of a DD zoom round and all shards of a streaming FD query share one
    generalized signature per subcircuit.
    """
    return tuple(
        (wire, ("active",) if role[0] == "fixed" else role)
        for wire, role in signature
    )


@dataclass
class CacheStats:
    """Collapse-cache counters (reported by DD/stream query stats)."""

    hits: int = 0
    misses: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingTensorProvider:
    """Base tensor provider with the incremental collapse cache.

    Subclasses implement :meth:`_collapse_subcircuit` — the raw collapse
    of one subcircuit for a role map — and inherit a cache keyed by the
    *generalized* restricted signature.  On a miss the provider collapses
    once with fixed wires kept active, stores that, and derives the
    requested fixed assignment by indexing; subsequent bins/shards that
    differ only in fixed values (or leave the subcircuit untouched) are
    cache hits.
    """

    def __init__(
        self,
        cut_circuit: CutCircuit,
        cache: bool = True,
        cache_limit: int = 512,
    ):
        self.cut_circuit = cut_circuit
        self.cache_enabled = bool(cache)
        self.cache_limit = int(cache_limit)
        self._cache: "OrderedDict[Tuple[int, Signature], Tuple[TermTensor, List[int]]]" = (
            OrderedDict()
        )
        self.cache_stats = CacheStats()

    @property
    def num_qubits(self) -> int:
        return self.cut_circuit.circuit.num_qubits

    @property
    def num_cuts(self) -> int:
        return self.cut_circuit.num_cuts

    # -- subclass hook --------------------------------------------------
    def _collapse_subcircuit(
        self, subcircuit: Subcircuit, roles: RoleMap
    ) -> Tuple[TermTensor, List[int]]:
        raise NotImplementedError

    # -- public API -----------------------------------------------------
    def collapsed(self, roles: RoleMap) -> List[Tuple[TermTensor, List[int]]]:
        return [
            self._collapsed_one(subcircuit, roles)
            for subcircuit in self.cut_circuit.subcircuits
        ]

    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_stats = CacheStats()

    # -- cache machinery ------------------------------------------------
    def _collapsed_one(
        self, subcircuit: Subcircuit, roles: RoleMap
    ) -> Tuple[TermTensor, List[int]]:
        if not self.cache_enabled:
            return self._collapse_subcircuit(subcircuit, roles)
        signature = restricted_signature(subcircuit, roles)
        generalized = generalized_signature(signature)
        key = (subcircuit.index, generalized)
        entry = self._cache.get(key)
        if entry is None:
            self.cache_stats.misses += 1
            if generalized == signature:
                entry = self._collapse_subcircuit(subcircuit, roles)
            else:
                promoted = dict(roles)
                for wire, role in generalized:
                    promoted[wire] = role
                entry = self._collapse_subcircuit(subcircuit, promoted)
            self._cache[key] = entry
            if len(self._cache) > self.cache_limit:
                self._cache.popitem(last=False)
            self.cache_stats.entries = len(self._cache)
        else:
            self.cache_stats.hits += 1
            self._cache.move_to_end(key)
        if generalized == signature:
            return entry
        return _derive_fixed(entry[0], entry[1], signature)


class PrecomputedTensorProvider(CachingTensorProvider):
    """Default provider: collapse fully-evaluated subcircuit term tensors.

    Collapses are served through the incremental cache: a subcircuit is
    re-collapsed only when the roles of *its own* output wires change in
    a way that cannot be derived from a cached generalized collapse.
    """

    def __init__(
        self,
        cut_circuit: CutCircuit,
        results: Optional[Sequence[SubcircuitResult]] = None,
        tensors: Optional[Sequence[TermTensor]] = None,
        cache: bool = True,
        cache_limit: int = 512,
    ):
        super().__init__(cut_circuit, cache=cache, cache_limit=cache_limit)
        if tensors is None:
            if results is None:
                raise ValueError("provide subcircuit results or term tensors")
            tensors = [build_term_tensor(result) for result in results]
        self.tensors = sorted(tensors, key=lambda t: t.subcircuit_index)

    def _collapse_subcircuit(
        self, subcircuit: Subcircuit, roles: RoleMap
    ) -> Tuple[TermTensor, List[int]]:
        return binned_tensor(
            self.tensors[subcircuit.index], subcircuit, roles
        )


def _derive_fixed(
    tensor: TermTensor, active_wires: List[int], signature: Signature
) -> Tuple[TermTensor, List[int]]:
    """Index the fixed wires of ``signature`` out of a generalized tensor.

    Selection commutes bitwise with the merged sums already performed, so
    the result is identical to collapsing the full tensor directly with
    the fixed roles (the property tests assert exact equality).
    """
    fixed = {
        wire: int(role[1]) for wire, role in signature if role[0] == "fixed"
    }
    position_of = {wire: index for index, wire in enumerate(active_wires)}
    shape = (tensor.data.shape[0],) + (2,) * len(active_wires)
    working = tensor.data.reshape(shape)
    # Index from the highest axis down so earlier axis numbers stay valid.
    for wire in sorted(fixed, key=lambda w: -position_of[w]):
        working = np.take(working, fixed[wire], axis=1 + position_of[wire])
    remaining = [wire for wire in active_wires if wire not in fixed]
    data = working.reshape(tensor.data.shape[0], -1)
    derived = TermTensor(
        subcircuit_index=tensor.subcircuit_index,
        cut_order=list(tensor.cut_order),
        num_effective=len(remaining),
        data=data,
        nonzero=np.any(data != 0.0, axis=1),
    )
    return derived, remaining


# ----------------------------------------------------------------------
# Query plans
# ----------------------------------------------------------------------

@dataclass
class PlanExecution:
    """The outcome of executing one query plan."""

    probabilities: np.ndarray
    contraction: ContractionResult
    order: Tuple[int, ...]


@dataclass
class QueryPlan:
    """A role spec plus the requested output qubit order.

    ``active`` lists the wires whose joint distribution the query wants,
    in output order; every wire in it must have role ``("active",)``.
    """

    num_qubits: int
    num_cuts: int
    roles: RoleMap
    active: Tuple[int, ...]

    @classmethod
    def full(cls, num_qubits: int, num_cuts: int) -> "QueryPlan":
        """The FD plan: every wire active, original order."""
        return cls(
            num_qubits=num_qubits,
            num_cuts=num_cuts,
            roles={wire: ("active",) for wire in range(num_qubits)},
            active=tuple(range(num_qubits)),
        )

    @classmethod
    def binned(
        cls,
        num_qubits: int,
        num_cuts: int,
        fixed: Dict[int, int],
        active: Sequence[int],
    ) -> "QueryPlan":
        """A binned plan: ``fixed`` wires indexed, ``active`` kept,
        every other wire merged (one DD recursion or one FD shard)."""
        active_set = set(active)
        roles: RoleMap = {}
        for wire in range(num_qubits):
            if wire in fixed:
                roles[wire] = ("fixed", int(fixed[wire]))
            elif wire in active_set:
                roles[wire] = ("active",)
            else:
                roles[wire] = ("merged",)
        return cls(
            num_qubits=num_qubits,
            num_cuts=num_cuts,
            roles=roles,
            active=tuple(active),
        )

    # ------------------------------------------------------------------
    def prepared(
        self,
        provider: TensorProvider,
        order: Optional[Sequence[int]] = None,
    ) -> "PreparedPlan":
        """Collapse the tensors through ``provider`` and fix the
        contraction order (greedy smallest-first unless given)."""
        collapsed = provider.collapsed(self.roles)
        tensors = [item[0] for item in collapsed]
        if order is None:
            order = sorted(
                range(len(tensors)), key=lambda i: tensors[i].num_effective
            )
        else:
            order = list(order)
        kron_wires: List[int] = []
        for index in order:
            kron_wires.extend(collapsed[index][1])
        # Inverse map instead of repeated list.index() — O(n), not O(n^2).
        position_of = {wire: pos for pos, wire in enumerate(kron_wires)}
        permutation = [position_of[wire] for wire in self.active]
        return PreparedPlan(
            plan=self,
            tensors=tensors,
            order=tuple(order),
            permutation=permutation,
        )

    def execute(
        self,
        provider: TensorProvider,
        engine: ContractionEngine,
        order: Optional[Sequence[int]] = None,
        strategy: Optional[str] = None,
        workers: Optional[int] = None,
        early_termination: Optional[bool] = None,
    ) -> PlanExecution:
        """Prepare and contract in one call."""
        with trace.span(
            "query.plan.execute", {"active": len(self.active)}
        ):
            return self.prepared(provider, order=order).contract(
                engine,
                strategy=strategy,
                workers=workers,
                early_termination=early_termination,
            )


@dataclass
class PreparedPlan:
    """A plan with tensors collapsed and contraction order fixed."""

    plan: QueryPlan
    tensors: List[TermTensor]
    order: Tuple[int, ...]
    permutation: List[int]

    @property
    def payload(self) -> Tuple[List[TermTensor], Tuple[int, ...], int]:
        """The (tensors, order, num_cuts) triple for batch contraction."""
        return (self.tensors, self.order, self.plan.num_cuts)

    def contract(
        self,
        engine: ContractionEngine,
        strategy: Optional[str] = None,
        workers: Optional[int] = None,
        early_termination: Optional[bool] = None,
    ) -> PlanExecution:
        contraction = engine.contract(
            self.tensors,
            self.order,
            self.plan.num_cuts,
            strategy=strategy,
            workers=workers,
            early_termination=early_termination,
        )
        return self.finish(contraction)

    def finish(self, contraction: ContractionResult) -> PlanExecution:
        """Scale and permute a raw contraction into plan output order."""
        vector = contraction.vector * (0.5 ** self.plan.num_cuts)
        probabilities = permute_qubits(vector, self.permutation)
        return PlanExecution(
            probabilities=probabilities,
            contraction=contraction,
            order=self.order,
        )
