"""Cost models: Eq. (14) FLOP estimator and classical-simulation baseline.

The paper's MIP minimizes the number of floating-point multiplications of
the FD build step (Eq. 14).  The same expression, paired with a simple
statevector-simulation cost model, lets us extrapolate the *shape* of
Fig. 6 and Fig. 10 to the paper's full 35-100 qubit scale on hardware that
cannot hold those vectors (see DESIGN.md substitutions).
"""

from __future__ import annotations

from typing import Sequence

from ..circuits import QuantumCircuit
from ..cutting.cutter import CutCircuit
from ..cutting.model import objective_from_f

__all__ = [
    "reconstruction_flops",
    "classical_simulation_flops",
    "estimate_speedup",
    "dd_recursion_flops",
]


def reconstruction_flops(cut: CutCircuit) -> float:
    """Eq. (14) priced on an actual cut circuit (greedy order)."""
    f_values = [sub.num_effective for sub in cut.subcircuits]
    return objective_from_f(cut.num_cuts, f_values)


def classical_simulation_flops(circuit: QuantumCircuit) -> float:
    """Statevector-simulation cost model: each k-qubit gate touches the
    full 2**n state with a 2**k-wide contraction."""
    total = 0.0
    state = float(1 << circuit.num_qubits)
    for gate in circuit:
        total += state * float(1 << gate.num_qubits)
    return total


def estimate_speedup(cut: CutCircuit) -> float:
    """Modelled classical-simulation / CutQC postprocessing FLOP ratio.

    Ignores quantum-device time like the paper (§5.1: gate times are
    nanoseconds; subcircuits run in parallel on QPUs) and counts only the
    dominant classical work on each side.
    """
    build = reconstruction_flops(cut)
    if build <= 0:
        return float("inf")
    return classical_simulation_flops(cut.circuit) / build


def dd_recursion_flops(
    num_cuts: int, active_per_subcircuit: Sequence[int]
) -> float:
    """Cost of one DD recursion with the given active-qubit split.

    Identical to Eq. (14) but with the merged subcircuit outputs: ``f_c``
    becomes the number of *active* output qubits each subcircuit retains.
    """
    return objective_from_f(num_cuts, list(active_per_subcircuit))
