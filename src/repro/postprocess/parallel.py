"""Process-parallel query runtime: one warm worker pool for every query path.

The pre-existing parallel paths each paid the full process-pool setup
cost per call: :class:`~repro.core.executor.VariantExecutor` and
:meth:`~repro.postprocess.engine.ContractionEngine.contract_batch` spun
up a fresh ``multiprocessing.Pool`` per invocation (fork + import +
pickle of every tensor, every time), and the streaming-FD shard loop ran
strictly serially in the parent.  :class:`WorkerPool` replaces all of
that with a single persistent, spawn-safe process pool shared by the
whole pipeline:

* **Shared-memory transport** — term tensors are *published* once via
  ``multiprocessing.shared_memory`` (:meth:`WorkerPool.publish`); work
  items then carry only role-signature plan descriptions (a few hundred
  bytes), never the tensors.  Workers attach lazily and keep their own
  collapse caches, so all ``2^s`` shards of a streaming query cost one
  generalized collapse per worker.
* **Tree reduction** — a single large ``kron`` contraction is split into
  assignment ranges whose partial sums live in shared memory and are
  merged pairwise *in the workers* (:meth:`WorkerPool.contract_kron`),
  log2(w) rounds instead of ``w`` serial adds in the parent.
* **Observability** — :class:`ParallelStats` reports per-kind task
  counts, busy seconds, utilization and bytes published; the job
  service surfaces it under ``GET /stats``.

Spawn-safety: every task function is module-level (importable by a
``spawn`` child), so the pool works under the default start method of
macOS and Windows as well as ``fork`` on Linux.  Workers unregister
attached segments from the ``resource_tracker`` so ownership (and the
single ``unlink``) stays with the publishing parent.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import chaos
from ..faults import PoisonedTaskError, PoolUnrecoverableError
from ..obs import trace
from ..obs.metrics import get_registry
from .attribution import TermTensor
from .engine import (
    ContractionEngine,
    ContractionResult,
    _accumulate_range,
    contract_terms,
    resolve_strategy,
)
from .plan import PrecomputedTensorProvider, QueryPlan

__all__ = [
    "ParallelStats",
    "PublishedTensors",
    "WorkerPool",
    "publish_cache_gauges",
]

#: Tensors below this many bytes ride inline in the task pickle; larger
#: ones go through shared memory.
_MIN_SHM_BYTES = 1 << 16

#: Result vectors below this many bytes are pickled straight back.
_MIN_SHM_RESULT_BYTES = 1 << 18


# ----------------------------------------------------------------------
# Worker-side state (one copy per worker process)
# ----------------------------------------------------------------------

_WORKER_SHM: Dict[str, object] = {}  # segment name -> SharedMemory
_WORKER_PROVIDERS: Dict[str, object] = {}  # handle id -> provider
_WORKER_PROVIDER_LIMIT = 8


def _attach_segment(name: str):
    """Attach (and cache) a shared-memory segment in this worker.

    The resource tracker is one process shared by the whole tree and its
    registry is a *set*, so the attach's implicit re-register collapses
    into the parent's original entry; the single ``unlink`` the owning
    parent performs at free/close time balances it.  (Manually
    unregistering here would make that unlink a double-remove.)
    """
    from multiprocessing import shared_memory

    segment = _WORKER_SHM.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _WORKER_SHM[name] = segment
    return segment


def _create_unowned_segment(size: int):
    """Create a segment whose lifetime the *parent* will manage.

    The parent adopts the name from the task result and performs the
    one-and-only ``unlink`` (see :func:`_attach_segment` on why no
    manual tracker bookkeeping happens here).
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=size)


def _tensor_from_ref(ref) -> TermTensor:
    """Materialize a :class:`TermTensor` from a transport reference.

    Published tensors (``cached=True``) stay zero-copy views over the
    worker's cached attachment — they live as long as the publication.
    Per-call transient tensors (a ``contract_batch``/``contract_kron``
    shipment the parent frees right after the call) are *copied* out
    and the segment detached immediately, so worker memory does not
    grow with every batch the pool ever served.
    """
    if ref[0] == "inline":
        return ref[1]
    (_, name, shape, dtype, subcircuit_index, cut_order, num_effective,
     cached) = ref
    if cached:
        segment = _attach_segment(name)
        data = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    else:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
        data = np.array(
            np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        )
        segment.close()
    return TermTensor(
        subcircuit_index=subcircuit_index,
        cut_order=list(cut_order),
        num_effective=num_effective,
        data=data,
        nonzero=np.any(data != 0.0, axis=1),
    )


def _ship_vector(vector: np.ndarray, via_shm: bool):
    """Worker-side: return a vector inline or through a fresh segment."""
    if not via_shm or vector.nbytes < _MIN_SHM_RESULT_BYTES:
        return ("inline", vector)
    segment = _create_unowned_segment(vector.nbytes)
    out = np.ndarray(vector.shape, dtype=vector.dtype, buffer=segment.buf)
    out[:] = vector
    name = segment.name
    segment.close()
    return ("shm", name, vector.shape, vector.dtype.str)


def _provider_for(handle_id: str, cut_blob: bytes, refs) -> object:
    """Worker-local provider over the published tensors (cached)."""
    provider = _WORKER_PROVIDERS.get(handle_id)
    if provider is None:
        cut = pickle.loads(cut_blob)
        tensors = [_tensor_from_ref(ref) for ref in refs]
        provider = PrecomputedTensorProvider(cut, tensors=tensors)
        if len(_WORKER_PROVIDERS) >= _WORKER_PROVIDER_LIMIT:
            _WORKER_PROVIDERS.clear()
        _WORKER_PROVIDERS[handle_id] = provider
    return provider


@dataclass
class _TaskMeta:
    """Per-task accounting shipped back with every result."""

    pid: int
    elapsed_seconds: float


# ----------------------------------------------------------------------
# Task functions (module-level: picklable under spawn)
# ----------------------------------------------------------------------

def _run_contract(payload) -> Tuple[ContractionResult, _TaskMeta]:
    """One independent contraction (a DD bin or an explicit batch item)."""
    refs, order, num_cuts, strategy, early = payload
    began = time.perf_counter()
    tensors = [_tensor_from_ref(ref) for ref in refs]
    result = contract_terms(
        tensors,
        order,
        num_cuts,
        strategy=strategy,
        workers=1,
        early_termination=early,
    )
    meta = _TaskMeta(pid=os.getpid(), elapsed_seconds=time.perf_counter() - began)
    return result, meta


def _run_plan(payload):
    """Execute one :class:`QueryPlan` against published tensors.

    Returns ``(vector_ref_or_candidates, cache_hits, cache_misses,
    shard_nbytes, meta)``.  With ``top_k`` set, only the shard's top-k
    ``(probability, offset)`` candidates come back (in the exact
    ``argpartition`` order the serial fold uses) instead of the vector.
    """
    handle_id, cut_blob, refs, plan, strategy, early, top_k = payload
    began = time.perf_counter()
    provider = _provider_for(handle_id, cut_blob, refs)
    stats = provider.cache_stats
    hits0, misses0 = stats.hits, stats.misses
    engine = ContractionEngine(
        strategy=strategy, workers=1, early_termination=early
    )
    probabilities = plan.execute(provider, engine).probabilities
    hits = provider.cache_stats.hits - hits0
    misses = provider.cache_stats.misses - misses0
    nbytes = int(probabilities.nbytes)
    if top_k is not None:
        # The same candidate selection the serial fold applies, so the
        # parent's merge replays the serial heap exactly.
        from .stream import _shard_top_candidates

        result = ("topk", _shard_top_candidates(probabilities, top_k))
    else:
        result = _ship_vector(probabilities, via_shm=True)
    meta = _TaskMeta(pid=os.getpid(), elapsed_seconds=time.perf_counter() - began)
    return result, hits, misses, nbytes, meta


def _run_kron_range(payload):
    """Partial blocked-Kronecker sum over one assignment range."""
    refs, order, num_cuts, start, stop, early = payload
    began = time.perf_counter()
    tensors = [_tensor_from_ref(ref) for ref in refs]
    vector, skipped = _accumulate_range(
        tensors, order, num_cuts, start, stop, early
    )
    shipped = _ship_vector(vector, via_shm=True)
    meta = _TaskMeta(pid=os.getpid(), elapsed_seconds=time.perf_counter() - began)
    return shipped, skipped, meta


def _run_reduce(payload):
    """One tree-reduction step: a fresh ``out = left + right`` segment.

    Out-of-place so the step is *idempotent*: a retried reduce (its
    worker killed mid-add) recomputes the same sum instead of
    double-adding into a half-mutated accumulator.  The parent adopts
    the result segment and frees both inputs as the tree collapses.
    """
    from multiprocessing import shared_memory

    left_ref, right_ref = payload
    began = time.perf_counter()
    _, left_name, shape, dtype = left_ref
    _, right_name, _, _ = right_ref
    left_segment = shared_memory.SharedMemory(name=left_name)
    right_segment = shared_memory.SharedMemory(name=right_name)
    left = np.ndarray(shape, dtype=np.dtype(dtype), buffer=left_segment.buf)
    right = np.ndarray(shape, dtype=np.dtype(dtype), buffer=right_segment.buf)
    out_segment = _create_unowned_segment(max(1, left.nbytes))
    out = np.ndarray(shape, dtype=np.dtype(dtype), buffer=out_segment.buf)
    np.add(left, right, out=out)
    name = out_segment.name
    del out, left, right
    out_segment.close()
    left_segment.close()
    right_segment.close()
    meta = _TaskMeta(pid=os.getpid(), elapsed_seconds=time.perf_counter() - began)
    return ("shm", name, shape, dtype), meta


def _run_variant_batch(payload):
    """Evaluate one whole init-batch of subcircuit variants, fused.

    The payload carries the subcircuit plus init *label* tuples — a few
    hundred bytes — instead of ``3^O * 4^rho`` pickled circuits; the
    returned dict holds every derived ``(inits, bases)`` distribution.
    Noisy payloads append a
    :class:`~repro.cutting.variants.NoisyEvalSpec`; the transpiled
    geometry and fused body plan it implies are memoized per worker
    process, so later chunks of the same subcircuit land warm.
    """
    # Local import: repro.cutting does not import repro.postprocess, so
    # this stays cycle-free and spawn-safe.
    from ..cutting.variants import (
        batched_noisy_variant_probabilities,
        batched_variant_probabilities,
    )

    began = time.perf_counter()
    if len(payload) == 4:
        subcircuit, init_combos, fusion_width, spec = payload
        probabilities, passes = batched_noisy_variant_probabilities(
            subcircuit, spec, fusion_width=fusion_width,
            init_combos=init_combos,
        )
    else:
        subcircuit, init_combos, fusion_width = payload
        probabilities, passes = batched_variant_probabilities(
            subcircuit, fusion_width=fusion_width, init_combos=init_combos
        )
    meta = _TaskMeta(pid=os.getpid(), elapsed_seconds=time.perf_counter() - began)
    return probabilities, passes, meta


def _run_backend_chunk(payload):
    """Evaluate a chunk of circuits through a pickled backend callable."""
    backend, circuits = payload
    began = time.perf_counter()
    vectors = [np.asarray(backend(circuit), dtype=float) for circuit in circuits]
    meta = _TaskMeta(pid=os.getpid(), elapsed_seconds=time.perf_counter() - began)
    return vectors, meta


#: Task kind -> module-level function; the traced wrapper dispatches by
#: kind so payload tuples keep their exact untraced shapes.
_TASK_FNS = {
    "contract": _run_contract,
    "plan": _run_plan,
    "kron-range": _run_kron_range,
    "reduce": _run_reduce,
    "variant-batch": _run_variant_batch,
    "noisy-variant-batch": _run_variant_batch,
    "backend": _run_backend_chunk,
}


def _run_traced(payload):
    """Run a task under a worker-local root span; ship the tree home.

    Used only when the *submitting* context is traced: the worker opens
    ``worker.<kind>`` as its own root (tagging the worker pid), runs the
    ordinary task function — whose internal ``trace.span`` calls now
    record — and returns ``(result, span_tree_dict)``.  The parent grafts
    the tree under the span that submitted the task, so cross-process
    work shows up inside the job's trace.
    """
    kind, inner = payload
    with trace.start(f"worker.{kind}") as root:
        result = _TASK_FNS[kind](inner)
    return result, root.to_dict()


def _run_cache_stats(_payload):
    """Report this worker's hidden per-process cache counters.

    Covers the fused-body memo (:func:`repro.sim.batch.fusion_stats`)
    and the noisy-geometry cache
    (:func:`repro.cutting.variants.geometry_stats`); the parent folds
    the reports into pid-labelled registry gauges.
    """
    from ..cutting.variants import geometry_stats
    from ..sim.batch import fusion_stats

    return {
        "pid": os.getpid(),
        "fusion": fusion_stats(),
        "geometry": geometry_stats(),
    }


_TASK_FNS["cache-stats"] = _run_cache_stats


def _shippable_error(error: BaseException) -> BaseException:
    """An exception object guaranteed to pickle back to the parent."""
    try:
        pickle.dumps(error)
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _result_segment_names(kind, result) -> List[str]:
    """Worker-created shm segment names inside a task result.

    Used to reclaim segments of results nobody will consume (abandoned
    streams, stale duplicate attempts).  Tolerant of every task kind:
    only ``plan``/``kron-range``/``reduce`` results lead with a 4-tuple
    ``("shm", name, shape, dtype)`` shipment.
    """
    if not isinstance(result, tuple) or not result:
        return []
    shipped = result[0]
    if (isinstance(shipped, tuple) and len(shipped) == 4
            and shipped[0] == "shm"):
        return [shipped[1]]
    return []


def _pool_worker_main(task_queue, conn) -> None:
    """Supervised worker loop: task envelopes in, heartbeats + results out.

    The ``start`` heartbeat goes over a raw ``Pipe`` connection — a
    synchronous write in this thread (no feeder-thread buffering), so it
    survives even an ``os._exit`` immediately after.  Worker death is
    then visible to the parent supervisor as EOF on the same pipe,
    *after* any already-buffered results — instant pid-liveness without
    polling.  Envelopes and results are pre-pickled bytes so pickling
    errors surface synchronously on whichever side created the payload.
    """
    while True:
        try:
            blob = task_queue.get()
        except (EOFError, OSError):  # parent tore the queue down
            return
        if blob is None:
            return
        task_id, attempt, kind, payload, traced = pickle.loads(blob)
        try:
            conn.send(("start", task_id, attempt, os.getpid()))
        except (BrokenPipeError, OSError):
            return
        span_doc = None
        try:
            chaos.on_worker_task(task_id, attempt)
            if traced:
                result, span_doc = _run_traced((kind, payload))
            else:
                result = _TASK_FNS[kind](payload)
            try:
                out = pickle.dumps(
                    ("done", task_id, attempt, True, result, span_doc)
                )
            except Exception as error:  # unpicklable result
                out = pickle.dumps(
                    ("done", task_id, attempt, False,
                     _shippable_error(error), None)
                )
        except BaseException as error:
            out = pickle.dumps(
                ("done", task_id, attempt, False, _shippable_error(error),
                 None)
            )
        try:
            conn.send_bytes(out)
        except (BrokenPipeError, OSError):
            return


def _publish_cache_report(report: Dict) -> None:
    """Fold one process's cache report into pid-labelled gauges."""
    registry = get_registry()
    pid = str(report.get("pid", os.getpid()))
    fusion = report.get("fusion", {})
    geometry = report.get("geometry", {})
    size_gauge = registry.gauge(
        "repro_cache_size",
        "Live entries in per-process caches (fusion memo layers, noisy "
        "geometry).",
        ("cache", "pid"),
    )
    hit_gauge = registry.gauge(
        "repro_cache_hit_rate",
        "Lifetime hit rate of per-process caches.",
        ("cache", "pid"),
    )
    size_gauge.set(fusion.get("fusion_cache_size", 0), cache="fusion", pid=pid)
    size_gauge.set(
        fusion.get("partition_cache_size", 0), cache="fusion_partition",
        pid=pid,
    )
    size_gauge.set(
        fusion.get("block_cache_size", 0), cache="fusion_block", pid=pid
    )
    size_gauge.set(geometry.get("size", 0), cache="geometry", pid=pid)
    calls = fusion.get("calls", 0)
    if calls:
        hit_gauge.set(
            fusion.get("full_hits", 0) / calls, cache="fusion", pid=pid
        )
    geometry_total = geometry.get("hits", 0) + geometry.get("misses", 0)
    if geometry_total:
        hit_gauge.set(
            geometry.get("hits", 0) / geometry_total, cache="geometry",
            pid=pid,
        )


def publish_cache_gauges(pool: Optional["WorkerPool"] = None) -> None:
    """Refresh the pid-labelled cache gauges.

    Always publishes the calling (parent) process's fusion/geometry
    cache stats; with ``pool`` given, additionally pulls every
    responding pool worker's report (:meth:`WorkerPool.cache_stats`).
    The executor calls this at the end of pooled evaluations so scrapes
    never have to dispatch pool tasks themselves.
    """
    _publish_cache_report(_run_cache_stats(None))
    if pool is not None:
        for report in pool.cache_stats():
            _publish_cache_report(report)


# Parent-process cache gauges refresh lazily on every scrape/snapshot;
# worker gauges refresh when an evaluation pulls them (see above).
get_registry().add_collector(lambda _registry: publish_cache_gauges(None))


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------

@dataclass
class ParallelStats:
    """Latency/utilization report of one :class:`WorkerPool`."""

    workers: int
    started: bool = False
    tasks_completed: int = 0
    tasks_failed: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    utilization: float = 0.0
    bytes_published: int = 0
    shm_segments: int = 0
    worker_respawns: int = 0
    task_retries: int = 0
    tasks_quarantined: int = 0
    broken: bool = False
    tasks_by_kind: Dict[str, int] = field(default_factory=dict)
    busy_seconds_by_kind: Dict[str, float] = field(default_factory=dict)
    busy_by_worker: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "workers": self.workers,
            "started": self.started,
            "tasks_completed": self.tasks_completed,
            "tasks_failed": self.tasks_failed,
            "busy_seconds": self.busy_seconds,
            "wall_seconds": self.wall_seconds,
            "utilization": self.utilization,
            "bytes_published": self.bytes_published,
            "shm_segments": self.shm_segments,
            "worker_respawns": self.worker_respawns,
            "task_retries": self.task_retries,
            "tasks_quarantined": self.tasks_quarantined,
            "broken": self.broken,
            "tasks_by_kind": dict(self.tasks_by_kind),
            "busy_seconds_by_kind": dict(self.busy_seconds_by_kind),
            "busy_by_worker": dict(self.busy_by_worker),
        }


@dataclass
class PublishedTensors:
    """A set of term tensors resident in shared memory (plus context)."""

    handle_id: str
    refs: List[Tuple]
    cut_blob: bytes
    nbytes: int
    segment_names: List[str]

    @property
    def num_tensors(self) -> int:
        return len(self.refs)


class _PoolTask:
    """Parent-side record of one dispatched task (all attempts)."""

    __slots__ = (
        "task_id", "kind", "payload", "traced", "attempt", "event", "done",
        "ok", "result", "error", "span", "reaped", "discarded",
        "started_at", "dispatched_at",
    )

    def __init__(self, task_id: int, kind: str, payload, traced: bool):
        self.task_id = task_id
        self.kind = kind
        self.payload = payload
        self.traced = traced
        self.attempt = 1
        self.event = threading.Event()
        self.done = False
        self.ok = False
        self.result = None
        self.error: Optional[BaseException] = None
        self.span = None
        self.reaped = False
        self.discarded = False
        self.started_at: Optional[float] = None
        self.dispatched_at = time.monotonic()


class _WorkerSlot:
    """One supervised worker process and its result pipe."""

    __slots__ = ("proc", "conn", "pid", "current", "current_started",
                 "doomed")

    def __init__(self, proc, conn, pid):
        self.proc = proc
        self.conn = conn
        self.pid = pid
        self.current: Optional[int] = None  # task id it announced last
        self.current_started: Optional[float] = None
        self.doomed = False  # already SIGKILLed as hung


class WorkerPool:
    """A persistent, spawn-safe, *supervised* process pool.

    Parameters
    ----------
    workers:
        Worker process count (default: ``os.cpu_count()``).
    context:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``) or a context object.  ``None`` uses the
        platform default.  All task functions are module-level, so
        ``spawn`` (macOS/Windows default) is fully supported.
    task_timeout:
        Per-task heartbeat deadline: a worker that has been *running*
        one task longer than this is killed as hung and the task
        retried.  (This replaces the old blanket reap timeout — callers
        no longer wait 600s for a worker that died instantly.)
    max_task_attempts:
        A task that kills (or hangs) its worker this many times is
        quarantined: it fails with :class:`PoisonedTaskError`, failing
        only its caller, never the pool.
    max_worker_respawns:
        Worker deaths tolerated over the pool's lifetime (default
        ``4 * workers``).  Beyond it the pool is *broken*: every pending
        and future call raises :class:`PoolUnrecoverableError` so the
        scheduler can degrade to serial evaluation.

    Supervision: a daemon thread watches one result pipe per worker.
    Workers send a synchronous ``start`` heartbeat before each task, so
    a death (pipe EOF) immediately identifies the in-flight task, which
    is transparently re-dispatched — tasks are pure/idempotent (the
    reduce step is out-of-place for exactly this reason), so retried
    results are bit-identical.  Deterministic in-task exceptions are
    *not* retried; they surface to the caller on first occurrence.

    The pool starts lazily on first use; :meth:`close` (or the context
    manager form) terminates the workers and unlinks every shared-memory
    segment the pool published.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        context=None,
        task_timeout: float = 600.0,
        max_published: int = 8,
        max_task_attempts: int = 3,
        max_worker_respawns: Optional[int] = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be positive")
        if max_published < 1:
            raise ValueError("max_published must be positive")
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be positive")
        import multiprocessing

        if context is None or isinstance(context, str):
            context = multiprocessing.get_context(context)
        self.workers = int(workers)
        self.task_timeout = float(task_timeout)
        self.max_published = int(max_published)
        self.max_task_attempts = int(max_task_attempts)
        if max_worker_respawns is None:
            max_worker_respawns = 4 * self.workers
        if max_worker_respawns < 0:
            raise ValueError("max_worker_respawns must be >= 0")
        self.max_worker_respawns = int(max_worker_respawns)
        self._ctx = context
        self._lock = threading.Lock()
        self._segments: Dict[str, object] = {}  # name -> SharedMemory
        self._published: "OrderedDict[str, PublishedTensors]" = OrderedDict()
        self._closed = False
        self._started_at: Optional[float] = None
        self._stats = ParallelStats(workers=self.workers)
        self._slots: List[_WorkerSlot] = []
        self._tasks: Dict[int, _PoolTask] = {}
        self._task_queue = None
        self._supervisor: Optional[threading.Thread] = None
        self._task_counter = itertools.count(1)
        self._deaths = 0
        self._broken = False
        self._broken_reason = ""
        self._last_progress = 0.0
        registry = get_registry()
        self._metric_tasks = registry.counter(
            "repro_pool_tasks_total",
            "Worker-pool tasks by kind and outcome.",
            ("kind", "status"),
        )
        self._metric_task_seconds = registry.histogram(
            "repro_pool_task_seconds",
            "Worker-side busy seconds per pool task.",
            ("kind",),
        )
        self._metric_bytes = registry.counter(
            "repro_pool_bytes_published_total",
            "Bytes copied into shared-memory segments by the pool.",
        )
        self._metric_respawns = registry.counter(
            "repro_pool_worker_respawns_total",
            "Dead or hung pool workers replaced by the supervisor.",
        )
        self._metric_retries = registry.counter(
            "repro_pool_task_retries_total",
            "Pool tasks transparently re-executed after a worker death.",
            ("kind",),
        )
        self._metric_quarantined = registry.counter(
            "repro_pool_tasks_quarantined_total",
            "Pool tasks quarantined after exhausting their attempt budget.",
        )
        self._metric_broken = registry.gauge(
            "repro_pool_broken",
            "1 when the pool's respawn budget is exhausted (unrecoverable).",
        )

    # -- lifecycle ------------------------------------------------------
    @property
    def broken(self) -> bool:
        """Whether the pool is unrecoverable (respawn budget exhausted)."""
        return self._broken

    def _spawn_slot(self) -> _WorkerSlot:
        receiver, sender = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(self._task_queue, sender),
            daemon=True,
            name="repro-pool-worker",
        )
        proc.start()
        sender.close()  # EOF on worker death reaches the supervisor
        return _WorkerSlot(proc=proc, conn=receiver, pid=proc.pid)

    def _ensure_started(self) -> None:
        chaos.on_pool_dispatch()
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._broken:
                raise PoolUnrecoverableError(self._broken_reason)
            if self._stats.started:
                return
            self._task_queue = self._ctx.Queue()
            self._slots = [self._spawn_slot() for _ in range(self.workers)]
            self._started_at = time.perf_counter()
            self._last_progress = time.monotonic()
            self._stats.started = True
            self._supervisor = threading.Thread(
                target=self._supervise,
                name="repro-pool-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def close(self) -> None:
        """Terminate the workers and free every published segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots, self._slots = self._slots, []
            tasks = [t for t in self._tasks.values() if not t.done]
            self._tasks.clear()
            queue, self._task_queue = self._task_queue, None
            supervisor, self._supervisor = self._supervisor, None
            segments = list(self._segments.values())
            self._segments.clear()
            self._published.clear()
        for task in tasks:
            task.done = True
            task.ok = False
            task.error = RuntimeError("worker pool is closed")
            task.payload = None
            task.event.set()
        if supervisor is not None and supervisor.is_alive():
            supervisor.join(timeout=5)
        for slot in slots:
            if slot.proc.is_alive():
                slot.proc.terminate()
        for slot in slots:
            slot.proc.join(timeout=10)
            if slot.proc.is_alive():  # pragma: no cover - stuck in kernel
                slot.proc.kill()
                slot.proc.join(timeout=10)
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if queue is not None:
            queue.close()
            queue.cancel_join_thread()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- accounting -----------------------------------------------------
    def _record(self, kind: str, meta: Optional[_TaskMeta], ok: bool) -> None:
        self._metric_tasks.inc(kind=kind, status="ok" if ok else "error")
        if meta is not None:
            self._metric_task_seconds.observe(meta.elapsed_seconds, kind=kind)
        with self._lock:
            stats = self._stats
            if ok:
                stats.tasks_completed += 1
            else:
                stats.tasks_failed += 1
            stats.tasks_by_kind[kind] = stats.tasks_by_kind.get(kind, 0) + 1
            if meta is not None:
                stats.busy_seconds += meta.elapsed_seconds
                stats.busy_seconds_by_kind[kind] = (
                    stats.busy_seconds_by_kind.get(kind, 0.0)
                    + meta.elapsed_seconds
                )
                key = str(meta.pid)
                stats.busy_by_worker[key] = (
                    stats.busy_by_worker.get(key, 0.0) + meta.elapsed_seconds
                )

    def stats(self) -> ParallelStats:
        """A snapshot of the pool's lifetime statistics."""
        with self._lock:
            stats = ParallelStats(
                workers=self._stats.workers,
                started=self._stats.started,
                tasks_completed=self._stats.tasks_completed,
                tasks_failed=self._stats.tasks_failed,
                busy_seconds=self._stats.busy_seconds,
                bytes_published=self._stats.bytes_published,
                shm_segments=len(self._segments),
                worker_respawns=self._stats.worker_respawns,
                task_retries=self._stats.task_retries,
                tasks_quarantined=self._stats.tasks_quarantined,
                broken=self._broken,
                tasks_by_kind=dict(self._stats.tasks_by_kind),
                busy_seconds_by_kind=dict(self._stats.busy_seconds_by_kind),
                busy_by_worker=dict(self._stats.busy_by_worker),
            )
            if self._started_at is not None:
                stats.wall_seconds = time.perf_counter() - self._started_at
        budget = stats.workers * stats.wall_seconds
        stats.utilization = stats.busy_seconds / budget if budget > 0 else 0.0
        return stats

    def cache_stats(self) -> List[Dict]:
        """Best-effort per-worker cache reports (deduped by pid).

        Submits ``2 * workers`` probe tasks so every worker is likely to
        answer at least once; workers that never pick one up are simply
        absent this round.  Returns an empty list when the pool has not
        started — no cold start just to read empty caches.
        """
        with self._lock:
            if self._closed or self._broken or not self._stats.started:
                return []
        probes: List[_PoolTask] = []
        try:
            for _ in range(2 * self.workers):
                probes.append(self._dispatch("cache-stats", None,
                                             ensure=False))
        except Exception:  # pragma: no cover - pool torn down mid-probe
            pass
        reports: Dict[int, Dict] = {}
        for task in probes:
            try:
                report = self._reap(task)
            except Exception:
                continue
            reports.setdefault(report["pid"], report)
        return [reports[pid] for pid in sorted(reports)]

    # -- task dispatch (supervised, trace-aware) ------------------------
    def _dispatch(self, kind: str, payload, ensure: bool = True) -> _PoolTask:
        """Enqueue one task; returns the parent-side task record.

        The envelope is pickled *here*, synchronously, so an unpicklable
        payload raises in the caller (never in a queue feeder thread).
        The ``traced`` flag travels with the envelope; the worker wraps
        the task in :func:`_run_traced` and :meth:`_reap` grafts the
        returned span tree.
        """
        if ensure:
            self._ensure_started()
        traced = trace.enabled() and kind != "cache-stats"
        task = _PoolTask(next(self._task_counter), kind, payload, traced)
        blob = pickle.dumps(
            (task.task_id, task.attempt, kind, payload, traced)
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._broken:
                raise PoolUnrecoverableError(self._broken_reason)
            queue = self._task_queue
            if queue is None:
                raise RuntimeError("worker pool is closed")
            self._tasks[task.task_id] = task
        queue.put(blob)
        return task

    def _reap(self, task: _PoolTask):
        """Wait for a task; raise its error or return its result.

        No blanket deadline here — the supervisor owns liveness.  Every
        task terminates: crashes/hangs are retried at most
        ``max_task_attempts`` times, each running attempt is bounded by
        ``task_timeout``, so the outcome is a result, a
        ``PoisonedTaskError``, a ``PoolUnrecoverableError``, or "pool
        is closed".
        """
        task.event.wait()
        task.reaped = True
        with self._lock:
            self._tasks.pop(task.task_id, None)
        if not task.ok:
            raise task.error
        if task.traced and task.span is not None:
            trace.attach(task.span)
        return task.result

    def _discard(self, task: _PoolTask) -> None:
        """Abandon a task the caller will never reap.

        Completed tasks are cleaned immediately (worker-shipped shm
        results unlinked); in-flight ones are flagged and the supervisor
        cleans them on completion.
        """
        if task.reaped:
            return
        cleanup: List[str] = []
        with self._lock:
            task.discarded = True
            if not task.done:
                return
            self._tasks.pop(task.task_id, None)
            if task.ok:
                cleanup = _result_segment_names(task.kind, task.result)
        for name in cleanup:
            self._reclaim_segment(name)

    def _reclaim_segment(self, name: str) -> None:
        """Adopt-and-unlink a worker-created segment nobody consumed."""
        try:
            self._adopt_segment(name)
        except FileNotFoundError:
            return
        self._free_segment(name)

    # -- supervision ----------------------------------------------------
    def _supervise(self) -> None:
        """Watch result pipes: resolve tasks, respawn dead/hung workers."""
        from multiprocessing.connection import wait as connection_wait

        try:
            while True:
                with self._lock:
                    if self._closed:
                        return
                    slots = list(self._slots)
                if not slots:
                    if self._broken:
                        return
                    time.sleep(0.02)
                    continue
                by_conn = {slot.conn: slot for slot in slots}
                try:
                    ready = connection_wait(list(by_conn), timeout=0.05)
                except OSError:  # pragma: no cover - teardown race
                    ready = []
                for conn in ready:
                    slot = by_conn[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        self._on_worker_death(slot)
                        continue
                    self._on_message(slot, message)
                self._enforce_deadlines()
        except Exception as error:  # pragma: no cover - must not die silent
            self._mark_broken(f"pool supervisor crashed: {error!r}")

    def _on_message(self, slot: _WorkerSlot, message) -> None:
        kind = message[0]
        now = time.monotonic()
        if kind == "start":
            _, task_id, attempt, _pid = message
            with self._lock:
                self._last_progress = now
                slot.current = task_id
                slot.current_started = now
                task = self._tasks.get(task_id)
                if (task is not None and not task.done
                        and attempt == task.attempt):
                    task.started_at = now
            return
        if kind != "done":  # pragma: no cover - unknown message
            return
        _, task_id, _attempt, ok, result, span = message
        cleanup: List[str] = []
        with self._lock:
            self._last_progress = now
            if slot.current == task_id:
                slot.current = None
                slot.current_started = None
            task = self._tasks.get(task_id)
            if task is None or task.done:
                # Stale duplicate (a re-dispatched task raced its
                # original): reclaim any segments it shipped.
                if ok:
                    cleanup = _result_segment_names(None, result)
            else:
                task.done = True
                task.ok = ok
                if ok:
                    task.result = result
                    task.span = span
                else:
                    task.error = result
                task.payload = None
                task.event.set()
                if task.discarded:
                    self._tasks.pop(task_id, None)
                    if ok:
                        cleanup = _result_segment_names(task.kind, result)
        for name in cleanup:
            self._reclaim_segment(name)

    def _on_worker_death(self, slot: _WorkerSlot,
                         reason: str = "exited") -> None:
        with self._lock:
            if self._closed or slot not in self._slots:
                return
            self._slots.remove(slot)
            current_id = slot.current
            self._deaths += 1
            deaths = self._deaths
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join(timeout=10)
        if current_id is not None:
            self._retry_task(
                current_id,
                f"worker pid {slot.pid} {reason} while running it",
            )
        if deaths > self.max_worker_respawns:
            self._mark_broken(
                f"worker respawn budget exhausted "
                f"({self.max_worker_respawns}): last worker pid "
                f"{slot.pid} {reason}"
            )
            return
        with self._lock:
            if self._closed or self._broken:
                return
            self._slots.append(self._spawn_slot())
            self._stats.worker_respawns += 1
        self._metric_respawns.inc()

    def _retry_task(self, task_id: int, reason: str) -> None:
        """Re-dispatch (or quarantine) a task whose worker died/hung."""
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.done:
                return
            task.attempt += 1
            task.started_at = None
            kind = task.kind
            if task.attempt > self.max_task_attempts:
                task.done = True
                task.ok = False
                task.error = PoisonedTaskError(
                    f"pool task {task.kind} #{task_id} quarantined after "
                    f"{self.max_task_attempts} attempts: {reason}"
                )
                task.payload = None
                task.event.set()
                self._stats.tasks_quarantined += 1
                if task.discarded:
                    self._tasks.pop(task_id, None)
                quarantined = True
                blob = queue = None
            else:
                quarantined = False
                blob = pickle.dumps(
                    (task.task_id, task.attempt, task.kind, task.payload,
                     task.traced)
                )
                task.dispatched_at = time.monotonic()
                queue = self._task_queue
                self._stats.task_retries += 1
        if quarantined:
            self._metric_quarantined.inc()
            return
        self._metric_retries.inc(kind=kind)
        if queue is not None:
            queue.put(blob)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        doomed: List[_WorkerSlot] = []
        stuck: List[int] = []
        with self._lock:
            for slot in self._slots:
                if (slot.current is not None and not slot.doomed
                        and slot.current_started is not None
                        and now - slot.current_started > self.task_timeout):
                    slot.doomed = True
                    doomed.append(slot)
            # A task that never started although the pool made no
            # progress for a whole deadline means its envelope was lost
            # (worker died between queue.get() and the heartbeat).
            # Progress gating keeps legitimately-queued tasks — waiting
            # behind a busy but healthy pool — from being re-dispatched.
            for task in self._tasks.values():
                if (not task.done and task.started_at is None
                        and now - max(task.dispatched_at,
                                      self._last_progress)
                        > self.task_timeout):
                    stuck.append(task.task_id)
        for slot in doomed:
            # SIGKILL; the death path (pipe EOF) retries its task.
            slot.proc.kill()
        for task_id in stuck:
            # Duplicate execution is waste, not corruption: tasks are
            # idempotent and the first completed attempt wins.
            self._retry_task(task_id, "never started before its deadline")

    def _mark_broken(self, reason: str) -> None:
        with self._lock:
            if self._closed or self._broken:
                return
            self._broken = True
            self._broken_reason = reason
            self._stats.broken = True
            slots, self._slots = self._slots, []
            tasks = [t for t in self._tasks.values() if not t.done]
            for task in tasks:
                if task.discarded:
                    self._tasks.pop(task.task_id, None)
        for slot in slots:
            if slot.proc.is_alive():
                slot.proc.kill()
        for slot in slots:
            slot.proc.join(timeout=10)
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for task in tasks:
            task.done = True
            task.ok = False
            task.error = PoolUnrecoverableError(reason)
            task.payload = None
            task.event.set()
        self._metric_broken.set(1)

    # -- shared-memory transport ---------------------------------------
    def _new_segment(self, size: int):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(1, size))
        with self._lock:
            self._segments[segment.name] = segment
            self._stats.bytes_published += size
        self._metric_bytes.inc(size)
        return segment

    def _adopt_segment(self, name: str):
        """Take ownership of a worker-created segment (attach + track).

        The attach registers the name with the resource tracker; the
        eventual ``unlink`` in :meth:`_free_segment`/:meth:`close`
        unregisters it, so no manual bookkeeping is needed here.
        """
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
        with self._lock:
            self._segments[name] = segment
        return segment

    def _free_segment(self, name: str) -> None:
        with self._lock:
            segment = self._segments.pop(name, None)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def _tensor_refs(
        self, tensors: Sequence[TermTensor], cached: bool = False
    ) -> Tuple[List[Tuple], List[str]]:
        """Transport refs for a tensor batch (+ names of fresh segments).

        ``cached=True`` marks the refs as long-lived publications the
        workers may keep zero-copy attachments to; per-call shipments
        leave it False so workers copy-and-detach (see
        :func:`_tensor_from_ref`).
        """
        refs: List[Tuple] = []
        names: List[str] = []
        for tensor in tensors:
            data = np.ascontiguousarray(tensor.data)
            if data.nbytes < _MIN_SHM_BYTES:
                refs.append(("inline", tensor))
                continue
            segment = self._new_segment(data.nbytes)
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
            view[:] = data
            names.append(segment.name)
            refs.append(
                (
                    "shm",
                    segment.name,
                    data.shape,
                    data.dtype.str,
                    tensor.subcircuit_index,
                    list(tensor.cut_order),
                    tensor.num_effective,
                    cached,
                )
            )
        return refs, names

    def publish(self, cut_circuit, tensors: Sequence[TermTensor]) -> PublishedTensors:
        """Publish a cut's full term tensors once, for plan-task reuse.

        The returned handle is what shard/plan tasks reference; the
        tensors themselves never ride in a task pickle again.  Segments
        live until :meth:`unpublish` or :meth:`close`; as a backstop
        for callers that never unpublish (transient per-job
        reconstructors against a long-lived service pool), the pool
        keeps at most ``max_published`` publications and evicts the
        oldest — plans still in flight against an evicted handle fail
        cleanly with ``FileNotFoundError``, so size ``max_published``
        above the expected query concurrency.
        """
        refs, names = self._tensor_refs(tensors, cached=True)
        handle = PublishedTensors(
            handle_id=uuid.uuid4().hex,
            refs=refs,
            cut_blob=pickle.dumps(cut_circuit),
            nbytes=sum(int(t.data.nbytes) for t in tensors),
            segment_names=names,
        )
        evicted = []
        with self._lock:
            self._published[handle.handle_id] = handle
            while len(self._published) > self.max_published:
                _, oldest = self._published.popitem(last=False)
                evicted.append(oldest)
        for old in evicted:
            for name in old.segment_names:
                self._free_segment(name)
        return handle

    def unpublish(self, handle: PublishedTensors) -> None:
        """Free a published tensor set's shared-memory segments."""
        with self._lock:
            self._published.pop(handle.handle_id, None)
        for name in handle.segment_names:
            self._free_segment(name)

    # -- query-path entry points ---------------------------------------
    def contract_batch(
        self,
        batch: Sequence[Tuple[Sequence[TermTensor], Sequence[int], int]],
        strategy: str = "auto",
        early_termination: bool = True,
    ) -> List[ContractionResult]:
        """Contract many independent term sets on the warm workers.

        Drop-in replacement for the ephemeral-pool path of
        :meth:`~repro.postprocess.engine.ContractionEngine.contract_batch`
        — same argument triple, same result order.
        """
        self._ensure_started()
        pending = []
        fresh: List[str] = []
        results: List[ContractionResult] = []
        try:
            for tensors, order, num_cuts in batch:
                refs, names = self._tensor_refs(tensors)
                fresh.extend(names)
                payload = (refs, list(order), num_cuts, strategy,
                           early_termination)
                pending.append(self._dispatch("contract", payload))
            for task in pending:
                try:
                    result, meta = self._reap(task)
                except Exception:
                    self._record("contract", None, ok=False)
                    raise
                self._record("contract", meta, ok=True)
                results.append(result)
        finally:
            for task in pending:
                self._discard(task)
            for name in fresh:
                self._free_segment(name)
        return results

    def run_plans(
        self,
        handle: PublishedTensors,
        plans: Sequence[QueryPlan],
        strategy: str = "auto",
        early_termination: bool = True,
        top_k: Optional[int] = None,
    ) -> Iterator[Tuple[int, object, int, int, int]]:
        """Execute query plans against published tensors, concurrently.

        Yields ``(index, result, cache_hits, cache_misses, nbytes)`` in
        *submission order* (so shard streams stay ordered).  ``result``
        is the probability vector, or — with ``top_k`` — the shard's
        top-k ``(probability, offset)`` candidates.

        Submission is windowed at ``2 * workers`` tasks ahead of the
        consumer, so a slowly-consumed (or abandoned) shard stream
        never buffers more than a window of result vectors; on early
        generator close the in-flight remainder is drained and its
        worker-created segments freed.
        """
        self._ensure_started()
        plans = list(plans)
        window = max(2, 2 * self.workers)
        pending: "deque" = deque()
        submitted = 0
        try:
            for index in range(len(plans)):
                while submitted < len(plans) and len(pending) < window:
                    payload = (
                        handle.handle_id,
                        handle.cut_blob,
                        handle.refs,
                        plans[submitted],
                        strategy,
                        early_termination,
                        top_k,
                    )
                    pending.append(self._dispatch("plan", payload))
                    submitted += 1
                task = pending.popleft()
                try:
                    shipped, hits, misses, nbytes, meta = self._reap(task)
                except Exception:
                    self._record("plan", None, ok=False)
                    raise
                self._record("plan", meta, ok=True)
                if shipped[0] in ("topk", "inline"):
                    yield index, shipped[1], hits, misses, nbytes
                else:
                    _, name, shape, dtype = shipped
                    segment = self._adopt_segment(name)
                    vector = np.array(
                        np.ndarray(
                            shape, dtype=np.dtype(dtype), buffer=segment.buf
                        )
                    )
                    self._free_segment(name)
                    yield index, vector, hits, misses, nbytes
        finally:
            # Abandoned stream (or a failed task): hand the in-flight
            # remainder to the supervisor so worker-created result
            # segments are reclaimed whenever those tasks complete.
            while pending:
                self._discard(pending.popleft())

    def contract_kron(
        self,
        tensors: Sequence[TermTensor],
        order: Sequence[int],
        num_cuts: int,
        early_termination: bool = True,
    ) -> Tuple[np.ndarray, int]:
        """One large ``kron`` sweep: range-split + shared-memory tree sum.

        The ``4^K`` assignment space is split across the workers; each
        partial accumulator lands in shared memory and partials are
        merged pairwise *in the workers* (a reduction tree), so the
        parent never performs more than one final copy.
        """
        self._ensure_started()
        total = 4**num_cuts
        step = (total + self.workers - 1) // self.workers
        bounds = [
            (start, min(start + step, total))
            for start in range(0, total, step)
        ]
        refs, fresh = self._tensor_refs(tensors)
        order = list(order)
        skipped = 0
        partials: List[Tuple] = []  # vector refs, in submission order
        outstanding: List[_PoolTask] = []
        try:
            pending = [
                self._dispatch(
                    "kron-range",
                    (refs, order, num_cuts, start, stop, early_termination),
                )
                for start, stop in bounds
            ]
            outstanding.extend(pending)
            for task in pending:
                try:
                    shipped, part_skipped, meta = self._reap(task)
                except Exception:
                    self._record("kron-range", None, ok=False)
                    raise
                self._record("kron-range", meta, ok=True)
                skipped += part_skipped
                if shipped[0] == "shm":
                    self._adopt_segment(shipped[1])
                partials.append(shipped)

            # Tree-reduce the shared-memory partials in the workers;
            # inline (small) partials are summed directly in the parent.
            # Each reduce is out-of-place (fresh output segment, inputs
            # untouched) so a retried reduce after a worker kill cannot
            # double-add into an accumulator.
            inline = [p[1] for p in partials if p[0] == "inline"]
            shm_refs = [p for p in partials if p[0] == "shm"]
            while len(shm_refs) > 1:
                next_round = []
                reductions = []
                for left, right in zip(shm_refs[::2], shm_refs[1::2]):
                    task = self._dispatch("reduce", (left, right))
                    outstanding.append(task)
                    reductions.append((task, left, right))
                for task, left, right in reductions:
                    try:
                        shipped, meta = self._reap(task)
                    except Exception:
                        self._record("reduce", None, ok=False)
                        raise
                    self._record("reduce", meta, ok=True)
                    self._adopt_segment(shipped[1])
                    self._free_segment(left[1])
                    self._free_segment(right[1])
                    next_round.append(shipped)
                if len(shm_refs) % 2:
                    next_round.append(shm_refs[-1])
                shm_refs = next_round

            if shm_refs:
                _, name, shape, dtype = shm_refs[0]
                segment = self._segments[name]
                vector = np.array(
                    np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
                )
                self._free_segment(name)
            elif inline:
                vector = inline.pop(0)
            else:
                vector = None
            for extra in inline:
                vector += extra
        finally:
            for task in outstanding:
                self._discard(task)
            for name in fresh:
                self._free_segment(name)
        if vector is None:  # pragma: no cover - bounds is never empty
            raise RuntimeError("kron contraction produced no partials")
        return vector, skipped

    def map_variant_batches(
        self, payloads: Sequence[Tuple]
    ) -> List[Tuple[Dict, int]]:
        """Evaluate whole init-batches of subcircuit variants, warm.

        Each payload is ``(subcircuit, init_combos, fusion_width)`` —
        the batched-strategy work unit of
        :class:`~repro.core.executor.VariantExecutor` — or the noisy
        4-tuple with a trailing
        :class:`~repro.cutting.variants.NoisyEvalSpec` (recorded as kind
        ``"noisy-variant-batch"``).  Returns
        ``(probabilities, num_body_passes)`` per payload, in order.
        """
        self._ensure_started()
        pending = []
        outputs: List[Tuple[Dict, int]] = []
        try:
            for payload in payloads:
                kind = (
                    "noisy-variant-batch"
                    if len(payload) == 4
                    else "variant-batch"
                )
                pending.append((kind, self._dispatch(kind, payload)))
            for kind, task in pending:
                try:
                    probabilities, passes, meta = self._reap(task)
                except Exception:
                    self._record(kind, None, ok=False)
                    raise
                self._record(kind, meta, ok=True)
                outputs.append((probabilities, passes))
        finally:
            for _, task in pending:
                self._discard(task)
        return outputs

    def map_backend(self, backend, circuits: Sequence) -> List[np.ndarray]:
        """Evaluate circuits through ``backend`` on the warm workers.

        Chunked to amortize dispatch; result order matches input order.
        Raises whatever the backend raises (including pickling errors
        for backends that cannot cross a process boundary).
        """
        self._ensure_started()
        circuits = list(circuits)
        if not circuits:
            return []
        chunk = max(1, len(circuits) // (self.workers * 4))
        pending = []
        vectors: List[np.ndarray] = []
        try:
            for start in range(0, len(circuits), chunk):
                payload = (backend, circuits[start : start + chunk])
                pending.append(self._dispatch("backend", payload))
            for task in pending:
                try:
                    chunk_vectors, meta = self._reap(task)
                except Exception:
                    self._record("backend", None, ok=False)
                    raise
                self._record("backend", meta, ok=True)
                vectors.extend(chunk_vectors)
        finally:
            for task in pending:
                self._discard(task)
        return vectors
