"""Sharded streaming FD reconstruction — FD queries past the memory wall.

:func:`~repro.postprocess.reconstruct.Reconstructor.reconstruct`
materializes the full ``2**n`` output vector, which is exactly the memory
wall circuit cutting exists to avoid.  :class:`StreamingReconstructor`
instead fixes the top ``s`` qubits (wires ``0..s-1``) and emits the
distribution as ``2**s`` independent *shards* of ``2**(n-s)`` entries
each, lazily, as an iterator:

* concatenating the shards in index order reproduces ``fd_query``'s
  distribution exactly (wire 0 is the most significant bit, so shard
  ``i`` is the contiguous slice ``[i * 2**(n-s), (i+1) * 2**(n-s))``);
* peak memory is one shard (``2**(n-s) * 8`` bytes) plus the collapsed
  tensors — never ``2**n``;
* each shard is a :class:`~repro.postprocess.plan.QueryPlan` with the
  shard qubits fixed, so the provider's incremental collapse cache does
  one full collapse per subcircuit for the *whole* stream and derives
  every shard by cheap axis indexing;
* ``shard_indices`` restricts the stream to chosen shards (e.g. only the
  region a DD query located), and :meth:`top_k` folds the stream into
  the k highest-probability states without retaining any shard;
* with a :class:`~repro.postprocess.parallel.WorkerPool` injected, the
  shards are evaluated *concurrently*: the full term tensors are
  published to shared memory once, each worker derives its shards from
  its own collapse cache, and :meth:`top_k` merges per-shard top-k
  candidates across workers (only k entries per shard cross the process
  boundary).  The emitted stream is bit-identical to the serial one.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..cutting.cutter import CutCircuit
from ..cutting.variants import SubcircuitResult
from ..obs import trace
from ..utils import index_to_bitstring
from .attribution import TermTensor
from .engine import ContractionEngine
from .plan import PrecomputedTensorProvider, QueryPlan, TensorProvider

__all__ = [
    "Shard",
    "StreamStats",
    "StreamingReconstructor",
    "top_k_from_shards",
]


# -- the one top-k fold, shared by the serial and pooled paths ----------
#
# Both paths must evolve the k-entry heap identically for the pooled
# result to be bit-identical to the serial one, so the candidate
# selection, the merge policy (strict ``>`` against the heap root) and
# the final ranking live here and nowhere else.  Workers run
# :func:`_shard_top_candidates` remotely and the parent merges with
# :func:`_merge_shard_candidates` in shard-submission order.

def _shard_top_candidates(
    probabilities: np.ndarray, k: int
) -> List[Tuple[float, int]]:
    """A shard's top-k ``(probability, offset)`` candidates, in the
    ``argpartition`` order the fold consumes."""
    take = min(k, probabilities.size)
    selected = np.argpartition(probabilities, -take)[-take:]
    return [
        (float(probabilities[offset]), int(offset)) for offset in selected
    ]


def _merge_shard_candidates(
    heap: List[Tuple[float, int]],
    k: int,
    base: int,
    candidates: List[Tuple[float, int]],
) -> None:
    """Fold one shard's candidates into the global k-entry heap."""
    for probability, offset in candidates:
        entry = (probability, base + offset)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry[0] > heap[0][0]:
            heapq.heapreplace(heap, entry)


def _ranked_states(
    heap: List[Tuple[float, int]], num_qubits: int
) -> List[Tuple[str, float]]:
    """The heap as a descending-probability (bitstring, p) list."""
    ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
    return [
        (index_to_bitstring(state, num_qubits), probability)
        for probability, state in ranked
    ]


@dataclass
class Shard:
    """One contiguous slice of the uncut distribution."""

    index: int  # integer over the fixed qubits (wire 0 = MSB)
    fixed: Dict[int, int]  # wire -> bit for the shard qubits
    probabilities: np.ndarray  # remaining wires, ascending, 2**(n-s) entries

    @property
    def num_entries(self) -> int:
        return int(self.probabilities.size)

    def bitstring_prefix(self, shard_qubits: int) -> str:
        """The fixed-qubit bits of every state in this shard."""
        return index_to_bitstring(self.index, shard_qubits)


@dataclass
class StreamStats:
    """Accumulated while the shard iterator is consumed."""

    shard_qubits: int
    num_shards_total: int
    num_shards_emitted: int = 0
    peak_shard_bytes: int = 0
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    transport: str = "serial"  # "serial" | "pool"
    workers: int = 1

    def as_dict(self) -> Dict[str, float]:
        return {
            "shard_qubits": self.shard_qubits,
            "num_shards_total": self.num_shards_total,
            "num_shards_emitted": self.num_shards_emitted,
            "peak_shard_bytes": self.peak_shard_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "transport": self.transport,
            "workers": self.workers,
        }


class StreamingReconstructor:
    """FD reconstruction as a lazy stream of independent shards.

    Parameters
    ----------
    cut_circuit:
        The cut whose output to reconstruct.
    results / tensors / provider:
        Either raw subcircuit results, prebuilt term tensors, or a
        ready :class:`~repro.postprocess.plan.TensorProvider` (the
        provider's collapse cache then persists across queries).
    engine:
        Shared contraction engine (strategy + workers).
    pool:
        A persistent :class:`~repro.postprocess.parallel.WorkerPool`.
        When set (and the provider exposes precomputed full tensors),
        shards are evaluated concurrently: tensors are published to
        shared memory once and each task ships only the shard's
        role-signature plan.  Defaults to the engine's pool.
    """

    def __init__(
        self,
        cut_circuit: CutCircuit,
        results: Optional[Sequence[SubcircuitResult]] = None,
        tensors: Optional[Sequence[TermTensor]] = None,
        engine: Optional[ContractionEngine] = None,
        provider: Optional[TensorProvider] = None,
        pool=None,
    ):
        self.cut_circuit = cut_circuit
        self.engine = engine or ContractionEngine(strategy="auto")
        if provider is None:
            provider = PrecomputedTensorProvider(
                cut_circuit, results=results, tensors=tensors
            )
        self.provider = provider
        self.pool = pool if pool is not None else self.engine.pool
        self._handle = None  # lazily published tensors (pool transport)
        self.last_stats: Optional[StreamStats] = None

    @property
    def num_qubits(self) -> int:
        return self.provider.num_qubits

    # ------------------------------------------------------------------
    def shards(
        self,
        shard_qubits: int,
        shard_indices: Optional[Iterable[int]] = None,
    ) -> Iterator[Shard]:
        """Lazily yield shards; stats accumulate in :attr:`last_stats`.

        ``shard_qubits`` is ``s`` — the number of top wires fixed per
        shard; ``shard_indices`` restricts emission to those shard
        numbers (default: all ``2**s``, ascending, so the concatenation
        is exactly the FD distribution).
        """
        total = self.num_qubits
        if not 0 <= shard_qubits <= total:
            raise ValueError(
                f"shard_qubits must be in [0, {total}], got {shard_qubits}"
            )
        if shard_indices is None:
            shard_indices = range(1 << shard_qubits)
        shard_indices = list(shard_indices)
        stats = StreamStats(
            shard_qubits=shard_qubits,
            num_shards_total=1 << shard_qubits,
        )
        self.last_stats = stats
        remaining = list(range(shard_qubits, total))
        if self._parallel_available() and len(shard_indices) > 1:
            stats.transport = "pool"
            stats.workers = self.pool.workers
            return self._generate_parallel(
                shard_qubits, shard_indices, remaining, stats
            )
        return self._generate(shard_qubits, shard_indices, remaining, stats)

    # -- worker-pool transport ------------------------------------------
    def _parallel_available(self) -> bool:
        """Pool transport needs precomputed full tensors to publish."""
        return (
            self.pool is not None
            and getattr(self.provider, "tensors", None) is not None
        )

    def _published_handle(self):
        if self._handle is None:
            self._handle = self.pool.publish(
                self.cut_circuit, self.provider.tensors
            )
        return self._handle

    def close(self) -> None:
        """Free the published shared-memory tensors (idempotent).

        Called on garbage collection too, so transient reconstructors
        (one per service job) do not accumulate segments in a
        long-lived pool; the pool additionally caps its published-set
        size as a backstop.
        """
        handle, self._handle = self._handle, None
        if handle is not None and self.pool is not None:
            try:
                self.pool.unpublish(handle)
            except Exception:  # pragma: no cover - teardown ordering
                pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _shard_plans(
        self,
        shard_qubits: int,
        shard_indices: Sequence[int],
        remaining: List[int],
    ) -> List[Tuple[Dict[int, int], QueryPlan]]:
        total = self.num_qubits
        num_cuts = self.provider.num_cuts
        plans = []
        for index in shard_indices:
            if not 0 <= index < (1 << shard_qubits):
                raise ValueError(f"shard index {index} out of range")
            fixed = {
                wire: (index >> (shard_qubits - 1 - wire)) & 1
                for wire in range(shard_qubits)
            }
            plans.append(
                (fixed, QueryPlan.binned(total, num_cuts, fixed, remaining))
            )
        return plans

    def _generate_parallel(
        self,
        shard_qubits: int,
        shard_indices: List[int],
        remaining: List[int],
        stats: StreamStats,
    ) -> Iterator[Shard]:
        plans = self._shard_plans(shard_qubits, shard_indices, remaining)
        handle = self._published_handle()
        began = time.perf_counter()
        for position, vector, hits, misses, nbytes in self.pool.run_plans(
            handle,
            [plan for _, plan in plans],
            strategy=self.engine.strategy,
            early_termination=self.engine.early_termination,
        ):
            stats.elapsed_seconds = time.perf_counter() - began
            stats.num_shards_emitted += 1
            stats.peak_shard_bytes = max(stats.peak_shard_bytes, nbytes)
            stats.cache_hits += hits
            stats.cache_misses += misses
            requests = stats.cache_hits + stats.cache_misses
            stats.cache_hit_rate = (
                stats.cache_hits / requests if requests else 0.0
            )
            yield Shard(
                index=shard_indices[position],
                fixed=plans[position][0],
                probabilities=vector,
            )

    def _generate(
        self,
        shard_qubits: int,
        shard_indices: Iterable[int],
        remaining: List[int],
        stats: StreamStats,
    ) -> Iterator[Shard]:
        num_cuts = self.provider.num_cuts
        total = self.num_qubits
        # Snapshot the provider's lifetime cache counters so the stats
        # report *this stream's* hits/misses even on a reused provider.
        cache = getattr(self.provider, "cache_stats", None)
        base_hits = cache.hits if cache is not None else 0
        base_misses = cache.misses if cache is not None else 0
        for index in shard_indices:
            if not 0 <= index < (1 << shard_qubits):
                raise ValueError(f"shard index {index} out of range")
            began = time.perf_counter()
            fixed = {
                wire: (index >> (shard_qubits - 1 - wire)) & 1
                for wire in range(shard_qubits)
            }
            with trace.span("query.stream.shard", {"shard": index}):
                plan = QueryPlan.binned(total, num_cuts, fixed, remaining)
                execution = plan.execute(self.provider, self.engine)
            stats.elapsed_seconds += time.perf_counter() - began
            stats.num_shards_emitted += 1
            stats.peak_shard_bytes = max(
                stats.peak_shard_bytes, execution.probabilities.nbytes
            )
            if cache is not None:
                stats.cache_hits = cache.hits - base_hits
                stats.cache_misses = cache.misses - base_misses
                requests = stats.cache_hits + stats.cache_misses
                stats.cache_hit_rate = (
                    stats.cache_hits / requests if requests else 0.0
                )
            yield Shard(
                index=index,
                fixed=fixed,
                probabilities=execution.probabilities,
            )

    # ------------------------------------------------------------------
    def top_k(
        self,
        shard_qubits: int,
        k: int,
        shard_indices: Optional[Iterable[int]] = None,
    ) -> List[Tuple[str, float]]:
        """The ``k`` highest-probability states, streamed shard by shard.

        Memory stays bounded by one shard plus the k-entry heap; the
        result is sorted by descending probability.  With a worker pool,
        each worker retains only its shards' top-k candidates and the
        parent merges them — identical output, but just ``k`` entries per
        shard ever cross the process boundary.
        """
        if k < 1:
            raise ValueError("k must be positive")
        total = self.num_qubits
        if not 0 <= shard_qubits <= total:
            raise ValueError(
                f"shard_qubits must be in [0, {total}], got {shard_qubits}"
            )
        if shard_indices is None:
            shard_indices = range(1 << shard_qubits)
        shard_indices = list(shard_indices)
        if self._parallel_available() and len(shard_indices) > 1:
            return self._top_k_parallel(shard_qubits, k, shard_indices)
        return top_k_from_shards(
            self.shards(shard_qubits, shard_indices),
            num_qubits=total,
            shard_qubits=shard_qubits,
            k=k,
        )

    def _top_k_parallel(
        self, shard_qubits: int, k: int, shard_indices: List[int]
    ) -> List[Tuple[str, float]]:
        """Merged top-k retention across the pool's workers.

        The merge replays exactly the serial fold: shards arrive in
        submission order and each shard's candidates arrive in the same
        ``argpartition`` order the serial code uses, so the resulting
        heap — and therefore the output — is bit-identical.
        """
        total = self.num_qubits
        if not 0 <= shard_qubits <= total:
            raise ValueError(
                f"shard_qubits must be in [0, {total}], got {shard_qubits}"
            )
        remaining = list(range(shard_qubits, total))
        stats = StreamStats(
            shard_qubits=shard_qubits,
            num_shards_total=1 << shard_qubits,
            transport="pool",
            workers=self.pool.workers,
        )
        self.last_stats = stats
        plans = self._shard_plans(shard_qubits, shard_indices, remaining)
        handle = self._published_handle()
        width = total - shard_qubits
        heap: List[Tuple[float, int]] = []
        began = time.perf_counter()
        for position, candidates, hits, misses, nbytes in self.pool.run_plans(
            handle,
            [plan for _, plan in plans],
            strategy=self.engine.strategy,
            early_termination=self.engine.early_termination,
            top_k=k,
        ):
            stats.elapsed_seconds = time.perf_counter() - began
            stats.num_shards_emitted += 1
            stats.peak_shard_bytes = max(stats.peak_shard_bytes, nbytes)
            stats.cache_hits += hits
            stats.cache_misses += misses
            requests = stats.cache_hits + stats.cache_misses
            stats.cache_hit_rate = (
                stats.cache_hits / requests if requests else 0.0
            )
            _merge_shard_candidates(
                heap, k, shard_indices[position] << width, candidates
            )
        return _ranked_states(heap, total)

    def full_distribution(self, shard_qubits: int) -> np.ndarray:
        """Concatenate every shard — testing/verification helper only
        (this materializes the full ``2**n`` vector on purpose)."""
        return np.concatenate(
            [shard.probabilities for shard in self.shards(shard_qubits)]
        )


def top_k_from_shards(
    shards: Iterable[Shard],
    num_qubits: int,
    shard_qubits: int,
    k: int,
    on_shard=None,
) -> List[Tuple[str, float]]:
    """Fold a shard stream into its ``k`` highest-probability states.

    Memory stays bounded by one shard plus the k-entry heap.  ``on_shard``
    (if given) is called with each shard before it is discarded, so
    callers can piggyback per-shard work (e.g. verification) on the same
    single pass.  The result is sorted by descending probability.
    """
    if k < 1:
        raise ValueError("k must be positive")
    width = num_qubits - shard_qubits
    heap: List[Tuple[float, int]] = []  # (probability, full state index)
    for shard in shards:
        if on_shard is not None:
            on_shard(shard)
        _merge_shard_candidates(
            heap,
            k,
            shard.index << width,
            _shard_top_candidates(shard.probabilities, k),
        )
    return _ranked_states(heap, num_qubits)
