"""Turn raw subcircuit results into per-cut *term tensors*.

Equation (2) expands every cut into four paired terms.  For the upstream
(measured) side the four terms are linear combinations of the attributed
Pauli-basis results::

    t1 = p_I + p_Z     t2 = p_I - p_Z     t3 = p_X     t4 = p_Y

and for the downstream (initialized) side::

    t1 = q_0           t2 = q_1
    t3 = 2 q_+  - q_0 - q_1
    t4 = 2 q_+i - q_0 - q_1

where ``p_M`` is the subcircuit distribution measured in basis ``M`` with
the cut qubit *attributed away* with signs per Eq. (3) (+ for outcome 0,
- for outcome 1; basis I attributes both outcomes with +), and ``q_s`` is
the distribution with the cut qubit initialized to ``s``.

A subcircuit touching ``m`` cuts therefore yields a tensor with one
length-4 axis per cut plus a length ``2^f`` axis of effective outputs; the
reconstructor combines these tensors over all ``4^K`` assignments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cutting.cutter import Subcircuit
from ..cutting.variants import INIT_LABELS, SubcircuitResult

__all__ = [
    "UPSTREAM_TERMS",
    "DOWNSTREAM_TERMS",
    "ATTRIBUTION_BASES",
    "TermTensor",
    "build_term_tensor",
    "attributed_vector",
]

#: Attribution bases, in the axis order used below (I reuses the Z circuit).
ATTRIBUTION_BASES: Tuple[str, ...] = ("I", "X", "Y", "Z")

#: Rows = the four cut terms, columns = attributed bases (I, X, Y, Z).
UPSTREAM_TERMS = np.array(
    [
        [1.0, 0.0, 0.0, 1.0],   # t1 = p_I + p_Z
        [1.0, 0.0, 0.0, -1.0],  # t2 = p_I - p_Z
        [0.0, 1.0, 0.0, 0.0],   # t3 = p_X
        [0.0, 0.0, 1.0, 0.0],   # t4 = p_Y
    ]
)

#: Rows = the four cut terms, columns = init states (|0>, |1>, |+>, |+i>).
DOWNSTREAM_TERMS = np.array(
    [
        [1.0, 0.0, 0.0, 0.0],    # t1 = q_0
        [0.0, 1.0, 0.0, 0.0],    # t2 = q_1
        [-1.0, -1.0, 2.0, 0.0],  # t3 = 2 q_plus - q_0 - q_1
        [-1.0, -1.0, 0.0, 2.0],  # t4 = 2 q_plus_i - q_0 - q_1
    ]
)

_SIGNS = {
    "I": np.array([1.0, 1.0]),
    "X": np.array([1.0, -1.0]),
    "Y": np.array([1.0, -1.0]),
    "Z": np.array([1.0, -1.0]),
}


def attributed_vector(
    subcircuit: Subcircuit,
    raw_vector: np.ndarray,
    bases: Sequence[str],
) -> np.ndarray:
    """Attribute the cut-measure qubits away with Eq. (3) signs.

    ``raw_vector`` is the physical distribution of the variant whose
    measurement circuits implement ``bases`` (I is implemented by the Z
    circuit); the result is a signed pseudo-distribution over the
    subcircuit's effective (output) qubits, in line order.
    """
    meas_lines = subcircuit.meas_lines
    if len(bases) != len(meas_lines):
        raise ValueError(
            f"{len(bases)} bases for {len(meas_lines)} measurement lines"
        )
    tensor = np.asarray(raw_vector, dtype=float).reshape((2,) * subcircuit.width)
    # Contract measurement axes from highest line index down so earlier
    # axis positions stay valid.
    pairs = sorted(
        zip((line.line for line in meas_lines), bases), reverse=True
    )
    for axis, basis in pairs:
        signs = _SIGNS[basis]
        tensor = np.tensordot(tensor, signs, axes=([axis], [0]))
    return tensor.reshape(-1)


@dataclass
class TermTensor:
    """All 4-term combinations of one subcircuit, ready for reconstruction.

    ``data[row]`` is the effective-output vector for the cut-term
    assignment encoded by ``row``: with ``cut_order = [c1, ..., cm]``,
    ``row = t(c1) * 4^(m-1) + ... + t(cm)`` where ``t(c)`` in 0..3.
    """

    subcircuit_index: int
    cut_order: List[int]
    num_effective: int
    data: np.ndarray  # shape (4^m, 2^f)
    nonzero: np.ndarray  # bool per row — rows of all zeros can be skipped

    @property
    def num_cuts(self) -> int:
        return len(self.cut_order)

    def row_for(self, terms: Dict[int, int]) -> int:
        """Row index for a global cut->term assignment."""
        row = 0
        for cut_id in self.cut_order:
            row = row * 4 + terms[cut_id]
        return row

    def vector(self, terms: Dict[int, int]) -> np.ndarray:
        return self.data[self.row_for(terms)]


def build_term_tensor(result: SubcircuitResult) -> TermTensor:
    """Apply attribution and the 4-term transforms to raw variant results."""
    subcircuit = result.subcircuit
    init_lines = subcircuit.init_lines
    meas_lines = subcircuit.meas_lines
    num_init = len(init_lines)
    num_meas = len(meas_lines)
    num_effective = subcircuit.num_effective
    vec_len = 1 << num_effective

    # Raw attributed tensor: one length-4 axis per init line, one per
    # measurement line (in ATTRIBUTION_BASES order), then the output axis.
    shape = (4,) * (num_init + num_meas) + (vec_len,)
    attributed = np.zeros(shape)
    for init_combo in itertools.product(range(4), repeat=num_init):
        init_labels = tuple(INIT_LABELS[i] for i in init_combo)
        for basis_combo in itertools.product(range(4), repeat=num_meas):
            bases = tuple(ATTRIBUTION_BASES[b] for b in basis_combo)
            physical = tuple("Z" if b == "I" else b for b in bases)
            raw = result.vector(init_labels, physical)
            attributed[init_combo + basis_combo] = attributed_vector(
                subcircuit, raw, bases
            )

    axis_cut_ids = [line.init_cut for line in init_lines] + [
        line.meas_cut for line in meas_lines
    ]
    return transform_attributed_to_terms(
        attributed,
        num_init=num_init,
        num_meas=num_meas,
        axis_cut_ids=axis_cut_ids,
        num_effective=num_effective,
        subcircuit_index=subcircuit.index,
    )


def transform_attributed_to_terms(
    attributed: np.ndarray,
    num_init: int,
    num_meas: int,
    axis_cut_ids: Sequence[int],
    num_effective: int,
    subcircuit_index: int,
) -> TermTensor:
    """Apply the 4-term transforms and canonicalize cut-axis order.

    ``attributed`` has one length-4 axis per init cut (init-state index),
    one length-4 axis per measurement cut (attributed basis index in
    :data:`ATTRIBUTION_BASES` order) and a trailing output axis.
    """
    vec_len = attributed.shape[-1]
    tensor = attributed
    for axis in range(num_init):
        tensor = np.moveaxis(
            np.tensordot(DOWNSTREAM_TERMS, tensor, axes=([1], [axis])), 0, axis
        )
    for offset in range(num_meas):
        axis = num_init + offset
        tensor = np.moveaxis(
            np.tensordot(UPSTREAM_TERMS, tensor, axes=([1], [axis])), 0, axis
        )

    # Reorder the cut axes to ascending cut id (the reconstructor's
    # canonical order) and flatten to (4^m, 2^f).
    order = sorted(range(len(axis_cut_ids)), key=lambda i: axis_cut_ids[i])
    tensor = np.transpose(tensor, axes=list(order) + [len(axis_cut_ids)])
    cut_order = [axis_cut_ids[i] for i in order]

    data = tensor.reshape(4 ** len(cut_order), vec_len)
    nonzero = np.any(data != 0.0, axis=1)
    return TermTensor(
        subcircuit_index=subcircuit_index,
        cut_order=cut_order,
        num_effective=num_effective,
        data=data,
        nonzero=nonzero,
    )
