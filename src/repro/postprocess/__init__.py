"""Classical postprocessing: attribution, FD reconstruction, DD query."""

from .attribution import (
    ATTRIBUTION_BASES,
    DOWNSTREAM_TERMS,
    UPSTREAM_TERMS,
    TermTensor,
    attributed_vector,
    build_term_tensor,
)
from .engine import (
    STRATEGIES,
    ContractionEngine,
    ContractionResult,
    contract_terms,
    resolve_strategy,
)
from .plan import (
    CacheStats,
    CachingTensorProvider,
    PlanExecution,
    PreparedPlan,
    QueryPlan,
    restricted_signature,
    generalized_signature,
)
from .reconstruct import (
    ReconstructionResult,
    ReconstructionStats,
    Reconstructor,
    binned_tensor,
    reconstruct_full,
)
from .parallel import ParallelStats, WorkerPool
from .stream import Shard, StreamStats, StreamingReconstructor
from .dd import (
    Bin,
    DDRecursion,
    DDStats,
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
)
from .cost import (
    classical_simulation_flops,
    estimate_speedup,
    reconstruction_flops,
)
from .synthetic import RandomTensorProvider
from .shots import ShotBasedTensorProvider, estimate_required_shots

__all__ = [
    "ATTRIBUTION_BASES",
    "DOWNSTREAM_TERMS",
    "UPSTREAM_TERMS",
    "TermTensor",
    "attributed_vector",
    "build_term_tensor",
    "STRATEGIES",
    "ContractionEngine",
    "ContractionResult",
    "contract_terms",
    "resolve_strategy",
    "ReconstructionResult",
    "ReconstructionStats",
    "Reconstructor",
    "binned_tensor",
    "reconstruct_full",
    "CacheStats",
    "CachingTensorProvider",
    "PlanExecution",
    "PreparedPlan",
    "QueryPlan",
    "restricted_signature",
    "generalized_signature",
    "ParallelStats",
    "WorkerPool",
    "Shard",
    "StreamStats",
    "StreamingReconstructor",
    "Bin",
    "DDRecursion",
    "DDStats",
    "DynamicDefinitionQuery",
    "PrecomputedTensorProvider",
    "classical_simulation_flops",
    "estimate_speedup",
    "reconstruction_flops",
    "RandomTensorProvider",
    "ShotBasedTensorProvider",
    "estimate_required_shots",
]
