"""Variational warm path: cut once, rebind parameters, re-fuse what moved.

An optimizer loop (QAOA/VQE-style) re-evaluates the *same circuit
structure* hundreds of times with only rotation angles changing.  The
cut, the variant plan, most fused blocks and most subcircuit tensors are
bit-identical across iterations — :class:`VariationalSession` keeps them
resident and recomputes only what a rebind actually touched:

* the **cut** is found once (or restored from an
  :class:`~repro.service.store.ArtifactStore` under the
  parameter-invariant ``cut:v2`` fingerprint) and reapplied to every
  rebind via :meth:`~repro.cutting.cutter.CutCircuit.rebound`, which
  shares clean :class:`~repro.cutting.cutter.Subcircuit` objects by
  reference;
* only **dirty subcircuits** — those containing a changed gate — are
  re-evaluated; their noise streams are keyed on the subcircuit index
  (:func:`~repro.sim.noise.spawn_rng`), so the partial evaluation is
  bit-identical to a from-scratch run;
* inside a dirty subcircuit, the fusion pass reuses the structural block
  partition and every per-block unitary whose gates didn't move
  (:func:`~repro.sim.batch.fuse_gates`);
* clean subcircuits are served from their **stored term tensors** —
  :class:`~repro.postprocess.reconstruct.Reconstructor` accepts the
  tensor list directly, so untouched subcircuits never rebuild anything.

Every :meth:`VariationalSession.rebind` returns a :class:`RebindStats`
record proving the reuse (cut cache hit, dirty set, fused blocks rebuilt
vs reused, tensors reused) plus per-stage timings; the service's
variational job mode streams these per iteration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..cutting.cutter import CutCircuit
from ..cutting.variants import SubcircuitResult
from ..obs import trace
from ..obs.metrics import get_registry
from ..postprocess.attribution import TermTensor, build_term_tensor
from ..postprocess.reconstruct import ReconstructionResult, Reconstructor
from ..sim.batch import fusion_stats
from .pipeline import CutQC

__all__ = ["RebindStats", "VariationalSession", "spsa_gains"]

_REBINDS = get_registry().counter(
    "repro_rebinds_total", "Variational rebind iterations executed."
)
_REBIND_DIRTY = get_registry().counter(
    "repro_rebind_subcircuits_total",
    "Subcircuits touched per rebind by disposition.",
    ("disposition",),
)
_REBIND_SECONDS = get_registry().histogram(
    "repro_rebind_seconds", "Per-stage rebind wall time.", ("stage",)
)


def spsa_gains(
    k: int,
    a: float = 0.2,
    c: float = 0.15,
    stability: float = 10.0,
    alpha: float = 0.602,
    gamma: float = 0.101,
) -> Tuple[float, float]:
    """Standard SPSA gain schedule ``(a_k, c_k)`` for iteration ``k``.

    ``a_k = a / (k + 1 + stability)**alpha`` scales the gradient step and
    ``c_k = c / (k + 1)**gamma`` the two-sided perturbation; the exponents
    are Spall's asymptotically-optimal defaults.
    """
    return (
        a / (k + 1 + stability) ** alpha,
        c / (k + 1) ** gamma,
    )


@dataclass
class RebindStats:
    """What one :meth:`VariationalSession.rebind` actually recomputed."""

    iteration: int
    num_gates_changed: int
    #: True when the cut was reused — from the session (every iteration
    #: after the first) or restored from the artifact store.
    cut_cache_hit: bool
    dirty_subcircuits: Tuple[int, ...]
    reused_subcircuits: int
    #: Term tensors served unchanged from the previous iteration.
    tensors_reused: int
    #: Fused blocks assembled during this rebind's evaluation vs block
    #: unitaries actually rebuilt (process-local counters: pooled/forked
    #: execution modes only reflect the parent's share).
    fusion_blocks_total: int
    fusion_blocks_built: int
    execution_mode: Optional[str]
    bind_seconds: float
    #: Cut search/restore time — nonzero only on the first rebind.
    cut_seconds: float
    evaluate_seconds: float
    tensor_seconds: float

    @property
    def fusion_blocks_reused(self) -> int:
        return self.fusion_blocks_total - self.fusion_blocks_built

    def as_dict(self) -> Dict:
        return {
            "iteration": self.iteration,
            "num_gates_changed": self.num_gates_changed,
            "cut_cache_hit": self.cut_cache_hit,
            "dirty_subcircuits": list(self.dirty_subcircuits),
            "reused_subcircuits": self.reused_subcircuits,
            "tensors_reused": self.tensors_reused,
            "fusion_blocks_total": self.fusion_blocks_total,
            "fusion_blocks_built": self.fusion_blocks_built,
            "fusion_blocks_reused": self.fusion_blocks_reused,
            "execution_mode": self.execution_mode,
            "bind_seconds": self.bind_seconds,
            "cut_seconds": self.cut_seconds,
            "evaluate_seconds": self.evaluate_seconds,
            "tensor_seconds": self.tensor_seconds,
        }


class VariationalSession:
    """Cut once → rebind parameters → query, with per-iteration stats.

    Construction takes the same configuration as :class:`CutQC` (the
    session owns an internal pipeline for the first cut/evaluation); the
    circuit passed in defines the *structure* and the initial parameter
    values.  ``store`` optionally checkpoints the cut through an
    :class:`~repro.service.store.ArtifactStore` — because cut
    fingerprints are parameter-invariant, a session for a known structure
    restores the cut without ever running the search.

    Typical loop::

        session = VariationalSession(qaoa_maxcut(n, edges, p), device_size)
        for theta in optimizer:
            stats = session.rebind(theta)       # incremental re-evaluation
            cost = maxcut_cost(session.probabilities(), edges, n)

    :meth:`rebind` accepts the flat parameter vector of
    :meth:`QuantumCircuit.parameters` (one value per gate parameter, in
    gate order).
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        max_subcircuit_qubits: int,
        store=None,
        **pipeline_options,
    ):
        self._pipeline = CutQC(
            circuit, max_subcircuit_qubits, **pipeline_options
        )
        self.circuit = circuit
        self.store = store
        self._executor = None
        self._cut: Optional[CutCircuit] = None
        self._solution = None
        self._results: List[Optional[SubcircuitResult]] = []
        self._tensors: List[Optional[TermTensor]] = []
        self._reconstructor: Optional[Reconstructor] = None
        self.history: List[RebindStats] = []
        #: Store counters: how the session's single cut was obtained.
        self.cut_store_hit: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.circuit.num_parameters

    def parameters(self) -> Tuple[float, ...]:
        return self.circuit.parameters()

    def cut_fingerprint(self) -> str:
        """The (parameter-invariant) store key of this session's cut."""
        return self._pipeline.cut_fingerprint()

    @property
    def cut(self) -> Optional[CutCircuit]:
        return self._cut

    # ------------------------------------------------------------------
    def _obtain_cut(self, bound: QuantumCircuit) -> Tuple[CutCircuit, bool]:
        """First-iteration cut: restore from the store or run the search."""
        pipeline = self._pipeline
        pipeline.circuit = bound
        if self.store is not None:
            key = pipeline.cut_fingerprint()
            restored = self.store.get_cut(key, bound)
            if restored is not None:
                cut, solution = restored
                self._solution = solution
                pipeline.load_cut(cut, solution)
                return cut, True
        cut = pipeline.cut()
        self._solution = pipeline.solution
        if self.store is not None:
            self.store.put_cut(
                pipeline.cut_fingerprint(), bound, cut, pipeline.solution
            )
        return cut, False

    def _make_executor(self):
        from .executor import VariantExecutor

        pipeline = self._pipeline
        return VariantExecutor(
            backend=pipeline.backend,
            workers=pipeline.workers,
            pool=pipeline.pool,
            pool_shots=pipeline.pool_shots,
            seed=pipeline.seed,
            worker_pool=pipeline.worker_pool,
            sim_batch=pipeline.sim_batch,
            fusion_width=pipeline.fusion_width,
            device=pipeline.device,
            device_shots=pipeline.device_shots,
            trajectories=pipeline.trajectories,
            noisy_method=pipeline.noisy_method,
        )

    # ------------------------------------------------------------------
    def rebind(self, values: Sequence[float]) -> RebindStats:
        """Bind new parameters and re-evaluate only what they touched."""
        with trace.span(
            "variational.rebind", {"iteration": len(self.history)}
        ):
            stats = self._rebind_impl(values)
        _REBINDS.inc()
        if stats.dirty_subcircuits:
            _REBIND_DIRTY.inc(
                len(stats.dirty_subcircuits), disposition="dirty"
            )
        if stats.reused_subcircuits:
            _REBIND_DIRTY.inc(stats.reused_subcircuits, disposition="reused")
        for stage in ("bind", "cut", "evaluate", "tensor"):
            _REBIND_SECONDS.observe(
                getattr(stats, f"{stage}_seconds"), stage=stage
            )
        return stats

    def _rebind_impl(self, values: Sequence[float]) -> RebindStats:
        began = time.perf_counter()
        bound, changed = self.circuit.bind(values)
        bind_seconds = time.perf_counter() - began

        cut_began = time.perf_counter()
        if self._cut is None:
            cut, store_hit = self._obtain_cut(bound)
            self.cut_store_hit = store_hit
            cut_cache_hit = store_hit
            dirty = tuple(range(cut.num_subcircuits))
            to_evaluate = list(cut.subcircuits)
            self._results = [None] * cut.num_subcircuits
            self._tensors = [None] * cut.num_subcircuits
        else:
            cut, dirty_list = self._cut.rebound(bound, changed)
            cut_cache_hit = True
            dirty = tuple(dirty_list)
            to_evaluate = [cut.subcircuits[index] for index in dirty]
        cut_seconds = time.perf_counter() - cut_began
        self._cut = cut
        self.circuit = bound
        self._pipeline.circuit = bound

        if self._executor is None:
            self._executor = self._make_executor()
        executor = self._executor

        fusion_before = fusion_stats()
        evaluate_began = time.perf_counter()
        execution_mode = None
        if to_evaluate:
            for result in executor.run(to_evaluate):
                self._results[result.subcircuit.index] = result
            execution_mode = executor.last_report.mode
            if (
                executor.pool is not None
                and executor.pool_affinity is None
            ):
                # Pin the first full placement so later dirty-only runs
                # land each subcircuit on the same device — keeping the
                # noise streams (and the compiled geometries) identical
                # to a from-scratch evaluation of the whole batch.
                executor.pool_affinity = executor.last_pool_placement
        evaluate_seconds = time.perf_counter() - evaluate_began
        fusion_after = fusion_stats()

        tensor_began = time.perf_counter()
        for index in dirty:
            self._tensors[index] = build_term_tensor(self._results[index])
        tensor_seconds = time.perf_counter() - tensor_began
        self._reconstructor = None  # rebuilt lazily from the tensor list

        stats = RebindStats(
            iteration=len(self.history),
            num_gates_changed=len(changed),
            cut_cache_hit=cut_cache_hit,
            dirty_subcircuits=dirty,
            reused_subcircuits=cut.num_subcircuits - len(dirty),
            tensors_reused=cut.num_subcircuits - len(dirty),
            fusion_blocks_total=(
                fusion_after["blocks_total"] - fusion_before["blocks_total"]
            ),
            fusion_blocks_built=(
                fusion_after["blocks_built"] - fusion_before["blocks_built"]
            ),
            execution_mode=execution_mode,
            bind_seconds=bind_seconds,
            cut_seconds=cut_seconds,
            evaluate_seconds=evaluate_seconds,
            tensor_seconds=tensor_seconds,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------
    def _require_state(self) -> Reconstructor:
        if self._cut is None:
            raise RuntimeError("call rebind() before querying the session")
        if self._reconstructor is None:
            self._reconstructor = Reconstructor(
                self._cut,
                tensors=list(self._tensors),
                engine=self._pipeline.engine,
            )
        return self._reconstructor

    def fd_query(self, **query_options) -> ReconstructionResult:
        """Full-definition query against the current parameter binding."""
        return self._require_state().reconstruct(**query_options)

    def probabilities(self, **query_options) -> np.ndarray:
        return self.fd_query(**query_options).probabilities

    @property
    def results(self) -> List[SubcircuitResult]:
        """Current per-subcircuit results (clean ones shared across
        iterations)."""
        return list(self._results)

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """Aggregate reuse accounting over every rebind so far."""
        iterations = len(self.history)
        subcircuits = self._cut.num_subcircuits if self._cut else 0
        return {
            "iterations": iterations,
            "num_subcircuits": subcircuits,
            "num_parameters": self.num_parameters,
            "cut_store_hit": self.cut_store_hit,
            "cut_cache_hits": sum(
                1 for stats in self.history if stats.cut_cache_hit
            ),
            "subcircuit_evaluations": sum(
                len(stats.dirty_subcircuits) for stats in self.history
            ),
            "subcircuits_reused": sum(
                stats.reused_subcircuits for stats in self.history
            ),
            "tensors_reused": sum(
                stats.tensors_reused for stats in self.history
            ),
            "fusion_blocks_total": sum(
                stats.fusion_blocks_total for stats in self.history
            ),
            "fusion_blocks_built": sum(
                stats.fusion_blocks_built for stats in self.history
            ),
            "bind_seconds": sum(s.bind_seconds for s in self.history),
            "cut_seconds": sum(s.cut_seconds for s in self.history),
            "evaluate_seconds": sum(s.evaluate_seconds for s in self.history),
            "tensor_seconds": sum(s.tensor_seconds for s in self.history),
        }
