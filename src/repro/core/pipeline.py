"""The end-to-end CutQC pipeline (paper Fig. 5).

``CutQC`` wires the stages together: the MIP cut searcher locates cuts,
the cutter produces subcircuits, a :class:`~repro.core.executor.VariantExecutor`
runs every physical variant (deduplicated, optionally across
``multiprocessing`` workers or a :class:`~repro.devices.pool.DevicePool`),
and the postprocessor answers full-definition, streaming (sharded) FD,
or dynamic-definition queries through the shared query-plan layer and
contraction engine.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..obs import trace
from ..obs.metrics import get_registry
from ..cutting import (
    CutCircuit,
    CutSolution,
    SubcircuitResult,
    cut_circuit,
    find_cuts,
)
from ..cutting.searcher import DEFAULT_MAX_CUTS, DEFAULT_MAX_SUBCIRCUITS
from ..devices import VirtualDevice
from ..devices.pool import DevicePool
from ..postprocess import (
    ContractionEngine,
    DynamicDefinitionQuery,
    PrecomputedTensorProvider,
    ReconstructionResult,
    Reconstructor,
    StreamStats,
    StreamingReconstructor,
)
from .executor import ExecutionReport, VariantExecutor, resolve_sim_batch

__all__ = ["CutQC", "evaluate_with_cutqc"]

Backend = Callable[[QuantumCircuit], np.ndarray]

#: Reconstruction-query latency by mode (fd/dd/top_k) — the pipeline-level
#: histogram ``GET /metrics`` exposes.
_QUERY_SECONDS = get_registry().histogram(
    "repro_query_seconds",
    "End-to-end reconstruction query latency by mode.",
    ("mode",),
)


class CutQC:
    """Cut a circuit, evaluate the pieces, reconstruct or sample the output.

    Parameters
    ----------
    circuit:
        The (fully connected) circuit to evaluate.
    max_subcircuit_qubits:
        Device size ``D`` — the qubit budget per subcircuit.
    backend:
        A ``circuit -> probability vector`` callable used to evaluate
        subcircuit variants.  Defaults to exact statevector simulation.
        Pass ``device.backend(...)`` for noisy hardware emulation.
    cuts:
        Explicit ``(wire, wire_index)`` cut points; when given, the MIP
        search is skipped.
    workers:
        Default process count for both variant execution and the ``kron``
        reconstruction sweep (overridable per query).
    pool:
        Evaluate variants on a :class:`~repro.devices.pool.DevicePool`
        instead of a single backend (the paper's many-small-QPUs model).
        Mutually exclusive with ``backend``/``device``.
    pool_shots:
        Shots per pool job (``None`` = device default, ``0`` = exact).
    strategy:
        Default contraction strategy for queries: ``"kron"``,
        ``"tensor_network"``, or ``"auto"``.
    seed:
        Seed for the pool's per-job trajectory sampling, making pooled
        evaluation reproducible.
    worker_pool:
        A persistent :class:`~repro.postprocess.parallel.WorkerPool`
        shared by every stage: variant execution fans out over the warm
        workers, streaming-FD shards evaluate concurrently (tensors
        published to shared memory once), and DD zoom rounds / large
        ``kron`` sweeps dispatch through the same pool.  The pipeline
        does not own the pool — the caller closes it.
    sim_batch:
        Evaluate variants with the batched fused-simulation strategy:
        each subcircuit body runs once per init batch of at most
        ``sim_batch`` members and all measurement bases derive from the
        retained states.  ``None`` (the default) turns batching **on**
        — exact statevector batching, batched noisy evaluation when a
        ``device`` is set, and per-group batched dispatch over a
        ``pool`` — resolving to ``0`` only under a custom ``backend``.
        An explicit positive value with ``backend`` raises; ``0``
        forces the legacy per-variant path (the ``--no-sim-batch``
        escape hatch, including per-circuit pool dispatch).
    fusion_width:
        Max fused-unitary width for the batched strategy's fusion pass.
    device_shots:
        Shots per variant on the batched device path (``None`` = the
        device's configured default, ``0`` = noise-only distributions).
    trajectories:
        Monte-Carlo trajectories per variant for batched noisy
        evaluation on a ``device``.
    noisy_method:
        ``"trajectory"`` (default) or ``"density"`` — the batched noisy
        estimator used with a ``device``.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        max_subcircuit_qubits: int,
        max_subcircuits: int = DEFAULT_MAX_SUBCIRCUITS,
        max_cuts: int = DEFAULT_MAX_CUTS,
        method: str = "auto",
        backend: Optional[Backend] = None,
        device: Optional[VirtualDevice] = None,
        cuts: Optional[Sequence[Tuple[int, int]]] = None,
        workers: int = 1,
        pool: Optional[DevicePool] = None,
        pool_shots: Optional[int] = None,
        strategy: str = "kron",
        seed: Optional[int] = None,
        worker_pool=None,
        sim_batch: Optional[int] = None,
        fusion_width: int = 2,
        device_shots: Optional[int] = None,
        trajectories: int = 24,
        noisy_method: str = "trajectory",
    ):
        if device is not None and backend is not None:
            raise ValueError("pass either a backend or a device, not both")
        if pool is not None and (backend is not None or device is not None):
            raise ValueError("pass either a pool or a backend/device, not both")
        from ..sim.batch import MAX_FUSION_WIDTH

        if not 1 <= fusion_width <= MAX_FUSION_WIDTH:
            raise ValueError(
                f"fusion_width must be in [1, {MAX_FUSION_WIDTH}], "
                f"got {fusion_width}"
            )
        if noisy_method not in ("trajectory", "density"):
            raise ValueError(
                f"noisy_method must be 'trajectory' or 'density', "
                f"got {noisy_method!r}"
            )
        if trajectories < 1:
            raise ValueError("trajectories must be positive")
        self.circuit = circuit
        self.max_subcircuit_qubits = max_subcircuit_qubits
        self.max_subcircuits = max_subcircuits
        self.max_cuts = max_cuts
        self.method = method
        self.backend = backend
        self.device = device
        self.device_shots = device_shots
        self.trajectories = int(trajectories)
        self.noisy_method = noisy_method
        self.pool = pool
        self.pool_shots = pool_shots
        self.seed = seed
        self.workers = int(workers)
        self.worker_pool = worker_pool
        self.sim_batch = resolve_sim_batch(sim_batch, backend=backend, pool=pool)
        self.fusion_width = int(fusion_width)
        self.engine = ContractionEngine(
            strategy=strategy, workers=self.workers, pool=worker_pool
        )
        self._explicit_cuts = list(cuts) if cuts is not None else None
        self._solution: Optional[CutSolution] = None
        self._cut: Optional[CutCircuit] = None
        self._results: Optional[List[SubcircuitResult]] = None
        self._streamer: Optional[StreamingReconstructor] = None
        self.execution_report: Optional[ExecutionReport] = None

    # ------------------------------------------------------------------
    @property
    def solution(self) -> Optional[CutSolution]:
        return self._solution

    @property
    def strategy(self) -> str:
        return self.engine.strategy

    # -- resumable-stage hooks (service checkpointing) ------------------
    def cut_options(self) -> dict:
        """The canonical cut-search option dict this pipeline would use.

        This is the identity of the :meth:`cut` stage: two pipelines with
        equal circuits and equal ``cut_options()`` produce the same cut,
        so the pair is the artifact-store key for cut checkpoints.
        """
        return {
            "max_subcircuit_qubits": self.max_subcircuit_qubits,
            "max_subcircuits": self.max_subcircuits,
            "max_cuts": self.max_cuts,
            "method": self.method,
            "cuts": self._explicit_cuts,
        }

    def cut_fingerprint(self) -> str:
        """Content fingerprint of the cut stage — ``(circuit, options)``."""
        from ..service.store import cut_fingerprint

        return cut_fingerprint(self.circuit, self.cut_options())

    def evaluation_fingerprint(
        self,
        backend: str = "statevector",
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        config: Optional[dict] = None,
    ) -> str:
        """Content fingerprint of the evaluate stage.

        ``backend`` is a config *tag* describing how variants are
        executed (e.g. ``"statevector:batched:v2"``,
        ``"device:bogota:trajectory:batched:v1"``) — the callable itself
        cannot be hashed.  ``config`` carries extra result-shaping knobs
        (e.g. trajectory counts) into the digest.  The circuit's bound
        parameter values always enter the digest: the cut fingerprint is
        parameter-invariant, so the angles disambiguate rebinds.
        """
        from ..service.store import evaluation_fingerprint

        return evaluation_fingerprint(
            self.cut_fingerprint(),
            backend=backend,
            shots=shots,
            seed=seed,
            config=config,
            params=self.circuit.parameters(),
        )

    def load_cut(
        self,
        cut: CutCircuit,
        solution: Optional[CutSolution] = None,
    ) -> "CutQC":
        """Adopt a previously computed cut, skipping the search stage.

        The cut must respect this pipeline's qubit budget and describe
        this pipeline's circuit; loading resets any downstream state
        (evaluation results, streamers).
        """
        width = cut.max_subcircuit_width()
        if width > self.max_subcircuit_qubits:
            raise ValueError(
                f"loaded cut has a {width}-qubit subcircuit, exceeding the "
                f"{self.max_subcircuit_qubits}-qubit budget"
            )
        if cut.circuit.num_qubits != self.circuit.num_qubits:
            raise ValueError(
                f"loaded cut is for a {cut.circuit.num_qubits}-qubit "
                f"circuit, pipeline has {self.circuit.num_qubits}"
            )
        self._cut = cut
        self._solution = solution
        self._results = None
        self._streamer = None
        self.execution_report = None
        return self

    def load_results(self, results: Sequence[SubcircuitResult]) -> "CutQC":
        """Adopt previously evaluated subcircuit tensors, skipping variant
        execution (the service's warm-cache path)."""
        cut = self.cut()
        results = list(results)
        if len(results) != cut.num_subcircuits:
            raise ValueError(
                f"{len(results)} results for {cut.num_subcircuits} "
                "subcircuits"
            )
        self._results = results
        self._streamer = None
        self.execution_report = None
        return self

    def cut(self) -> CutCircuit:
        """Locate cuts (unless given explicitly) and split the circuit."""
        if self._cut is None:
            if self._explicit_cuts is not None:
                self._cut = cut_circuit(self.circuit, self._explicit_cuts)
            else:
                with trace.span(
                    "cut.search",
                    {"qubits": self.circuit.num_qubits,
                     "method": self.method},
                ):
                    self._solution = find_cuts(
                        self.circuit,
                        self.max_subcircuit_qubits,
                        max_subcircuits=self.max_subcircuits,
                        max_cuts=self.max_cuts,
                        method=self.method,
                    )
                self._cut = self._solution.apply(self.circuit)
            width = self._cut.max_subcircuit_width()
            if width > self.max_subcircuit_qubits:
                raise ValueError(
                    f"cut produced a {width}-qubit subcircuit, exceeding the "
                    f"{self.max_subcircuit_qubits}-qubit budget"
                )
        return self._cut

    def evaluate(self) -> List[SubcircuitResult]:
        """Run every physical variant of every subcircuit, batched and
        deduplicated, via the :class:`VariantExecutor`."""
        if self._results is None:
            cut = self.cut()
            executor = VariantExecutor(
                backend=self.backend,
                workers=self.workers,
                pool=self.pool,
                pool_shots=self.pool_shots,
                seed=self.seed,
                worker_pool=self.worker_pool,
                sim_batch=self.sim_batch,
                fusion_width=self.fusion_width,
                device=self.device,
                device_shots=self.device_shots,
                trajectories=self.trajectories,
                noisy_method=self.noisy_method,
            )
            with trace.span(
                "evaluate", {"subcircuits": cut.num_subcircuits}
            ):
                self._results = executor.run(cut.subcircuits)
            self.execution_report = executor.last_report
        return self._results

    # ------------------------------------------------------------------
    def fd_query(
        self,
        workers: Optional[int] = None,
        greedy_order: bool = True,
        early_termination: bool = True,
        strategy: Optional[str] = None,
    ) -> ReconstructionResult:
        """Full-definition query: the complete 2**n output distribution."""
        began = time.perf_counter()
        with trace.span(
            "query.fd", {"strategy": strategy or self.strategy}
        ):
            reconstructor = Reconstructor(
                self.cut(), results=self.evaluate(), engine=self.engine
            )
            result = reconstructor.reconstruct(
                workers=workers,
                greedy_order=greedy_order,
                early_termination=early_termination,
                strategy=strategy,
            )
        _QUERY_SECONDS.observe(time.perf_counter() - began, mode="fd")
        return result

    def dd_query(
        self,
        max_active_qubits: int,
        max_recursions: int = 10,
        active_order: Optional[Sequence[int]] = None,
        shots_per_variant: Optional[int] = None,
        seed: Optional[int] = None,
        zoom_width: int = 1,
        cache: bool = True,
    ) -> DynamicDefinitionQuery:
        """Dynamic-definition query: binned sampling with recursive zoom.

        With ``shots_per_variant`` set, each recursion re-samples the
        subcircuit variants with that many shots and merges at the shot
        level (Algorithm 1's literal execution mode) instead of collapsing
        precomputed exact tensors.

        ``zoom_width`` expands that many frontier bins per round (in
        parallel when ``workers > 1``); ``cache=False`` disables the
        incremental collapse cache (the naive per-recursion re-collapse).
        """
        if shots_per_variant is not None:
            from ..postprocess import ShotBasedTensorProvider

            backend = self.backend
            if backend is None and self.device is not None:
                # Shot-based DD re-samples per variant: route through the
                # device's per-circuit closure (the batched engine serves
                # the precomputed-tensor path via evaluate()).
                backend = self.device.backend(
                    shots=self.device_shots,
                    trajectories=self.trajectories,
                    seed=seed if seed is not None else self.seed,
                )
            if backend is None and self.pool is not None:
                # Honor a configured pool in shot-based DD too (fd_query
                # already executes through it).
                backend = self.pool.backend(
                    shots=self.pool_shots,
                    seed=seed if seed is not None else self.seed,
                )
            provider = ShotBasedTensorProvider(
                self.cut(),
                shots=shots_per_variant,
                backend=backend,
                seed=seed,
                workers=self.workers,
                cache=cache,
                sim_batch=self.sim_batch if backend is None else 0,
                fusion_width=self.fusion_width,
            )
        else:
            provider = PrecomputedTensorProvider(
                self.cut(), results=self.evaluate(), cache=cache
            )
        query = DynamicDefinitionQuery(
            provider,
            max_active_qubits=max_active_qubits,
            active_order=active_order,
            engine=self.engine,
            zoom_width=zoom_width,
        )
        began = time.perf_counter()
        with trace.span(
            "query.dd",
            {"active_qubits": max_active_qubits,
             "recursions": max_recursions},
        ):
            query.run(max_recursions)
        _QUERY_SECONDS.observe(time.perf_counter() - began, mode="dd")
        return query

    # ------------------------------------------------------------------
    def _streaming_reconstructor(self) -> StreamingReconstructor:
        if self._streamer is None:
            self._streamer = StreamingReconstructor(
                self.cut(),
                results=self.evaluate(),
                engine=self.engine,
                pool=self.worker_pool,
            )
        return self._streamer

    def fd_stream(
        self,
        shard_qubits: int,
        shard_indices: Optional[Sequence[int]] = None,
    ):
        """Streaming FD query: the distribution as ``2**shard_qubits``
        lazy shards of ``2**(n - shard_qubits)`` entries each.

        Shards concatenate (in index order) to exactly
        :meth:`fd_query`'s distribution, but only one shard is ever
        resident; :attr:`stream_stats` reports peak shard memory and the
        collapse-cache hit rate after (or while) the iterator is
        consumed.
        """
        return self._streaming_reconstructor().shards(
            shard_qubits, shard_indices
        )

    def fd_top_k(
        self,
        shard_qubits: int,
        k: int,
        shard_indices: Optional[Sequence[int]] = None,
    ) -> List[Tuple[str, float]]:
        """The k highest-probability output states, at streaming memory."""
        began = time.perf_counter()
        with trace.span(
            "query.top_k", {"shard_qubits": shard_qubits, "k": k}
        ):
            result = self._streaming_reconstructor().top_k(
                shard_qubits, k, shard_indices
            )
        _QUERY_SECONDS.observe(time.perf_counter() - began, mode="top_k")
        return result

    @property
    def stream_stats(self) -> Optional[StreamStats]:
        """Stats of the most recent :meth:`fd_stream`/:meth:`fd_top_k`."""
        if self._streamer is None:
            return None
        return self._streamer.last_stats

    @property
    def parallel_stats(self):
        """The shared worker pool's latency/utilization report (or None)."""
        if self.worker_pool is None:
            return None
        return self.worker_pool.stats()


def evaluate_with_cutqc(
    circuit: QuantumCircuit,
    max_subcircuit_qubits: int,
    backend: Optional[Backend] = None,
    workers: int = 1,
    **kwargs,
) -> np.ndarray:
    """One-call FD evaluation: returns the reconstructed distribution."""
    pipeline = CutQC(
        circuit,
        max_subcircuit_qubits,
        backend=backend,
        **kwargs,
    )
    return pipeline.fd_query(workers=workers).probabilities
