"""The paper's primary contribution: the end-to-end CutQC pipeline."""

from .pipeline import CutQC, evaluate_with_cutqc

__all__ = ["CutQC", "evaluate_with_cutqc"]
