"""The paper's primary contribution: the end-to-end CutQC pipeline."""

from .executor import ExecutionReport, VariantExecutor, circuit_fingerprint
from .pipeline import CutQC, evaluate_with_cutqc
from .variational import RebindStats, VariationalSession, spsa_gains

__all__ = [
    "CutQC",
    "evaluate_with_cutqc",
    "ExecutionReport",
    "VariantExecutor",
    "circuit_fingerprint",
    "RebindStats",
    "VariationalSession",
    "spsa_gains",
]
