"""Batched, deduplicated, parallel execution of subcircuit variants.

The quantum half of CutQC's workload is the ``3^O * 4^rho`` physical
variants of every subcircuit (Fig. 3).  The seed pipeline ran them one
subcircuit at a time through a single backend callable; this module
flattens **all** subcircuits' variants into one batch, executes every
distinct physical circuit exactly once, and fans the unique batch out —
serially, across ``multiprocessing`` workers, or over a
:class:`~repro.devices.pool.DevicePool` (the paper's §5.1 many-small-QPUs
deployment).

The layering mirrors the circuit-knitting-toolbox's
``run_subcircuit_instances`` stage: circuit generation, deduplication and
dispatch are one reusable component, independent of how the results are
later attributed and contracted.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import QuantumCircuit
from ..cutting.cutter import Subcircuit
from ..cutting.variants import (
    INIT_LABELS,
    NoisyEvalSpec,
    SubcircuitResult,
    SubcircuitVariant,
    VariantCircuitFactory,
    batched_noisy_variant_probabilities,
    batched_variant_probabilities,
    circuit_fingerprint,
    generate_variants,
)
from ..devices.device import VirtualDevice
from ..devices.pool import DevicePool
from ..obs import trace
from ..obs.metrics import get_registry
from ..sim.statevector import simulate_probabilities

__all__ = [
    "DEFAULT_SIM_BATCH",
    "ExecutionReport",
    "VariantExecutor",
    "circuit_fingerprint",
    "resolve_sim_batch",
]

Backend = Callable[[QuantumCircuit], np.ndarray]

#: A process pool is only worth spawning for at least this many circuits.
_MIN_PARALLEL_CIRCUITS = 4

#: Init-batch size used when ``sim_batch`` is left unset (``None``).
#: Batching is the default execution mode — both for the exact
#: statevector path and for ``--device`` noisy evaluation.
DEFAULT_SIM_BATCH = 256

_EVAL_VARIANTS = get_registry().counter(
    "repro_eval_variants_total",
    "Subcircuit variants evaluated, by execution mode.",
    ("mode",),
)
_EVAL_BODY_PASSES = get_registry().counter(
    "repro_eval_body_passes_total",
    "Fused body passes simulated by the batched strategy.",
)
_EVAL_SECONDS = get_registry().histogram(
    "repro_eval_seconds",
    "Variant-evaluation batch latency by execution mode.",
    ("mode",),
)


def _observe_report(report: "ExecutionReport") -> None:
    """Feed one finished evaluation's report into the metrics registry."""
    _EVAL_VARIANTS.inc(report.num_variants, mode=report.mode)
    _EVAL_SECONDS.observe(report.elapsed_seconds, mode=report.mode)
    if report.num_body_passes:
        _EVAL_BODY_PASSES.inc(report.num_body_passes)


def resolve_sim_batch(
    sim_batch: Optional[int],
    backend: Optional[Backend] = None,
    pool: Optional[DevicePool] = None,
) -> int:
    """Resolve the ``sim_batch`` default: batching unless it can't apply.

    ``None`` (unset) resolves to :data:`DEFAULT_SIM_BATCH`, except when a
    custom ``backend`` callable executes whole circuits — that path
    cannot batch, so unset quietly resolves to ``0``.  A
    :class:`DevicePool` batches too (each body-key group is pinned to one
    pool device and evaluated through the batched noisy engine), so unset
    stays at the default there; ``0`` forces the legacy per-circuit pool
    dispatch.  An *explicit* positive ``sim_batch`` combined with a
    ``backend`` still raises, preserving the strict conflict check.
    """
    if sim_batch is None:
        if backend is not None:
            return 0
        return DEFAULT_SIM_BATCH
    if sim_batch < 0:
        raise ValueError("sim_batch must be >= 0")
    if sim_batch and backend is not None:
        raise ValueError(
            "sim_batch requires the exact statevector backend; it is "
            "mutually exclusive with a custom backend callable"
        )
    return int(sim_batch)


@dataclass
class ExecutionReport:
    """What one :meth:`VariantExecutor.run` batch actually executed."""

    num_subcircuits: int
    num_variants: int
    num_unique_circuits: int
    workers: int
    #: "serial" | "process" | "pool" | "worker-pool" on the per-variant
    #: path; "batched" | "batched-process" | "batched-pool" on the fused
    #: init-batch path; the same three with a "batched-noisy" prefix on
    #: the batched device (noisy) path and a "batched-devicepool" prefix
    #: when a DevicePool executes the groups.
    mode: str
    elapsed_seconds: float
    #: Modelled quantum wall-clock when a pool executed the batch.
    pool_makespan_seconds: Optional[float] = None
    pool_serial_seconds: Optional[float] = None
    #: Batched-strategy accounting: fused body passes actually simulated
    #: and the knobs that shaped them (None on the per-variant path).
    num_body_passes: Optional[int] = None
    sim_batch: Optional[int] = None
    fusion_width: Optional[int] = None

    @property
    def dedup_ratio(self) -> float:
        """Variants per executed circuit (>= 1; 1.0 means no sharing)."""
        if self.num_unique_circuits <= 0:
            return 1.0
        return self.num_variants / self.num_unique_circuits


# -- multiprocessing plumbing -------------------------------------------------

_EXEC_STATE: dict = {}


def _exec_init(backend):  # pragma: no cover - runs in worker processes
    _EXEC_STATE["backend"] = backend


def _exec_run(circuit):  # pragma: no cover - runs in worker processes
    return np.asarray(_EXEC_STATE["backend"](circuit), dtype=float)


def _run_init_batch(payload):
    """One shipped work unit of the batched strategy: a whole init batch.

    Module-level so it crosses process boundaries (ephemeral
    ``multiprocessing`` pools here, the persistent
    :class:`~repro.postprocess.parallel.WorkerPool` via its own wrapper).
    Exact payloads are ``(subcircuit, combos, fusion_width)``; noisy
    payloads append a :class:`~repro.cutting.variants.NoisyEvalSpec` —
    the compiled geometry and fused body plan it implies are memoized
    per process, so chunks landing on a warm worker reuse them.
    """
    if len(payload) == 4:
        subcircuit, init_combos, fusion_width, spec = payload
        return batched_noisy_variant_probabilities(
            subcircuit, spec, fusion_width=fusion_width,
            init_combos=init_combos,
        )
    subcircuit, init_combos, fusion_width = payload
    return batched_variant_probabilities(
        subcircuit, fusion_width=fusion_width, init_combos=init_combos
    )


def _crosses_process_boundary(backend: Backend) -> bool:
    """Whether the backend callable can be shipped to worker processes."""
    import pickle

    try:
        pickle.dumps(backend)
    except Exception:
        return False
    return True


class VariantExecutor:
    """Run every physical variant of a set of subcircuits, once each.

    Parameters
    ----------
    backend:
        ``circuit -> probability vector`` callable.  Defaults to the exact
        statevector simulator.  Mutually exclusive with ``pool``.
    workers:
        Process count for fanning the unique batch out with
        ``multiprocessing``.  ``1`` executes in-process.  Deterministic
        backends (the default exact simulator) produce bit-identical
        results at any worker count; a *stochastic* backend closure is
        duplicated into each forked worker with its RNG state, so its
        noise streams are correlated across workers — run noisy backends
        serially or through a seeded ``pool``.
    pool:
        A :class:`~repro.devices.pool.DevicePool`.  With batching on (the
        default) each *body-key group* of subcircuits is pinned to the
        least-loaded fitting device (LPT over the groups' modelled
        variant seconds) and evaluated there through the batched noisy
        engine — one device geometry per group, fused bodies memoized per
        process (mode ``"batched-devicepool"``).  With ``sim_batch=0``
        the legacy per-circuit dispatch runs instead.  The modelled
        quantum makespan is recorded in the report either way.  Set
        :attr:`pool_affinity` (subcircuit index -> device index, e.g.
        from a previous run's :attr:`last_pool_placement`) to pin groups
        to devices across partial re-evaluations — a variational rebind
        that re-runs only dirty subcircuits then reproduces the full
        batch's placement bit-for-bit.
    pool_shots:
        Shots per job when executing on a pool (``None`` = device default,
        ``0`` = exact, noise-model-only execution).
    seed:
        Seed for the pool's per-job trajectory sampling.
    worker_pool:
        A persistent :class:`~repro.postprocess.parallel.WorkerPool`.
        When set, the unique batch fans out over the warm workers
        (mode ``"worker-pool"``) instead of forking a throwaway
        ``multiprocessing`` pool per call; ignored when a ``pool``
        (DevicePool) executes the batch.
    sim_batch:
        The **batched strategy**: instead of executing one circuit per
        variant, each subcircuit's measurement-free body is simulated
        once per init batch (at most ``sim_batch`` of the ``4^rho`` init
        states stacked per fused pass) and all ``3^O`` measurement bases
        are derived from the retained states.  Work units shipped to
        workers are whole init-batches, never individual circuits.
        ``None`` (the default) resolves to :data:`DEFAULT_SIM_BATCH`
        whenever batching can apply — exact simulation, or a ``device``
        (noisy batching) — and to ``0`` under a custom ``backend`` or a
        ``pool``.  An explicit positive value with ``backend``/``pool``
        raises; ``0`` forces per-variant execution.
    fusion_width:
        Maximum fused-unitary width for the batched strategy's
        gate-fusion pass.
    device:
        A :class:`~repro.devices.device.VirtualDevice`.  With batching
        on (the default) variants evaluate through the batched noisy
        engine (:func:`~repro.cutting.variants.batched_noisy_variant_probabilities`)
        with fused bodies memoized per worker process; with
        ``sim_batch=0`` the device's legacy per-circuit ``backend()``
        closure runs instead.  Mutually exclusive with ``backend`` and
        ``pool``.
    device_shots:
        Shots per variant on the device path (``None`` = the device's
        own default; ``0`` = noise-only distributions without shot
        noise).
    trajectories:
        Monte-Carlo trajectories for the device path's noisy estimator.
    noisy_method:
        ``"trajectory"`` (default) or ``"density"`` — the batched noisy
        estimator; ignored without a ``device``.
    """

    def __init__(
        self,
        backend: Optional[Backend] = None,
        workers: int = 1,
        pool: Optional[DevicePool] = None,
        pool_shots: Optional[int] = None,
        seed: Optional[int] = None,
        worker_pool=None,
        sim_batch: Optional[int] = None,
        fusion_width: int = 2,
        device: Optional[VirtualDevice] = None,
        device_shots: Optional[int] = None,
        trajectories: int = 24,
        noisy_method: str = "trajectory",
    ):
        if backend is not None and pool is not None:
            raise ValueError("pass either a backend or a pool, not both")
        if device is not None and backend is not None:
            raise ValueError("pass either a device or a backend, not both")
        if device is not None and pool is not None:
            raise ValueError("pass either a device or a pool, not both")
        if workers < 1:
            raise ValueError("workers must be positive")
        from ..sim.batch import MAX_FUSION_WIDTH

        if not 1 <= fusion_width <= MAX_FUSION_WIDTH:
            raise ValueError(
                f"fusion_width must be in [1, {MAX_FUSION_WIDTH}], "
                f"got {fusion_width}"
            )
        self.workers = int(workers)
        self.pool = pool
        self.pool_shots = pool_shots
        self.seed = seed
        self.worker_pool = worker_pool
        self.sim_batch = resolve_sim_batch(sim_batch, backend=backend, pool=pool)
        self.fusion_width = int(fusion_width)
        self.device = device
        self.trajectories = int(trajectories)
        self.noisy_method = noisy_method
        #: Optional subcircuit-index -> pool-device-index pinning for the
        #: batched pool path; ``last_pool_placement`` records what the
        #: most recent run chose (for every group member).
        self.pool_affinity: Optional[Dict[int, int]] = None
        self.last_pool_placement: Optional[Dict[int, int]] = None
        self.noisy_spec: Optional[NoisyEvalSpec] = None
        if device is not None and self.sim_batch:
            self.noisy_spec = NoisyEvalSpec(
                device=device,
                method=noisy_method,
                trajectories=trajectories,
                shots=device.shots if device_shots is None else device_shots,
                seed=seed,
            )
            self.backend = None
        elif device is not None:
            # Explicit sim_batch=0: the legacy per-circuit closure.
            self.backend = device.backend(
                shots=device_shots, trajectories=trajectories, seed=seed
            )
        else:
            self.backend = backend
        self.last_report: Optional[ExecutionReport] = None

    # ------------------------------------------------------------------
    def run(self, subcircuits: Sequence[Subcircuit]) -> List[SubcircuitResult]:
        """Evaluate all variants of ``subcircuits``; one result per piece."""
        if self.sim_batch:
            return self._run_batched(subcircuits)
        began = time.perf_counter()
        subcircuits = list(subcircuits)
        # 1. Flatten: every (subcircuit, variant) pair, deduplicated by
        #    the cheap structural key across the whole batch — circuits
        #    are only materialized for keys never seen before.
        unique_circuits: List[QuantumCircuit] = []
        slot_of: Dict[Tuple, int] = {}
        assignments: List[List[Tuple[SubcircuitVariant, int]]] = []
        local_unique: List[int] = []
        for subcircuit in subcircuits:
            factory = VariantCircuitFactory(subcircuit)
            seen_local = set()
            variant_slots: List[Tuple[SubcircuitVariant, int]] = []
            for variant in generate_variants(subcircuit):
                key = factory.structural_key(variant)
                if key not in slot_of:
                    slot_of[key] = len(unique_circuits)
                    unique_circuits.append(factory.circuit(variant))
                seen_local.add(key)
                variant_slots.append((variant, slot_of[key]))
            assignments.append(variant_slots)
            local_unique.append(len(seen_local))

        # 2. Execute the unique batch.
        vectors, mode, makespan, serial_seconds = self._execute(unique_circuits)

        # 3. Reassemble per-subcircuit results (shared vectors are shared
        #    objects — no copies).
        results: List[SubcircuitResult] = []
        for subcircuit, variant_slots, unique in zip(
            subcircuits, assignments, local_unique
        ):
            probabilities = {}
            for variant, slot in variant_slots:
                vector = vectors[slot]
                if vector.size != 1 << subcircuit.width:
                    raise ValueError(
                        f"backend returned vector of size {vector.size} for a "
                        f"{subcircuit.width}-qubit variant"
                    )
                probabilities[(variant.inits, variant.bases)] = vector
            results.append(
                SubcircuitResult(
                    subcircuit=subcircuit,
                    probabilities=probabilities,
                    num_variants=len(variant_slots),
                    num_unique_circuits=unique,
                )
            )
        self.last_report = ExecutionReport(
            num_subcircuits=len(subcircuits),
            num_variants=sum(len(slots) for slots in assignments),
            num_unique_circuits=len(unique_circuits),
            workers=self.workers,
            mode=mode,
            elapsed_seconds=time.perf_counter() - began,
            pool_makespan_seconds=makespan,
            pool_serial_seconds=serial_seconds,
        )
        _observe_report(self.last_report)
        return results

    # ------------------------------------------------------------------
    def _usable_pool(self):
        """The warm worker pool, unless it is broken.

        A pool whose respawn budget is exhausted fails every dispatch
        with ``PoolUnrecoverableError``; treating it as absent degrades
        this executor to its forked/serial paths instead.
        """
        pool = self.worker_pool
        if pool is not None and getattr(pool, "broken", False):
            return None
        return pool

    def _execute(
        self, circuits: Sequence[QuantumCircuit]
    ) -> Tuple[List[np.ndarray], str, Optional[float], Optional[float]]:
        if self.pool is not None:
            run = self.pool.backend(shots=self.pool_shots, seed=self.seed)
            vectors = [np.asarray(run(c), dtype=float) for c in circuits]
            schedule = run.schedule  # type: ignore[attr-defined]
            return (
                vectors,
                "pool",
                schedule.makespan_seconds,
                schedule.serial_seconds,
            )
        backend = self.backend or simulate_probabilities
        # Probe picklability once, up front: a lambda/closure backend
        # falls back to serial here, while a genuine backend exception
        # raised *during* parallel execution propagates immediately
        # instead of being misread as a transport failure and re-run.
        worker_pool = self._usable_pool()
        parallel_wanted = (
            worker_pool is not None or self.workers > 1
        ) and len(circuits) >= _MIN_PARALLEL_CIRCUITS
        if parallel_wanted and _crosses_process_boundary(backend):
            if worker_pool is not None:
                vectors = worker_pool.map_backend(backend, list(circuits))
                return vectors, "worker-pool", None, None
            return self._execute_parallel(backend, circuits), "process", None, None
        vectors = [np.asarray(backend(c), dtype=float) for c in circuits]
        return vectors, "serial", None, None

    # ------------------------------------------------------------------
    # Batched strategy: fused init-batch passes instead of circuits
    # ------------------------------------------------------------------
    def _run_batched(
        self, subcircuits: Sequence[Subcircuit]
    ) -> List[SubcircuitResult]:
        """One fused body pass per init batch, per *unique* subcircuit.

        Subcircuits with equal body keys (same body, same cut-line
        positions) have pairwise-identical variant sets, so each group
        is simulated once and its members share the result vectors —
        the batched counterpart of the per-variant cross-subcircuit
        dedup, with identical ``ExecutionReport`` accounting.
        """
        began = time.perf_counter()
        subcircuits = list(subcircuits)
        group_of: Dict[Tuple, int] = {}
        group_heads: List[Subcircuit] = []
        member_group: List[int] = []
        for subcircuit in subcircuits:
            body_key = VariantCircuitFactory(subcircuit).body_key
            if body_key not in group_of:
                group_of[body_key] = len(group_heads)
                group_heads.append(subcircuit)
            member_group.append(group_of[body_key])

        group_specs: List[Optional[NoisyEvalSpec]]
        makespan = serial_seconds = None
        if self.pool is not None:
            group_specs, makespan, serial_seconds = self._place_pool_groups(
                group_heads, member_group, subcircuits
            )
        else:
            group_specs = [self.noisy_spec] * len(group_heads)

        # One payload per (group, init chunk): workers receive whole
        # init-batches, never individual circuits.  On the noisy path
        # the spec rides along; geometry compiles once per process.
        payloads: List[Tuple] = []
        payload_group: List[int] = []
        for index, head in enumerate(group_heads):
            combos = [
                tuple(combo)
                for combo in itertools.product(
                    INIT_LABELS, repeat=len(head.init_lines)
                )
            ]
            spec = group_specs[index]
            for start in range(0, len(combos), self.sim_batch):
                chunk = combos[start : start + self.sim_batch]
                if spec is not None:
                    payloads.append((head, chunk, self.fusion_width, spec))
                else:
                    payloads.append((head, chunk, self.fusion_width))
                payload_group.append(index)

        if self.pool is not None:
            prefix = "batched-devicepool"
        elif self.noisy_spec is not None:
            prefix = "batched-noisy"
        else:
            prefix = "batched"
        outputs, mode = self._execute_batched(payloads, prefix)

        group_probabilities: List[Dict] = [{} for _ in group_heads]
        group_passes = [0] * len(group_heads)
        for index, (probabilities, passes) in zip(payload_group, outputs):
            group_probabilities[index].update(probabilities)
            group_passes[index] += passes

        results: List[SubcircuitResult] = []
        for subcircuit, index in zip(subcircuits, member_group):
            probabilities = group_probabilities[index]
            results.append(
                SubcircuitResult(
                    subcircuit=subcircuit,
                    probabilities=probabilities,
                    num_variants=len(probabilities),
                    num_unique_circuits=len(probabilities),
                    mode=prefix,
                    num_body_passes=group_passes[index],
                )
            )
        self.last_report = ExecutionReport(
            num_subcircuits=len(subcircuits),
            num_variants=sum(r.num_variants for r in results),
            num_unique_circuits=sum(
                len(probabilities) for probabilities in group_probabilities
            ),
            workers=self.workers,
            mode=mode,
            elapsed_seconds=time.perf_counter() - began,
            pool_makespan_seconds=makespan,
            pool_serial_seconds=serial_seconds,
            num_body_passes=sum(group_passes),
            sim_batch=self.sim_batch,
            fusion_width=self.fusion_width,
        )
        _observe_report(self.last_report)
        return results

    def _place_pool_groups(
        self,
        group_heads: Sequence[Subcircuit],
        member_group: Sequence[int],
        subcircuits: Sequence[Subcircuit],
    ) -> Tuple[List[NoisyEvalSpec], float, float]:
        """Pin each body-key group to one pool device; build its spec.

        Placement is LPT over the groups' modelled variant seconds (the
        same per-job timing model as the legacy per-circuit dispatch, so
        makespan accounting stays comparable) — unless
        :attr:`pool_affinity` pins a group's subcircuit index to a
        device, in which case the pin wins.  Group-level placement keeps
        one compiled device geometry per subcircuit body and makes the
        noise streams a deterministic function of ``(device, seed,
        subcircuit)``, independent of which other groups share the batch.
        """
        from ..cutting.variants import num_physical_variants

        devices = self.pool.devices
        loads = [0.0] * len(devices)
        chosen_of: List[Optional[int]] = [None] * len(group_heads)
        seconds: List[float] = []
        for head in group_heads:
            shots = (
                self.pool_shots
                if self.pool_shots is not None
                else devices[0].shots
            )
            seconds.append(
                num_physical_variants(head)
                * self.pool.estimate_job_seconds(head.circuit, shots or 0)
            )
        pinned = self.pool_affinity or {}
        order = sorted(range(len(group_heads)), key=lambda i: -seconds[i])
        for index in order:
            head = group_heads[index]
            if head.index in pinned:
                chosen = pinned[head.index]
            else:
                candidates = [
                    device_index
                    for device_index, device in enumerate(devices)
                    if device.num_qubits >= head.width
                ]
                if not candidates:
                    raise ValueError(
                        f"no pool device fits a {head.width}-qubit subcircuit"
                    )
                chosen = min(candidates, key=lambda i: loads[i])
            loads[chosen] += seconds[index]
            chosen_of[index] = chosen
        placement: Dict[int, int] = {}
        for subcircuit, group in zip(subcircuits, member_group):
            placement[subcircuit.index] = chosen_of[group]
        self.last_pool_placement = placement
        specs: List[NoisyEvalSpec] = []
        for index, head in enumerate(group_heads):
            device = devices[chosen_of[index]]
            specs.append(
                NoisyEvalSpec(
                    device=device,
                    method=self.noisy_method,
                    trajectories=self.trajectories,
                    shots=(
                        device.shots
                        if self.pool_shots is None
                        else self.pool_shots
                    ),
                    seed=self.seed,
                )
            )
        return specs, max(loads, default=0.0), float(sum(loads))

    def _execute_batched(
        self, payloads: Sequence[Tuple], prefix: str
    ) -> Tuple[List[Tuple[Dict, int]], str]:
        """Run init-batch payloads serially, on the warm pool, or forked."""
        worker_pool = self._usable_pool()
        parallel_wanted = (
            worker_pool is not None or self.workers > 1
        ) and len(payloads) > 1
        if parallel_wanted and worker_pool is not None:
            with trace.span(
                "evaluate.dispatch",
                {"mode": f"{prefix}-pool", "payloads": len(payloads)},
            ):
                outputs = worker_pool.map_variant_batches(payloads)
            # Pull the workers' fusion/geometry cache counters home while
            # the pool is warm — scrapes then read gauges, never dispatch.
            from ..postprocess.parallel import publish_cache_gauges

            publish_cache_gauges(worker_pool)
            return outputs, f"{prefix}-pool"
        if parallel_wanted:
            import multiprocessing

            with trace.span(
                "evaluate.dispatch",
                {"mode": f"{prefix}-process", "payloads": len(payloads)},
            ):
                pool = multiprocessing.Pool(processes=self.workers)
                try:
                    outputs = pool.map(_run_init_batch, list(payloads))
                finally:
                    pool.terminate()
                    pool.join()
            return outputs, f"{prefix}-process"
        with trace.span(
            "evaluate.dispatch", {"mode": prefix, "payloads": len(payloads)}
        ):
            return [_run_init_batch(payload) for payload in payloads], prefix

    def _execute_parallel(
        self, backend: Backend, circuits: Sequence[QuantumCircuit]
    ) -> List[np.ndarray]:
        """Map the batch over a freshly constructed process pool."""
        import multiprocessing

        # try/finally with an explicit join: a worker exception (e.g. a
        # backend raising mid-batch) must not orphan the freshly
        # constructed pool's processes — ``with`` terminates the pool
        # but never waits for the children to exit.
        pool = multiprocessing.Pool(
            processes=self.workers,
            initializer=_exec_init,
            initargs=(backend,),
        )
        try:
            chunk = max(1, len(circuits) // (self.workers * 4))
            return pool.map(_exec_run, list(circuits), chunksize=chunk)
        finally:
            pool.terminate()
            pool.join()
