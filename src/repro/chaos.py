"""Deterministic chaos injection for the fault-tolerance layer.

Disabled by default and **allocation-free when disabled**: every hook is
a module-level function whose first statement reads one global and
returns — the same bar ``obs/trace.py`` holds (the paired
``benchmarks/bench_chaos_overhead.py`` gate keeps it ≤5%).

Activation is either programmatic (:func:`configure`) or environmental
(``CHAOS_SPEC`` / ``CHAOS_SEED``), and :func:`configure` exports to the
environment by default so pool worker processes — ``fork`` *and*
``spawn`` — inherit the same spec.

Spec grammar (entries joined with ``;``)::

    CHAOS_SPEC="worker_exit@task=7;store_ioerror@p=0.1;slow_task=2.5s;corrupt_artifact@nth=3"

Each entry is ``name[=param][@selector[@selector...]]``:

==================  ====================================================
rule                effect at its hook site
==================  ====================================================
``worker_exit``     ``os._exit(1)`` in the pool worker task loop
``slow_task``       ``time.sleep(param)`` in the worker task loop
``task_error``      raise :class:`~repro.faults.ChaosInjectedError`
``pool_down``       raise ``PoolUnrecoverableError`` at parent dispatch
``store_ioerror``   raise ``OSError`` in ``ArtifactStore`` read/write
``corrupt_artifact``  flip bytes in an artifact as it is written
``journal_ioerror``  raise ``OSError`` in ``JobJournal.append``
==================  ====================================================

Selectors decide *when* a consulted rule fires:

* ``task=N`` / ``at=N`` — on ordinal ``N`` exactly once.  Worker-task
  sites use the pool's **global task id** (deterministic across any
  number of workers); other sites count their own invocations
  per-process.  Retried attempts do **not** re-fire unless ``every``
  is also given — so a ``worker_exit@task=7`` kill is survivable while
  ``worker_exit@task=7@every`` poisons task 7 outright.
* ``nth=N`` — every ``N``-th consultation (per process).
* ``p=F`` — probability ``F`` per consultation, from a ``random.Random``
  seeded with ``CHAOS_SEED`` (deterministic per process).
* no selector — every consultation (first attempts only, unless
  ``every``).

Every injection increments ``repro_chaos_injections_total{rule,site}``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Optional

from .faults import ChaosInjectedError, PoolUnrecoverableError

__all__ = [
    "configure",
    "enabled",
    "on_journal_append",
    "on_pool_dispatch",
    "on_store_read",
    "on_store_write",
    "on_worker_task",
    "parse_spec",
]

_RULE_NAMES = frozenset({
    "worker_exit", "slow_task", "task_error", "pool_down",
    "store_ioerror", "corrupt_artifact", "journal_ioerror",
})


def _parse_seconds(text: str) -> float:
    return float(text[:-1] if text.endswith("s") else text)


class _Rule:
    __slots__ = ("name", "param", "at", "nth", "p", "every", "count", "rng")

    def __init__(self, name: str, param: Optional[str], selectors: Dict,
                 seed: int):
        self.name = name
        self.param = param
        self.at = selectors.get("at")
        self.nth = selectors.get("nth")
        self.p = selectors.get("p")
        self.every = selectors.get("every", False)
        self.count = 0
        # Seed folds in the rule name so two p= rules don't share a coin.
        self.rng = random.Random(f"{seed}:{name}") if self.p is not None else None

    def fires(self, ordinal: Optional[int] = None, attempt: int = 1) -> bool:
        if self.at is not None:
            if ordinal is None:
                self.count += 1
                ordinal = self.count
            return ordinal == self.at and (attempt == 1 or self.every)
        if self.nth is not None:
            self.count += 1
            return self.count % self.nth == 0
        if self.p is not None:
            return self.rng.random() < self.p
        return attempt == 1 or self.every

    def as_dict(self) -> Dict:
        doc: Dict = {"rule": self.name}
        if self.param is not None:
            doc["param"] = self.param
        for key in ("at", "nth", "p"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        if self.every:
            doc["every"] = True
        return doc


def parse_spec(text: str, seed: int = 0) -> List[_Rule]:
    """Parse a ``CHAOS_SPEC`` string into rule objects (raises on typos)."""
    rules: List[_Rule] = []
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        head, *raw_selectors = entry.split("@")
        name, _, param = head.partition("=")
        name = name.strip()
        if name not in _RULE_NAMES:
            raise ValueError(
                f"unknown chaos rule {name!r} (known: {sorted(_RULE_NAMES)})"
            )
        selectors: Dict = {}
        for selector in raw_selectors:
            key, _, value = selector.partition("=")
            key = key.strip()
            if key == "task":
                key = "at"
            if key == "every":
                selectors["every"] = True
            elif key in ("at", "nth"):
                selectors[key] = int(value)
            elif key == "p":
                selectors[key] = float(value)
            else:
                raise ValueError(f"unknown chaos selector {key!r} in {entry!r}")
        rules.append(_Rule(name, param.strip() or None if param else None,
                           selectors, seed))
    return rules


class _Spec:
    """One activated chaos configuration (rules grouped by name)."""

    def __init__(self, text: str, seed: int):
        self.text = text
        self.seed = seed
        self.rules: Dict[str, List[_Rule]] = {}
        for rule in parse_spec(text, seed):
            self.rules.setdefault(rule.name, []).append(rule)
        self._lock = threading.Lock()
        self._counter = None

    def _record(self, rule: str, site: str) -> None:
        if self._counter is None:
            from .obs.metrics import get_registry

            self._counter = get_registry().counter(
                "repro_chaos_injections_total",
                "Faults injected by the chaos harness.",
                ("rule", "site"),
            )
        self._counter.inc(rule=rule, site=site)

    def fired(self, name: str, site: str, ordinal: Optional[int] = None,
              attempt: int = 1) -> Optional[_Rule]:
        """The first matching rule that fires at this consultation."""
        rules = self.rules.get(name)
        if not rules:
            return None
        with self._lock:
            for rule in rules:
                if rule.fires(ordinal=ordinal, attempt=attempt):
                    self._record(name, site)
                    return rule
        return None


#: The active spec, or ``None`` (the allocation-free fast path).
_SPEC: Optional[_Spec] = None


def configure(spec: Optional[str], seed: int = 0, export: bool = True) -> None:
    """Activate (or with ``None``/``""`` deactivate) fault injection.

    ``export=True`` mirrors the spec into ``CHAOS_SPEC``/``CHAOS_SEED``
    so pool workers spawned afterwards inherit it.
    """
    global _SPEC
    if not spec:
        _SPEC = None
        if export:
            os.environ.pop("CHAOS_SPEC", None)
            os.environ.pop("CHAOS_SEED", None)
        return
    _SPEC = _Spec(spec, seed)
    if export:
        os.environ["CHAOS_SPEC"] = spec
        os.environ["CHAOS_SEED"] = str(seed)


def enabled() -> bool:
    return _SPEC is not None


def active_spec() -> Optional[str]:
    spec = _SPEC
    return spec.text if spec is not None else None


# ----------------------------------------------------------------------
# Hook points.  Each starts with the one-global-read guard; everything
# below the guard only runs when chaos is configured.
# ----------------------------------------------------------------------

def on_worker_task(task_id: int, attempt: int) -> None:
    """Pool worker task loop, after the start heartbeat is sent."""
    spec = _SPEC
    if spec is None:
        return
    rule = spec.fired("slow_task", "pool_task", ordinal=task_id,
                      attempt=attempt)
    if rule is not None:
        time.sleep(_parse_seconds(rule.param or "1.0"))
    if spec.fired("worker_exit", "pool_task", ordinal=task_id,
                  attempt=attempt) is not None:
        os._exit(1)
    if spec.fired("task_error", "pool_task", ordinal=task_id,
                  attempt=attempt) is not None:
        raise ChaosInjectedError(
            f"chaos: injected task error (task {task_id}, attempt {attempt})"
        )


def on_pool_dispatch() -> None:
    """Parent-side pool dispatch (before any worker is spawned)."""
    spec = _SPEC
    if spec is None:
        return
    if spec.fired("pool_down", "pool_dispatch") is not None:
        raise PoolUnrecoverableError("chaos: pool forced unrecoverable")


def on_store_read(kind: str) -> None:
    """Top of ``ArtifactStore`` artifact loads (before any ``open``)."""
    spec = _SPEC
    if spec is None:
        return
    if spec.fired("store_ioerror", f"store_read_{kind}") is not None:
        raise OSError(f"chaos: injected store read error ({kind})")


def on_store_write(data: bytes) -> bytes:
    """Inside the store's atomic write; may corrupt the payload."""
    spec = _SPEC
    if spec is None:
        return data
    if spec.fired("store_ioerror", "store_write") is not None:
        raise OSError("chaos: injected store write error")
    if spec.fired("corrupt_artifact", "store_write") is not None and data:
        # Flip bits in the middle of the payload: detectable by the
        # store's SHA-256 verification, invisible to a size check.
        middle = len(data) // 2
        mangled = bytearray(data)
        mangled[middle] ^= 0xFF
        mangled[0] ^= 0xFF
        return bytes(mangled)
    return data


def on_journal_append() -> None:
    """Top of ``JobJournal.append`` (before the lock/write)."""
    spec = _SPEC
    if spec is None:
        return
    if spec.fired("journal_ioerror", "journal_append") is not None:
        raise OSError("chaos: injected journal append error")


# Environment activation at import time: this is how spawned pool
# workers (fresh interpreters) pick up the parent's spec.
if os.environ.get("CHAOS_SPEC"):
    configure(
        os.environ["CHAOS_SPEC"],
        seed=int(os.environ.get("CHAOS_SEED", "0") or 0),
        export=False,
    )
