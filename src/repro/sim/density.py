"""Exact density-matrix simulation of noisy circuits.

The Monte-Carlo trajectory sampler (:mod:`repro.sim.noise`) is an
*estimator* of the depolarizing channel; this module computes the channel
exactly by evolving the full density matrix.  Memory is ``4^n`` complex
entries, so it is practical to ~10 qubits — enough to validate the
trajectory sampler (see tests) and to run exact noisy experiments at
Fig. 11's subcircuit scale.

Noise semantics match :class:`~repro.sim.noise.NoiseModel` exactly:

* after every 1-qubit gate, a depolarizing channel with probability
  ``error_1q`` applies a uniformly random non-identity Pauli;
* after every 2-qubit gate, a two-qubit depolarizing channel with
  probability ``error_2q`` applies a uniformly random non-identity
  Pauli pair;
* measurement applies an independent symmetric bit-flip confusion with
  probability ``readout`` per qubit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits import Gate, QuantumCircuit
from .noise import NoiseModel, apply_readout_error
from .statevector import initial_state

__all__ = [
    "DensityMatrix",
    "BatchedDensityMatrix",
    "DensityMatrixSimulator",
]

_PAULIS_1Q = ("x", "y", "z")


def _depolarize_tensor(
    tensor: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
    probability: float,
    offset: int = 0,
) -> np.ndarray:
    """Apply a ``k``-qubit depolarizing channel to a rank-``2n`` tensor.

    Uses the Pauli-twirl identity — summing ``P rho P^dagger`` over all
    ``4^k`` Paulis fully depolarizes the targets::

        sum_P P rho P^dag = 4^k * (I/2^k  (x)  tr_targets rho)

    so the uniform non-identity Pauli channel collapses to one convex
    combination of ``rho`` with its partially-traced, maximally-mixed
    replacement — no per-Pauli-combination scratch copies::

        rho' = (1 - lam) rho + lam * (I/2^k (x) tr_targets rho),
        lam  = p * 4^k / (4^k - 1)

    ``offset`` shifts the ket/bra axes (1 for a leading batch axis); the
    channel then applies to every batch member in the same pass.
    """
    qubits = list(qubits)
    k = len(qubits)
    dim = 1 << k
    lam = probability * (dim * dim) / (dim * dim - 1.0)
    ket_axes = [offset + q for q in qubits]
    bra_axes = [offset + num_qubits + q for q in qubits]
    rest = [
        axis
        for axis in range(tensor.ndim)
        if axis not in ket_axes and axis not in bra_axes
    ]
    perm = rest + ket_axes + bra_axes
    moved = np.ascontiguousarray(np.transpose(tensor, perm))
    flat = moved.reshape(-1, dim, dim)
    traced = np.trace(flat, axis1=1, axis2=2)
    mixed = traced[:, None, None] * (
        np.eye(dim, dtype=tensor.dtype) / dim
    )
    out = (1.0 - lam) * flat + lam * mixed
    return np.transpose(out.reshape(moved.shape), np.argsort(perm))


class DensityMatrix:
    """An ``n``-qubit mixed state stored as a rank-``2n`` tensor.

    Axes ``0..n-1`` are the ket indices (qubit order), axes ``n..2n-1``
    the bra indices.
    """

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if num_qubits > 14:
            raise ValueError(
                f"{num_qubits} qubits needs 4^{num_qubits} complex entries; "
                "use the statevector or trajectory simulators instead"
            )
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            matrix = np.zeros((dim, dim), dtype=complex)
            matrix[0, 0] = 1.0
        else:
            matrix = np.asarray(data, dtype=complex)
            if matrix.shape != (dim, dim):
                raise ValueError(
                    f"data shape {matrix.shape} does not match "
                    f"{self.num_qubits} qubits"
                )
        self._tensor = matrix.reshape((2,) * (2 * self.num_qubits)).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_statevector(cls, amplitudes: np.ndarray) -> "DensityMatrix":
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        num_qubits = int(np.log2(amplitudes.size))
        if 1 << num_qubits != amplitudes.size:
            raise ValueError("amplitude vector length is not a power of two")
        return cls(num_qubits, np.outer(amplitudes, amplitudes.conj()))

    @classmethod
    def from_labels(cls, labels: Sequence[str]) -> "DensityMatrix":
        vector = np.array([1.0], dtype=complex)
        for label in labels:
            vector = np.kron(vector, initial_state(label))
        return cls.from_statevector(vector)

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        dim = 1 << self.num_qubits
        return self._tensor.reshape(dim, dim).copy()

    def probabilities(self) -> np.ndarray:
        dim = 1 << self.num_qubits
        return np.real(np.diagonal(self._tensor.reshape(dim, dim))).copy()

    def trace(self) -> complex:
        dim = 1 << self.num_qubits
        return complex(np.trace(self._tensor.reshape(dim, dim)))

    def purity(self) -> float:
        dim = 1 << self.num_qubits
        matrix = self._tensor.reshape(dim, dim)
        return float(np.real(np.trace(matrix @ matrix)))

    # ------------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """rho <- U rho U^dagger on the given qubits (first = MSB)."""
        qubits = list(qubits)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
            )
        operator = matrix.reshape((2,) * (2 * k))
        # Ket side.
        contracted = np.tensordot(
            operator, self._tensor, axes=(range(k, 2 * k), qubits)
        )
        self._tensor = np.moveaxis(contracted, range(k), qubits)
        # Bra side (conjugate).
        bra_axes = [self.num_qubits + q for q in qubits]
        contracted = np.tensordot(
            operator.conj(), self._tensor, axes=(range(k, 2 * k), bra_axes)
        )
        self._tensor = np.moveaxis(contracted, range(k), bra_axes)

    def apply_gate(self, gate: Gate) -> None:
        self.apply_unitary(gate.matrix(), gate.qubits)

    def apply_depolarizing(self, qubits: Sequence[int], probability: float) -> None:
        """Uniform non-identity Pauli error with the given probability.

        Computed as a single closed-form superoperator (Pauli twirl — see
        :func:`_depolarize_tensor`) instead of materializing all
        ``4^k - 1`` Pauli combinations with a scratch copy each.
        """
        if probability <= 0.0:
            return
        self._tensor = _depolarize_tensor(
            self._tensor, qubits, self.num_qubits, probability
        )


class BatchedDensityMatrix:
    """``B`` mixed ``n``-qubit states advanced together through one body.

    The density-matrix counterpart of
    :class:`~repro.sim.batch.BatchedStatevector`: the state is a
    ``(B,) + (2,)*(2n)`` complex tensor (axis 0 the batch, axes
    ``1..n`` the ket indices, ``n+1..2n`` the bra indices), and one
    gate application is two transpose+matmul sweeps (ket side and
    conjugated bra side) over the whole batch.  Noise channels apply
    batch-wide through the same closed-form superoperator the serial
    :class:`DensityMatrix` uses.  Memory is ``B * 4^n * 16`` bytes.
    """

    def __init__(
        self,
        num_qubits: int,
        batch_size: int,
        data: Optional[np.ndarray] = None,
    ):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if num_qubits > 14:
            raise ValueError(
                f"{num_qubits} qubits needs 4^{num_qubits} complex entries "
                "per batch member; use the batched trajectory path instead"
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.num_qubits = int(num_qubits)
        self.batch_size = int(batch_size)
        shape = (self.batch_size,) + (2,) * (2 * self.num_qubits)
        if data is None:
            tensor = np.zeros(shape, dtype=complex)
            tensor[(slice(None),) + (0,) * (2 * self.num_qubits)] = 1.0
            self._tensor = tensor
        else:
            array = np.asarray(data, dtype=complex)
            if array.size != self.batch_size << (2 * self.num_qubits):
                raise ValueError(
                    f"data of size {array.size} does not match batch "
                    f"{self.batch_size} x {self.num_qubits} qubits"
                )
            self._tensor = array.reshape(shape).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_product_batch(
        cls, states: Sequence[Sequence[np.ndarray]]
    ) -> "BatchedDensityMatrix":
        """Build a batch of product mixed states.

        ``states[b][q]`` is the 2x2 density matrix of qubit ``q`` in
        batch member ``b``.  This is how noisy state-prep fragments fold
        into the batch: a 1q prep gate followed by its depolarizing
        channel keeps the state a product of per-qubit 2x2 densities, so
        prep never costs a body pass of its own.
        """
        if not states:
            raise ValueError("need at least one batch member")
        num_qubits = len(states[0])
        if num_qubits == 0:
            raise ValueError("members must cover at least one qubit")
        batch = len(states)
        block = np.ones((batch, 1, 1), dtype=complex)
        for qubit in range(num_qubits):
            column = np.array(
                [
                    np.asarray(member[qubit], dtype=complex).reshape(2, 2)
                    for member in states
                ]
            )
            dim = block.shape[1]
            block = np.einsum("bik,bjl->bijkl", block, column).reshape(
                batch, dim * 2, dim * 2
            )
        return cls(num_qubits, batch, block)

    def copy(self) -> "BatchedDensityMatrix":
        return BatchedDensityMatrix(
            self.num_qubits, self.batch_size, self._tensor
        )

    # ------------------------------------------------------------------
    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedDensityMatrix":
        """``rho <- U rho U^dagger`` on every batch member, in place."""
        qubits = list(qubits)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
            )
        self._contract(matrix, [1 + q for q in qubits], k)
        self._contract(
            matrix.conj(), [1 + self.num_qubits + q for q in qubits], k
        )
        return self

    def _contract(
        self, matrix: np.ndarray, target_axes: Sequence[int], k: int
    ) -> None:
        rest = [
            axis
            for axis in range(self._tensor.ndim)
            if axis not in target_axes
        ]
        perm = rest + list(target_axes)
        moved = np.transpose(self._tensor, perm)
        moved_shape = moved.shape
        flat = np.ascontiguousarray(moved).reshape(-1, 1 << k)
        out = flat @ matrix.T
        self._tensor = np.transpose(
            out.reshape(moved_shape), np.argsort(perm)
        )

    def applied(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedDensityMatrix":
        """A new batch with ``matrix`` applied; ``self`` is untouched."""
        clone = BatchedDensityMatrix.__new__(BatchedDensityMatrix)
        clone.num_qubits = self.num_qubits
        clone.batch_size = self.batch_size
        clone._tensor = self._tensor
        return clone.apply_matrix(matrix, qubits)

    def apply_gate(self, gate: Gate) -> "BatchedDensityMatrix":
        return self.apply_matrix(gate.matrix(), gate.qubits)

    def apply_depolarizing(
        self, qubits: Sequence[int], probability: float
    ) -> "BatchedDensityMatrix":
        """Batch-wide depolarizing channel (one superoperator pass)."""
        if probability > 0.0:
            self._tensor = _depolarize_tensor(
                self._tensor, qubits, self.num_qubits, probability, offset=1
            )
        return self

    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """``(B, 2^n)`` float diagonal probabilities."""
        dim = 1 << self.num_qubits
        flat = self._tensor.reshape(self.batch_size, dim, dim)
        return np.real(np.diagonal(flat, axis1=1, axis2=2)).astype(float)

    def member(self, index: int) -> DensityMatrix:
        """Batch member ``index`` as a standalone :class:`DensityMatrix`."""
        dim = 1 << self.num_qubits
        return DensityMatrix(
            self.num_qubits, self._tensor[index].reshape(dim, dim)
        )


class DensityMatrixSimulator:
    """Exact noisy evaluation: the ground truth the trajectory
    simulator converges to."""

    def __init__(self, noise: Optional[NoiseModel] = None):
        self.noise = noise or NoiseModel()

    def run(
        self,
        circuit: QuantumCircuit,
        initial_labels: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Exact noisy output distribution of ``circuit``."""
        state = self.evolve(circuit, initial_labels)
        return apply_readout_error(state.probabilities(), self.noise.readout)

    def evolve(
        self,
        circuit: QuantumCircuit,
        initial_labels: Optional[Sequence[str]] = None,
    ) -> DensityMatrix:
        """The pre-measurement density matrix after the noisy circuit."""
        if initial_labels is None:
            state = DensityMatrix(circuit.num_qubits)
        else:
            if len(initial_labels) != circuit.num_qubits:
                raise ValueError(
                    f"{len(initial_labels)} labels for "
                    f"{circuit.num_qubits} qubits"
                )
            state = DensityMatrix.from_labels(initial_labels)
        for gate in circuit:
            state.apply_gate(gate)
            rate = (
                self.noise.error_2q if gate.is_multiqubit else self.noise.error_1q
            )
            state.apply_depolarizing(gate.qubits, rate)
        return state
