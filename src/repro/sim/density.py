"""Exact density-matrix simulation of noisy circuits.

The Monte-Carlo trajectory sampler (:mod:`repro.sim.noise`) is an
*estimator* of the depolarizing channel; this module computes the channel
exactly by evolving the full density matrix.  Memory is ``4^n`` complex
entries, so it is practical to ~10 qubits — enough to validate the
trajectory sampler (see tests) and to run exact noisy experiments at
Fig. 11's subcircuit scale.

Noise semantics match :class:`~repro.sim.noise.NoiseModel` exactly:

* after every 1-qubit gate, a depolarizing channel with probability
  ``error_1q`` applies a uniformly random non-identity Pauli;
* after every 2-qubit gate, a two-qubit depolarizing channel with
  probability ``error_2q`` applies a uniformly random non-identity
  Pauli pair;
* measurement applies an independent symmetric bit-flip confusion with
  probability ``readout`` per qubit.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

import numpy as np

from ..circuits import Gate, QuantumCircuit
from .noise import NoiseModel, apply_readout_error
from .statevector import initial_state

__all__ = ["DensityMatrix", "DensityMatrixSimulator"]

_PAULIS_1Q = ("x", "y", "z")


class DensityMatrix:
    """An ``n``-qubit mixed state stored as a rank-``2n`` tensor.

    Axes ``0..n-1`` are the ket indices (qubit order), axes ``n..2n-1``
    the bra indices.
    """

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if num_qubits > 14:
            raise ValueError(
                f"{num_qubits} qubits needs 4^{num_qubits} complex entries; "
                "use the statevector or trajectory simulators instead"
            )
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            matrix = np.zeros((dim, dim), dtype=complex)
            matrix[0, 0] = 1.0
        else:
            matrix = np.asarray(data, dtype=complex)
            if matrix.shape != (dim, dim):
                raise ValueError(
                    f"data shape {matrix.shape} does not match "
                    f"{self.num_qubits} qubits"
                )
        self._tensor = matrix.reshape((2,) * (2 * self.num_qubits)).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_statevector(cls, amplitudes: np.ndarray) -> "DensityMatrix":
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        num_qubits = int(np.log2(amplitudes.size))
        if 1 << num_qubits != amplitudes.size:
            raise ValueError("amplitude vector length is not a power of two")
        return cls(num_qubits, np.outer(amplitudes, amplitudes.conj()))

    @classmethod
    def from_labels(cls, labels: Sequence[str]) -> "DensityMatrix":
        vector = np.array([1.0], dtype=complex)
        for label in labels:
            vector = np.kron(vector, initial_state(label))
        return cls.from_statevector(vector)

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        dim = 1 << self.num_qubits
        return self._tensor.reshape(dim, dim).copy()

    def probabilities(self) -> np.ndarray:
        dim = 1 << self.num_qubits
        return np.real(np.diagonal(self._tensor.reshape(dim, dim))).copy()

    def trace(self) -> complex:
        dim = 1 << self.num_qubits
        return complex(np.trace(self._tensor.reshape(dim, dim)))

    def purity(self) -> float:
        dim = 1 << self.num_qubits
        matrix = self._tensor.reshape(dim, dim)
        return float(np.real(np.trace(matrix @ matrix)))

    # ------------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """rho <- U rho U^dagger on the given qubits (first = MSB)."""
        qubits = list(qubits)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
            )
        operator = matrix.reshape((2,) * (2 * k))
        # Ket side.
        contracted = np.tensordot(
            operator, self._tensor, axes=(range(k, 2 * k), qubits)
        )
        self._tensor = np.moveaxis(contracted, range(k), qubits)
        # Bra side (conjugate).
        bra_axes = [self.num_qubits + q for q in qubits]
        contracted = np.tensordot(
            operator.conj(), self._tensor, axes=(range(k, 2 * k), bra_axes)
        )
        self._tensor = np.moveaxis(contracted, range(k), bra_axes)

    def apply_gate(self, gate: Gate) -> None:
        self.apply_unitary(gate.matrix(), gate.qubits)

    def apply_depolarizing(self, qubits: Sequence[int], probability: float) -> None:
        """Uniform non-identity Pauli error with the given probability."""
        if probability <= 0.0:
            return
        qubits = list(qubits)
        paulis = list(
            itertools.product(("i",) + _PAULIS_1Q, repeat=len(qubits))
        )[1:]  # drop the all-identity combination
        original = self._tensor.copy()
        self._tensor = (1.0 - probability) * self._tensor
        weight = probability / len(paulis)
        for combination in paulis:
            scratch = DensityMatrix(self.num_qubits)
            scratch._tensor = original.copy()
            for name, qubit in zip(combination, qubits):
                if name != "i":
                    scratch.apply_unitary(Gate(name, (qubit,)).matrix(), [qubit])
            self._tensor = self._tensor + weight * scratch._tensor


class DensityMatrixSimulator:
    """Exact noisy evaluation: the ground truth the trajectory
    simulator converges to."""

    def __init__(self, noise: Optional[NoiseModel] = None):
        self.noise = noise or NoiseModel()

    def run(
        self,
        circuit: QuantumCircuit,
        initial_labels: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Exact noisy output distribution of ``circuit``."""
        state = self.evolve(circuit, initial_labels)
        return apply_readout_error(state.probabilities(), self.noise.readout)

    def evolve(
        self,
        circuit: QuantumCircuit,
        initial_labels: Optional[Sequence[str]] = None,
    ) -> DensityMatrix:
        """The pre-measurement density matrix after the noisy circuit."""
        if initial_labels is None:
            state = DensityMatrix(circuit.num_qubits)
        else:
            if len(initial_labels) != circuit.num_qubits:
                raise ValueError(
                    f"{len(initial_labels)} labels for "
                    f"{circuit.num_qubits} qubits"
                )
            state = DensityMatrix.from_labels(initial_labels)
        for gate in circuit:
            state.apply_gate(gate)
            rate = (
                self.noise.error_2q if gate.is_multiqubit else self.noise.error_1q
            )
            state.apply_depolarizing(gate.qubits, rate)
        return state
