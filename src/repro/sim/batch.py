"""Batched statevector simulation with gate fusion.

The classical workload of the paper is dominated by re-simulating every
physical variant of each subcircuit (Fig. 3: ``4^rho`` initializations x
``3^O`` measurement bases).  Variants share the entire circuit body, so
two standard techniques collapse the sweep to a handful of BLAS calls:

* :class:`BatchedStatevector` carries a **leading batch axis** ``B`` —
  one gate application sweeps all ``B`` members by reshaping the state
  to ``(B * 2^(n-k), 2^k)`` and performing a single matmul, instead of
  ``B`` separate ``tensordot``/``moveaxis`` round trips through Python.
* :func:`fuse_gates` is an Aer-style **gate-fusion pass**: adjacent
  single-qubit gates fold into their 2x2 product and contiguous gate
  runs merge into unitaries on at most ``fusion_width`` qubits, so the
  per-gate Python dispatch cost is paid once per *fused block*.

Both are exact: results bit-match the per-gate :class:`Statevector`
path to floating-point accumulation order (<= 1e-10 in practice).

The noisy counterpart — batched trajectory and density-matrix evolution
of noise-sited body plans — lives in :mod:`repro.sim.noisy_batch` and
builds directly on :class:`BatchedStatevector` and :func:`fuse_gates`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..obs import trace
from .statevector import Statevector

__all__ = [
    "FusedOp",
    "MAX_FUSION_WIDTH",
    "fuse_gates",
    "fusion_stats",
    "BatchedStatevector",
    "simulate_batch",
]

#: Hard cap on fused-block width: a block's unitary is a dense
#: ``2^k x 2^k`` matrix, so widths past ~10 cost more to build and apply
#: than they save (and unbounded widths would let one shared qubit grow
#: a block to the whole circuit — an exponential allocation).
MAX_FUSION_WIDTH = 10


@dataclass(frozen=True)
class FusedOp:
    """One fused unitary: a ``2^k x 2^k`` matrix on ``k`` sorted qubits.

    ``qubits`` are ascending; the first qubit is the most significant bit
    of the matrix's local index (the package-wide convention).
    """

    matrix: np.ndarray
    qubits: Tuple[int, ...]

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)


def _expand_to_block(
    matrix: np.ndarray, positions: Sequence[int], block_width: int
) -> np.ndarray:
    """Embed a ``k``-qubit gate matrix into a ``2^m x 2^m`` block unitary.

    ``positions`` are the gate's qubit positions inside the block, in the
    gate's own (MSB-first) qubit order.
    """
    k = len(positions)
    dim = 1 << block_width
    operator = matrix.reshape((2,) * (2 * k))
    identity = np.eye(dim, dtype=complex).reshape((2,) * block_width + (dim,))
    contracted = np.tensordot(
        operator, identity, axes=(range(k, 2 * k), list(positions))
    )
    embedded = np.moveaxis(contracted, range(k), positions)
    return embedded.reshape(dim, dim)


class _Block:
    """A mutable fusion block: a gate run on a bounded qubit set."""

    __slots__ = ("qubits", "gates")

    def __init__(self, gate: Gate):
        self.qubits = set(gate.qubits)
        self.gates = [gate]

    def absorb(self, gate: Gate) -> None:
        self.qubits.update(gate.qubits)
        self.gates.append(gate)

    def to_op(self) -> FusedOp:
        ordered = tuple(sorted(self.qubits))
        position_of = {qubit: index for index, qubit in enumerate(ordered)}
        width = len(ordered)
        unitary = np.eye(1 << width, dtype=complex)
        for gate in self.gates:
            positions = [position_of[q] for q in gate.qubits]
            unitary = _expand_to_block(gate.matrix(), positions, width) @ unitary
        return FusedOp(matrix=unitary, qubits=ordered)


#: Fused-op memo: circuit bodies are fixed physics and re-fused on every
#: variant batch, executor chunk and DD recursion — cache by gate tuple.
_FUSION_CACHE: "OrderedDict[Tuple, List[FusedOp]]" = OrderedDict()
_FUSION_CACHE_LIMIT = 128

#: Structural partition memo: *which gates fold into which block* depends
#: only on the gates' qubit tuples and the fusion width — never on the
#: rotation angles.  A parameter rebind therefore reuses the partition
#: verbatim and only rebuilds the unitaries of blocks whose gates moved.
_PARTITION_CACHE: "OrderedDict[Tuple, Tuple[Tuple[int, ...], ...]]" = (
    OrderedDict()
)
_PARTITION_CACHE_LIMIT = 128

#: Per-block unitary memo keyed on the block's exact gate tuple.  Blocks
#: untouched by a rebind hit here; only blocks containing a changed gate
#: pay the ``2^k x 2^k`` rebuild.
_BLOCK_CACHE: "OrderedDict[Tuple[Gate, ...], FusedOp]" = OrderedDict()
_BLOCK_CACHE_LIMIT = 2048

#: Per-process fusion counters (see :func:`fusion_stats`).
_STATS = {
    "calls": 0,
    "full_hits": 0,
    "partitions_built": 0,
    "blocks_total": 0,
    "blocks_built": 0,
}


def fusion_stats() -> dict:
    """Snapshot of the per-process fusion counters.

    * ``calls`` / ``full_hits`` — :func:`fuse_gates` invocations and how
      many were answered by the exact ``(gates, width)`` memo;
    * ``partitions_built`` — structural block partitions computed (a
      rebind never increments this);
    * ``blocks_total`` / ``blocks_built`` — blocks assembled on the slow
      path vs. block unitaries actually (re)constructed.  The gap is the
      per-block reuse a rebind gets for free.

    Counters are process-local: pooled/process execution modes only
    reflect the parent's share.  Diff two snapshots to measure one
    evaluation.  ``WorkerPool.cache_stats()`` pulls the workers' copies
    back for the metrics registry's pid-labelled gauges.

    Besides the counters, the snapshot reports the live size of each
    memo layer (``fusion_cache_size`` / ``partition_cache_size`` /
    ``block_cache_size``).
    """
    stats = dict(_STATS)
    stats["fusion_cache_size"] = len(_FUSION_CACHE)
    stats["partition_cache_size"] = len(_PARTITION_CACHE)
    stats["block_cache_size"] = len(_BLOCK_CACHE)
    return stats


def _partition_gates(
    qubit_tuples: Sequence[Tuple[int, ...]], fusion_width: int
) -> Tuple[Tuple[int, ...], ...]:
    """Group gate indices into fusion blocks from qubit supports alone."""
    blocks: List[Tuple[set, List[int]]] = []
    for position, qubits in enumerate(qubit_tuples):
        support = set(qubits)
        placed = False
        # Walk back to the last block sharing a qubit with this gate; the
        # gate commutes with every block after it (disjoint supports), so
        # merging there — or appending at the end — preserves semantics.
        for index in range(len(blocks) - 1, -1, -1):
            block_qubits, members = blocks[index]
            if block_qubits & support:
                if len(block_qubits | support) <= fusion_width:
                    block_qubits.update(support)
                    members.append(position)
                    placed = True
                break
        if not placed:
            tail = blocks[-1] if blocks else None
            if (
                tail is not None
                and not (tail[0] & support)
                and len(tail[0] | support) <= fusion_width
            ):
                tail[0].update(support)
                tail[1].append(position)
            else:
                blocks.append((support, [position]))
    return tuple(tuple(members) for _, members in blocks)


def fuse_gates(
    circuit: Union[QuantumCircuit, Sequence[Gate]],
    fusion_width: int = 2,
) -> List[FusedOp]:
    """Fuse a gate sequence into unitaries on at most ``fusion_width`` qubits.

    Every gate is merged into the most recent block it *overlaps* (shares
    a qubit with) when the union stays within ``fusion_width``; a gate
    disjoint from all later blocks commutes past them, so the merge is
    exact.  A gate wider than ``fusion_width`` always forms its own block
    (``fusion_width=1`` therefore still folds single-qubit runs while
    leaving two-qubit gates unfused).

    Memoization is layered for the variational warm path.  Exact repeats
    hit the ``(gates, fusion_width)`` memo.  A parameter rebind misses it
    but reuses (a) the structural partition, keyed only on the gates'
    qubit tuples, and (b) every per-block unitary whose gates are
    bit-identical — so a rebind re-fuses *only the blocks whose
    parameters moved*.  :func:`fusion_stats` exposes the counters.
    """
    if not 1 <= fusion_width <= MAX_FUSION_WIDTH:
        raise ValueError(
            f"fusion_width must be in [1, {MAX_FUSION_WIDTH}], "
            f"got {fusion_width}"
        )
    gates = circuit.gates if isinstance(circuit, QuantumCircuit) else circuit
    _STATS["calls"] += 1
    key = (tuple(gates), fusion_width)
    cached = _FUSION_CACHE.get(key)
    if cached is not None:
        _STATS["full_hits"] += 1
        try:
            _FUSION_CACHE.move_to_end(key)
        except KeyError:  # pragma: no cover - concurrent eviction
            pass
        return cached
    gates = key[0]
    with trace.span("sim.fuse_body", {"gates": len(gates)}):
        structure = (tuple(gate.qubits for gate in gates), fusion_width)
        partition = _PARTITION_CACHE.get(structure)
        if partition is None:
            partition = _partition_gates(structure[0], fusion_width)
            _PARTITION_CACHE[structure] = partition
            _STATS["partitions_built"] += 1
            while len(_PARTITION_CACHE) > _PARTITION_CACHE_LIMIT:
                _PARTITION_CACHE.popitem(last=False)
        else:
            _PARTITION_CACHE.move_to_end(structure)
        ops: List[FusedOp] = []
        for members in partition:
            block_gates = tuple(gates[index] for index in members)
            _STATS["blocks_total"] += 1
            op = _BLOCK_CACHE.get(block_gates)
            if op is None:
                block = _Block(block_gates[0])
                for gate in block_gates[1:]:
                    block.absorb(gate)
                op = block.to_op()
                _BLOCK_CACHE[block_gates] = op
                _STATS["blocks_built"] += 1
                while len(_BLOCK_CACHE) > _BLOCK_CACHE_LIMIT:
                    _BLOCK_CACHE.popitem(last=False)
            else:
                _BLOCK_CACHE.move_to_end(block_gates)
            ops.append(op)
        _FUSION_CACHE[key] = ops
        while len(_FUSION_CACHE) > _FUSION_CACHE_LIMIT:
            _FUSION_CACHE.popitem(last=False)
    return ops


class BatchedStatevector:
    """``B`` pure ``n``-qubit states advanced together through one circuit.

    The state is stored as a ``(B,) + (2,)*n`` complex tensor; axis
    ``i + 1`` holds qubit ``i`` (same qubit-0-is-MSB convention as
    :class:`~repro.sim.statevector.Statevector`).  Gate application is a
    single ``(B * 2^(n-k), 2^k) @ (2^k, 2^k)`` matmul for the whole
    batch.  Memory footprint is ``B * 2^n * 16`` bytes.
    """

    def __init__(
        self,
        num_qubits: int,
        batch_size: int,
        data: Optional[np.ndarray] = None,
    ):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.num_qubits = int(num_qubits)
        self.batch_size = int(batch_size)
        shape = (self.batch_size,) + (2,) * self.num_qubits
        if data is None:
            tensor = np.zeros(shape, dtype=complex)
            tensor[(slice(None),) + (0,) * self.num_qubits] = 1.0
            self._tensor = tensor
        else:
            array = np.asarray(data, dtype=complex)
            if array.size != self.batch_size << self.num_qubits:
                raise ValueError(
                    f"data of size {array.size} does not match batch "
                    f"{self.batch_size} x {self.num_qubits} qubits"
                )
            self._tensor = array.reshape(shape).copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_product_batch(
        cls, states: Sequence[Sequence[np.ndarray]]
    ) -> "BatchedStatevector":
        """Build a batch of product states.

        ``states[b][q]`` is the 2-vector of qubit ``q`` in batch member
        ``b`` (every member must cover the same qubit count).  The build
        is vectorized over the batch: one outer product per qubit.
        """
        if not states:
            raise ValueError("need at least one batch member")
        num_qubits = len(states[0])
        if num_qubits == 0:
            raise ValueError("members must cover at least one qubit")
        per_qubit = []
        for qubit in range(num_qubits):
            column = np.array(
                [np.asarray(member[qubit], dtype=complex).reshape(2)
                 for member in states]
            )
            per_qubit.append(column)
        vector = np.ones((len(states), 1), dtype=complex)
        for column in per_qubit:
            vector = (vector[:, :, None] * column[:, None, :]).reshape(
                len(states), -1
            )
        return cls(num_qubits, len(states), vector)

    def copy(self) -> "BatchedStatevector":
        return BatchedStatevector(
            self.num_qubits, self.batch_size, self._tensor
        )

    # ------------------------------------------------------------------
    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedStatevector":
        """Apply a ``2^k x 2^k`` unitary to all batch members in place.

        One transpose + one matmul sweeps the whole batch: the target
        axes move to the end, the rest (batch included) flatten into the
        row dimension of a single BLAS call.
        """
        qubits = list(qubits)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
            )
        target_axes = [q + 1 for q in qubits]
        rest = [
            axis
            for axis in range(self._tensor.ndim)
            if axis not in target_axes
        ]
        perm = rest + target_axes
        moved = np.transpose(self._tensor, perm)
        moved_shape = moved.shape
        flat = np.ascontiguousarray(moved).reshape(-1, 1 << k)
        # Row b of ``matrix`` produces output index b with qubits[0] as
        # MSB, matching Statevector.apply_matrix's tensordot convention.
        out = flat @ matrix.T
        self._tensor = np.transpose(
            out.reshape(moved_shape), np.argsort(perm)
        )
        return self

    def applied(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedStatevector":
        """A new batch with ``matrix`` applied; ``self`` is untouched."""
        clone = BatchedStatevector.__new__(BatchedStatevector)
        clone.num_qubits = self.num_qubits
        clone.batch_size = self.batch_size
        clone._tensor = self._tensor
        return clone.apply_matrix(matrix, qubits)

    def apply_gate(self, gate: Gate) -> "BatchedStatevector":
        return self.apply_matrix(gate.matrix(), gate.qubits)

    def apply_fused(self, ops: Sequence[FusedOp]) -> "BatchedStatevector":
        # One span per body pass, not per op: the per-gate matmul loop is
        # the hot path the disabled tracer must not touch.
        with trace.span("sim.batch.apply_fused"):
            for op in ops:
                self.apply_matrix(op.matrix, op.qubits)
        return self

    def apply_circuit(
        self,
        circuit: QuantumCircuit,
        fusion_width: Optional[int] = None,
    ) -> "BatchedStatevector":
        """Apply ``circuit``, fused to ``fusion_width`` (None = unfused)."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits, batch has "
                f"{self.num_qubits}"
            )
        if fusion_width is None:
            for gate in circuit:
                self.apply_gate(gate)
            return self
        return self.apply_fused(fuse_gates(circuit, fusion_width))

    # ------------------------------------------------------------------
    def amplitudes(self) -> np.ndarray:
        """``(B, 2^n)`` complex amplitudes (a copy)."""
        return self._tensor.reshape(self.batch_size, -1).copy()

    def probabilities(self) -> np.ndarray:
        """``(B, 2^n)`` float probabilities."""
        flat = self._tensor.reshape(self.batch_size, -1)
        return (flat.real**2 + flat.imag**2).astype(float)

    def member(self, index: int) -> Statevector:
        """Batch member ``index`` as a standalone :class:`Statevector`."""
        return Statevector(self.num_qubits, self._tensor[index])

    def norms(self) -> np.ndarray:
        return np.linalg.norm(
            self._tensor.reshape(self.batch_size, -1), axis=1
        )


def simulate_batch(
    circuit: QuantumCircuit,
    initial_states: Sequence[Sequence[np.ndarray]],
    fusion_width: Optional[int] = 2,
) -> BatchedStatevector:
    """Run ``circuit`` over a batch of product initial states, fused."""
    state = BatchedStatevector.from_product_batch(initial_states)
    return state.apply_circuit(circuit, fusion_width=fusion_width)
