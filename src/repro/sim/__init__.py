"""Simulation backends: exact statevector, shot sampling, and noisy NISQ."""

from .statevector import (
    INITIAL_STATES,
    Statevector,
    initial_state,
    simulate_probabilities,
    simulate_statevector,
)
from .batch import (
    BatchedStatevector,
    FusedOp,
    fuse_gates,
    fusion_stats,
    simulate_batch,
)
from .sampler import (
    ShotSampler,
    counts_to_probabilities,
    probabilities_to_counts_dict,
    sample_counts,
    sample_distribution,
)
from .noise import (
    NoiseModel,
    NoisySimulator,
    apply_readout_error,
    clean_log_weight,
    spawn_rng,
)
from .density import BatchedDensityMatrix, DensityMatrix, DensityMatrixSimulator
from .noisy_batch import (
    NoisyBodyPlan,
    NoisySite,
    noisy_body_plan,
    run_density_body,
    run_trajectory_body,
    sample_injection_pattern,
)
from .feynman import FeynmanPathSimulator, gate_schmidt_terms

__all__ = [
    "INITIAL_STATES",
    "Statevector",
    "initial_state",
    "simulate_probabilities",
    "simulate_statevector",
    "BatchedStatevector",
    "FusedOp",
    "fuse_gates",
    "fusion_stats",
    "simulate_batch",
    "ShotSampler",
    "counts_to_probabilities",
    "probabilities_to_counts_dict",
    "sample_counts",
    "sample_distribution",
    "NoiseModel",
    "NoisySimulator",
    "apply_readout_error",
    "clean_log_weight",
    "spawn_rng",
    "BatchedDensityMatrix",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "NoisyBodyPlan",
    "NoisySite",
    "noisy_body_plan",
    "run_density_body",
    "run_trajectory_body",
    "sample_injection_pattern",
    "FeynmanPathSimulator",
    "gate_schmidt_terms",
]
