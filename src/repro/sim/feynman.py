"""Feynman-path (qubit-bipartition) classical simulation — the §6.4 baseline.

The classical-simulation alternatives the paper discusses ([10] Bravyi,
Smith & Smolin; [28] Markov et al.) partition the *qubits* into two
halves, decompose every 2-qubit gate that crosses the partition into a
sum of ``r <= 4`` products of single-qubit operators (the gate's operator
Schmidt decomposition), and sum over all ``prod r_i`` "Feynman paths",
simulating each half independently per path.

Differences from CutQC (paper §6.4):

* paths carry *complex amplitudes*, so the method cannot run on NISQ
  hardware at all — it is purely classical;
* it cuts 2-qubit **gates** across a qubit bipartition, not wire edges;
* the path count grows exponentially in the number of crossing gates,
  so it "does not scale well past subcircuits beyond the classical
  simulation limit".

Implemented here so the repo contains the baseline the paper positions
itself against; see ``benchmarks/bench_ablation_feynman.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..circuits import Gate, QuantumCircuit
from .statevector import Statevector

__all__ = ["gate_schmidt_terms", "FeynmanPathSimulator"]


@dataclass(frozen=True)
class _SchmidtTerm:
    coefficient: complex
    left: np.ndarray  # 2x2 operator on the first gate qubit
    right: np.ndarray  # 2x2 operator on the second gate qubit


def gate_schmidt_terms(gate: Gate) -> List[_SchmidtTerm]:
    """Operator Schmidt decomposition of a 2-qubit gate.

    Returns terms such that ``U = sum_k coeff_k * (left_k (x) right_k)``
    with the first gate qubit as the more significant index, matching the
    package convention.  CX/CZ/CP have Schmidt rank 2; SWAP has rank 4.
    """
    if not gate.is_multiqubit:
        raise ValueError("Schmidt decomposition applies to 2-qubit gates")
    unitary = gate.matrix()
    # U[(a_out b_out), (a_in b_in)] -> M[(a_out a_in), (b_out b_in)]
    tensor = unitary.reshape(2, 2, 2, 2)  # a_out, b_out, a_in, b_in
    rearranged = np.transpose(tensor, (0, 2, 1, 3)).reshape(4, 4)
    u, s, vh = np.linalg.svd(rearranged)
    terms: List[_SchmidtTerm] = []
    for k, singular in enumerate(s):
        if singular < 1e-12:
            continue
        left = u[:, k].reshape(2, 2)
        right = vh[k, :].reshape(2, 2)
        terms.append(_SchmidtTerm(complex(singular), left, right))
    return terms


class FeynmanPathSimulator:
    """Bipartition simulator: sum over gate-decomposition paths.

    Parameters
    ----------
    partition:
        Qubits in the "left" half; defaults to the first ``n // 2``.
    max_paths:
        Safety valve — raise instead of enumerating more paths.
    """

    def __init__(
        self,
        partition: Optional[Sequence[int]] = None,
        max_paths: int = 1 << 20,
    ):
        self.partition = None if partition is None else sorted(set(partition))
        self.max_paths = int(max_paths)

    # ------------------------------------------------------------------
    def crossing_gates(self, circuit: QuantumCircuit) -> List[int]:
        """Positions of 2-qubit gates crossing the partition."""
        left = self._left_set(circuit)
        crossings = []
        for position, gate in enumerate(circuit):
            if gate.is_multiqubit:
                sides = {qubit in left for qubit in gate.qubits}
                if len(sides) == 2:
                    crossings.append(position)
        return crossings

    def num_paths(self, circuit: QuantumCircuit) -> int:
        total = 1
        for position in self.crossing_gates(circuit):
            total *= len(gate_schmidt_terms(circuit[position]))
        return total

    # ------------------------------------------------------------------
    def amplitudes(self, circuit: QuantumCircuit) -> np.ndarray:
        """Full output amplitudes via the path sum."""
        left = self._left_set(circuit)
        left_qubits = sorted(left)
        right_qubits = [q for q in range(circuit.num_qubits) if q not in left]
        if not left_qubits or not right_qubits:
            raise ValueError("partition must split the qubits into two halves")
        left_index = {q: i for i, q in enumerate(left_qubits)}
        right_index = {q: i for i, q in enumerate(right_qubits)}

        crossings = self.crossing_gates(circuit)
        term_lists = [gate_schmidt_terms(circuit[p]) for p in crossings]
        total_paths = 1
        for terms in term_lists:
            total_paths *= len(terms)
        if total_paths > self.max_paths:
            raise ValueError(
                f"{total_paths} Feynman paths exceed max_paths="
                f"{self.max_paths} — the method's exponential wall (§6.4)"
            )

        amplitudes = np.zeros(
            (1 << len(left_qubits)) * (1 << len(right_qubits)), dtype=complex
        )
        for choice in itertools.product(*term_lists) if term_lists else [()]:
            coefficient = complex(1.0)
            left_state = Statevector(len(left_qubits))
            right_state = Statevector(len(right_qubits))
            crossing_cursor = 0
            for position, gate in enumerate(circuit):
                if position in crossings:
                    term = choice[crossing_cursor]
                    crossing_cursor += 1
                    coefficient *= term.coefficient
                    qa, qb = gate.qubits
                    if qa in left:
                        left_state.apply_matrix(term.left, [left_index[qa]])
                        right_state.apply_matrix(term.right, [right_index[qb]])
                    else:
                        right_state.apply_matrix(term.left, [right_index[qa]])
                        left_state.apply_matrix(term.right, [left_index[qb]])
                    continue
                if all(q in left for q in gate.qubits):
                    left_state.apply_matrix(
                        gate.matrix(), [left_index[q] for q in gate.qubits]
                    )
                else:
                    right_state.apply_matrix(
                        gate.matrix(), [right_index[q] for q in gate.qubits]
                    )
            amplitudes += coefficient * np.kron(
                left_state.amplitudes(), right_state.amplitudes()
            )

        # kron order is (left qubits, right qubits); permute to wire order.
        from ..utils import permute_qubits

        kron_wires = left_qubits + right_qubits
        # Inverse map instead of repeated list.index() — O(n), not O(n^2).
        position_of = {wire: pos for pos, wire in enumerate(kron_wires)}
        permutation = [position_of[w] for w in range(circuit.num_qubits)]
        return permute_qubits(amplitudes, permutation)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        amplitudes = self.amplitudes(circuit)
        return (amplitudes.real**2 + amplitudes.imag**2).astype(float)

    # ------------------------------------------------------------------
    def _left_set(self, circuit: QuantumCircuit) -> set:
        if self.partition is None:
            return set(range(circuit.num_qubits // 2))
        invalid = [q for q in self.partition if q < 0 or q >= circuit.num_qubits]
        if invalid:
            raise ValueError(f"partition qubits {invalid} out of range")
        return set(self.partition)
