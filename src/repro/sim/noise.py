"""NISQ noise model and Monte-Carlo trajectory simulator.

Substitutes for IBM hardware (see DESIGN.md): depolarizing noise after
every gate plus readout (measurement) bit-flip error.  Noisy evaluation
averages stochastic Pauli-injection trajectories — an unbiased sampler of
the depolarizing channel — then applies the readout confusion and finally
shot noise.  Larger/deeper circuits accumulate more injected errors, which
reproduces the fidelity trends of Figures 1 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..circuits import Gate, QuantumCircuit
from .sampler import sample_distribution
from .statevector import Statevector

__all__ = [
    "NoiseModel",
    "NoisySimulator",
    "apply_readout_error",
    "clean_log_weight",
    "spawn_rng",
]

_PAULI_NAMES_1Q = ("x", "y", "z")
#: Non-identity two-qubit Pauli pairs for the 2q depolarizing channel.
_PAULI_PAIRS_2Q = tuple(
    (a, b)
    for a in ("i", "x", "y", "z")
    for b in ("i", "x", "y", "z")
    if not (a == "i" and b == "i")
)


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing + readout error rates.

    Attributes
    ----------
    error_1q:
        Probability that a single-qubit gate is followed by a uniformly
        random non-identity Pauli on its qubit.
    error_2q:
        Probability that a two-qubit gate is followed by a uniformly random
        non-identity two-qubit Pauli on its qubits.
    readout:
        Per-qubit probability that a measured bit is flipped.
    """

    error_1q: float = 0.0
    error_2q: float = 0.0
    readout: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_1q", "error_2q", "readout"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_noiseless(self) -> bool:
        return self.error_1q == 0.0 and self.error_2q == 0.0 and self.readout == 0.0

    def scaled(self, factor: float) -> "NoiseModel":
        """A model with all rates multiplied by ``factor`` (clipped to 1)."""
        return NoiseModel(
            error_1q=min(1.0, self.error_1q * factor),
            error_2q=min(1.0, self.error_2q * factor),
            readout=min(1.0, self.readout * factor),
        )


def clean_log_weight(gates: Iterable[Gate], noise: NoiseModel) -> float:
    """``sum(log1p(-rate))`` over a gate sequence — the log-probability
    that a Pauli-injection trajectory through it draws no error.

    Returns ``-inf`` when any applicable rate saturates at 1.
    """
    log_p = 0.0
    for gate in gates:
        rate = noise.error_2q if gate.is_multiqubit else noise.error_1q
        if rate >= 1.0:
            return float("-inf")
        log_p += np.log1p(-rate)
    return float(log_p)


def spawn_rng(seed: Optional[int], *key: int) -> np.random.Generator:
    """A child generator at spawn-key ``key`` under root ``seed``.

    Uses the :class:`numpy.random.SeedSequence` spawn-tree (the mechanism
    behind ``Generator.spawn``) with an explicit integer key instead of a
    sequential child counter, so the stream assigned to a work item —
    e.g. (trajectory, variant index) — is the same no matter which worker
    runs it, how the init space is chunked, or in what order tasks
    complete.  ``seed=None`` maps to the fixed root 0: noisy batched
    evaluation is deterministic by default.
    """
    root = np.random.SeedSequence(0 if seed is None else int(seed))
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(int(k) for k in key)
    )
    return np.random.default_rng(child)


def apply_readout_error(probabilities: np.ndarray, flip: float) -> np.ndarray:
    """Apply a symmetric per-qubit readout confusion to a distribution."""
    if flip == 0.0:
        return probabilities.astype(float)
    num_qubits = int(np.log2(probabilities.size))
    if 1 << num_qubits != probabilities.size:
        raise ValueError("probability vector length is not a power of two")
    confusion = np.array([[1.0 - flip, flip], [flip, 1.0 - flip]])
    tensor = probabilities.reshape((2,) * num_qubits).astype(float)
    for axis in range(num_qubits):
        tensor = np.tensordot(confusion, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
    return tensor.reshape(-1)


class NoisySimulator:
    """Shot-based noisy circuit evaluation via Pauli-injection trajectories.

    Parameters
    ----------
    noise:
        The error rates to inject.
    trajectories:
        Number of Monte-Carlo trajectories averaged to estimate the noisy
        distribution.  The all-identity (error-free) trajectory is always
        evaluated once and mixed in analytically with its exact weight,
        which keeps the estimator low-variance at realistic error rates.
    shots:
        Shots drawn from the estimated noisy distribution (``None`` or 0
        returns the estimated distribution itself, without shot noise).
    """

    def __init__(
        self,
        noise: NoiseModel,
        trajectories: int = 24,
        shots: Optional[int] = 8192,
        seed: Optional[int] = None,
    ):
        if trajectories <= 0:
            raise ValueError("trajectories must be positive")
        self.noise = noise
        self.trajectories = int(trajectories)
        self.shots = shots
        self._rng = np.random.default_rng(seed)
        #: Clean-trajectory weight per circuit identity: the O(gates)
        #: log1p sweep is fixed physics per body, but every one of a
        #: subcircuit's 3^O * 4^rho variants used to replay it.
        self._clean_cache: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, initial_labels=None) -> np.ndarray:
        """Empirical (or exact if ``shots`` is falsy) noisy distribution."""
        distribution = self.noisy_distribution(circuit, initial_labels)
        if not self.shots:
            return distribution
        return sample_distribution(distribution, self.shots, self._rng)

    def noisy_distribution(
        self, circuit: QuantumCircuit, initial_labels=None
    ) -> np.ndarray:
        """Trajectory-averaged distribution with readout error applied."""
        clean = self._trajectory(circuit, initial_labels, inject=False)
        if self.noise.error_1q == 0.0 and self.noise.error_2q == 0.0:
            averaged = clean
        else:
            clean_weight = self._clean_probability(circuit)
            noisy = np.zeros_like(clean)
            noisy_count = 0
            for _ in range(self.trajectories):
                sample = self._trajectory(circuit, initial_labels, inject=True)
                if sample is None:
                    # Trajectory drew no error: counts toward the clean part.
                    continue
                noisy += sample
                noisy_count += 1
            if noisy_count:
                averaged = clean_weight * clean + (1.0 - clean_weight) * (
                    noisy / noisy_count
                )
            else:
                averaged = clean
        return apply_readout_error(averaged, self.noise.readout)

    # ------------------------------------------------------------------
    def _clean_probability(self, circuit: QuantumCircuit) -> float:
        """Probability that a trajectory injects no error at all.

        Memoized per circuit identity (width + exact gate tuple): all
        variants sharing a body reuse one :func:`clean_log_weight` sweep.
        """
        key = (circuit.num_qubits, circuit.gates)
        cached = self._clean_cache.get(key)
        if cached is None:
            if len(self._clean_cache) >= 256:
                self._clean_cache.clear()
            cached = float(np.exp(clean_log_weight(circuit, self.noise)))
            self._clean_cache[key] = cached
        return cached

    def _trajectory(
        self, circuit: QuantumCircuit, initial_labels, inject: bool
    ) -> Optional[np.ndarray]:
        """One statevector run; with ``inject``, conditions on >=1 error.

        Returns ``None`` for an injecting run that happened to draw no
        error (the caller folds those into the clean component).
        """
        if initial_labels is None:
            state = Statevector(circuit.num_qubits)
        else:
            state = Statevector.from_labels(initial_labels)
        injected = False
        for gate in circuit:
            state.apply_gate(gate)
            if not inject:
                continue
            if gate.is_multiqubit:
                if self._rng.random() < self.noise.error_2q:
                    pair = _PAULI_PAIRS_2Q[self._rng.integers(len(_PAULI_PAIRS_2Q))]
                    for name, qubit in zip(pair, gate.qubits):
                        if name != "i":
                            state.apply_gate(Gate(name, (qubit,)))
                    injected = True
            else:
                if self._rng.random() < self.noise.error_1q:
                    name = _PAULI_NAMES_1Q[self._rng.integers(3)]
                    state.apply_gate(Gate(name, gate.qubits))
                    injected = True
        if inject and not injected:
            return None
        return state.probabilities()
