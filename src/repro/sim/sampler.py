"""Shot-based sampling (paper Fig. 2b execution model).

NISQ executions return counts over classical bitstrings rather than
amplitudes.  This module converts exact distributions into finite-shot
empirical distributions and back, so every evaluation backend in the
package speaks the same "probability vector" language.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits import QuantumCircuit
from ..utils import index_to_bitstring
from .statevector import simulate_probabilities

__all__ = [
    "sample_counts",
    "counts_to_probabilities",
    "probabilities_to_counts_dict",
    "sample_distribution",
    "ShotSampler",
]


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw ``shots`` samples; returns integer counts per basis state."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    rng = rng or np.random.default_rng()
    clipped = np.clip(probabilities, 0.0, None)
    total = clipped.sum()
    if total <= 0:
        raise ValueError("cannot sample from an all-zero distribution")
    return rng.multinomial(shots, clipped / total).astype(np.int64)


def counts_to_probabilities(counts: np.ndarray) -> np.ndarray:
    """Normalize integer counts into an empirical distribution."""
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts are empty")
    return counts / total


def probabilities_to_counts_dict(
    probabilities: np.ndarray, shots: int, num_qubits: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, int]:
    """Bitstring->count mapping, like hardware result payloads."""
    counts = sample_counts(probabilities, shots, rng)
    return {
        index_to_bitstring(index, num_qubits): int(count)
        for index, count in enumerate(counts)
        if count > 0
    }


def sample_distribution(
    probabilities: np.ndarray,
    shots: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Empirical distribution after ``shots`` samples of ``probabilities``."""
    return counts_to_probabilities(sample_counts(probabilities, shots, rng))


class ShotSampler:
    """Shot-based circuit evaluation backend (noiseless sampling).

    Evaluates a circuit exactly, then subsamples with a finite number of
    shots — the idealized version of running on hardware.  Used by tests
    and by the CutQC pipeline when emulating shot noise without device
    noise.
    """

    def __init__(self, shots: int = 8192, seed: Optional[int] = None):
        if shots <= 0:
            raise ValueError("shots must be positive")
        self.shots = int(shots)
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: QuantumCircuit, initial_labels=None) -> np.ndarray:
        exact = simulate_probabilities(circuit, initial_labels)
        return sample_distribution(exact, self.shots, self._rng)
