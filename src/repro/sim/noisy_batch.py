"""Batched noisy simulation: fused body plans + shared-pass trajectories.

The noisy counterpart of :mod:`repro.sim.batch`.  A subcircuit's
``3^O * 4^rho`` physical variants share one measurement-free body; the
serial noisy simulators re-run that body once per variant *per
trajectory*.  This module provides the primitives that collapse the
sweep:

* :func:`noisy_body_plan` compiles a gate sequence against a
  :class:`~repro.sim.noise.NoiseModel` into an executable plan — maximal
  noise-free gate runs are fused into unitaries (Aer-style, via
  :func:`~repro.sim.batch.fuse_gates`) while every gate carrying a
  depolarizing site stays an individual step, preserving the per-gate
  noise placement exactly.  Plans are memoized per process, so warm
  workers never re-fuse a body they have already seen.
* :func:`sample_injection_pattern` draws one Pauli-injection pattern for
  a plan's noise sites.  A *fixed* pattern makes the noisy body a fixed
  linear map, so one :class:`~repro.sim.batch.BatchedStatevector` pass
  serves every init-batch member of that trajectory
  (:func:`run_trajectory_body`).
* :func:`run_density_body` drives a
  :class:`~repro.sim.density.BatchedDensityMatrix` through the plan with
  the exact depolarizing channel applied batch-wide after each noisy
  gate.
* :func:`apply_readout_error_rows` / :func:`marginalize_rows` vectorize
  the classical post-steps over a stacked ``(V, 2^n)`` matrix of variant
  distributions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..circuits.gates import gate_matrix
from ..obs import trace
from .batch import BatchedStatevector, FusedOp, fuse_gates
from .density import BatchedDensityMatrix
from .noise import NoiseModel, clean_log_weight

__all__ = [
    "NoisySite",
    "NoisyBodyPlan",
    "noisy_body_plan",
    "sample_injection_pattern",
    "run_trajectory_body",
    "run_density_body",
    "apply_readout_error_rows",
    "marginalize_rows",
    "PAULI_NAMES_1Q",
    "PAULI_PAIRS_2Q",
]

PAULI_NAMES_1Q: Tuple[str, ...] = ("x", "y", "z")
#: Non-identity two-qubit Pauli pairs, in the serial simulator's order.
PAULI_PAIRS_2Q: Tuple[Tuple[str, str], ...] = tuple(
    (a, b)
    for a in ("i", "x", "y", "z")
    for b in ("i", "x", "y", "z")
    if not (a == "i" and b == "i")
)

_PAULI_MATRICES = {name: gate_matrix(name) for name in PAULI_NAMES_1Q}


@dataclass(frozen=True)
class NoisySite:
    """One body gate followed by a depolarizing site of strength ``rate``."""

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    rate: float

    @property
    def is_2q(self) -> bool:
        return len(self.qubits) > 1


@dataclass(frozen=True)
class NoisyBodyPlan:
    """A compiled noisy body: fused noise-free runs + individual sites.

    ``steps`` interleaves :class:`~repro.sim.batch.FusedOp` entries
    (maximal runs of zero-rate gates, fused) with :class:`NoisySite`
    entries (one per gate carrying a depolarizing site, in circuit
    order).  ``sites`` lists the noisy steps again for pattern sampling;
    ``log_clean`` is the body's no-injection log-weight.
    """

    num_qubits: int
    steps: Tuple[Union[FusedOp, NoisySite], ...]
    sites: Tuple[NoisySite, ...]
    log_clean: float


#: Per-process plan memo — the noisy analogue of ``batch._FUSION_CACHE``:
#: chunks of the same subcircuit landing on the same warm worker reuse
#: the compiled (fused) body instead of re-planning per payload.
_PLAN_CACHE: "OrderedDict[Tuple, NoisyBodyPlan]" = OrderedDict()
_PLAN_CACHE_LIMIT = 128


def noisy_body_plan(
    circuit: Union[QuantumCircuit, Sequence[Gate]],
    noise: NoiseModel,
    num_qubits: int,
    fusion_width: int = 2,
) -> NoisyBodyPlan:
    """Compile ``circuit`` into a :class:`NoisyBodyPlan` (memoized).

    Depolarizing noise applies after *every* gate, so gates with a
    non-zero rate cannot fuse across their noise site without changing
    the channel; only maximal runs of zero-rate gates fold into fused
    unitaries.  With a noiseless model the whole body becomes one fused
    run (the exact-path plan).
    """
    gates = circuit.gates if isinstance(circuit, QuantumCircuit) else tuple(circuit)
    key = (tuple(gates), noise.error_1q, noise.error_2q, num_qubits, fusion_width)
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        try:
            _PLAN_CACHE.move_to_end(key)
        except KeyError:  # pragma: no cover - concurrent eviction
            pass
        return cached
    steps: List[Union[FusedOp, NoisySite]] = []
    sites: List[NoisySite] = []
    run: List[Gate] = []

    def flush() -> None:
        if run:
            steps.extend(fuse_gates(tuple(run), fusion_width))
            run.clear()

    for gate in gates:
        rate = noise.error_2q if gate.is_multiqubit else noise.error_1q
        if rate <= 0.0:
            run.append(gate)
            continue
        flush()
        site = NoisySite(
            matrix=gate.matrix(), qubits=tuple(gate.qubits), rate=float(rate)
        )
        steps.append(site)
        sites.append(site)
    flush()
    plan = NoisyBodyPlan(
        num_qubits=int(num_qubits),
        steps=tuple(steps),
        sites=tuple(sites),
        log_clean=clean_log_weight(gates, noise),
    )
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.popitem(last=False)
    return plan


# ----------------------------------------------------------------------
# Trajectory path: one shared injection pattern per batched pass
# ----------------------------------------------------------------------

def sample_injection_pattern(
    plan: NoisyBodyPlan, rng: np.random.Generator
) -> Tuple[Tuple[Optional[Tuple[str, ...]], ...], bool]:
    """Draw one Pauli-injection pattern over the plan's noise sites.

    Per site: with probability ``rate``, a uniformly random non-identity
    Pauli (pair) — the same conditional draws as the serial
    :class:`~repro.sim.noise.NoisySimulator`.  Returns
    ``(pattern, injected)`` where ``pattern[i]`` is the Pauli name tuple
    for site ``i`` (or ``None``) and ``injected`` says whether any site
    fired.
    """
    pattern: List[Optional[Tuple[str, ...]]] = []
    injected = False
    for site in plan.sites:
        if rng.random() < site.rate:
            if site.is_2q:
                choice = PAULI_PAIRS_2Q[rng.integers(len(PAULI_PAIRS_2Q))]
            else:
                choice = (PAULI_NAMES_1Q[rng.integers(3)],)
            pattern.append(choice)
            injected = True
        else:
            pattern.append(None)
    return tuple(pattern), injected


def apply_pauli_names(
    state: BatchedStatevector,
    names: Iterable[str],
    qubits: Sequence[int],
) -> None:
    """Apply per-qubit Pauli names (``"i"`` entries skipped) batch-wide."""
    for name, qubit in zip(names, qubits):
        if name != "i":
            state.apply_matrix(_PAULI_MATRICES[name], [qubit])


def run_trajectory_body(
    plan: NoisyBodyPlan,
    state: BatchedStatevector,
    pattern: Sequence[Optional[Tuple[str, ...]]],
) -> BatchedStatevector:
    """Advance a whole init batch through the body under one pattern.

    The pattern fixes every injection, so the noisy body is a single
    linear map applied once to all batch members — this is what turns
    ``variants x trajectories`` body re-simulations into
    ``trajectories`` batched passes.
    """
    # One span per batched pass (the per-step loop is the hot path).
    with trace.span("sim.noisy.trajectory_body"):
        site_index = 0
        for step in plan.steps:
            if isinstance(step, NoisySite):
                state.apply_matrix(step.matrix, step.qubits)
                choice = pattern[site_index]
                site_index += 1
                if choice is not None:
                    apply_pauli_names(state, choice, step.qubits)
            else:
                state.apply_matrix(step.matrix, step.qubits)
    return state


# ----------------------------------------------------------------------
# Density path: the exact channel, batch-wide
# ----------------------------------------------------------------------

def run_density_body(
    plan: NoisyBodyPlan, state: BatchedDensityMatrix
) -> BatchedDensityMatrix:
    """Advance a batch of density matrices through the noisy body.

    Fused zero-rate runs apply as plain unitaries; every noisy gate is a
    unitary followed by its depolarizing superoperator, batch-wide —
    bit-for-bit the serial :class:`~repro.sim.density.DensityMatrixSimulator`
    channel, paid once per batch instead of once per variant.
    """
    with trace.span("sim.noisy.density_body"):
        for step in plan.steps:
            state.apply_matrix(step.matrix, step.qubits)
            if isinstance(step, NoisySite):
                state.apply_depolarizing(step.qubits, step.rate)
    return state


# ----------------------------------------------------------------------
# Vectorized classical post-steps
# ----------------------------------------------------------------------

def apply_readout_error_rows(rows: np.ndarray, flip: float) -> np.ndarray:
    """Symmetric per-qubit readout confusion over ``(V, 2^n)`` rows."""
    rows = np.asarray(rows, dtype=float)
    if flip == 0.0:
        return rows
    num_qubits = int(np.log2(rows.shape[1]))
    if 1 << num_qubits != rows.shape[1]:
        raise ValueError("row length is not a power of two")
    confusion = np.array([[1.0 - flip, flip], [flip, 1.0 - flip]])
    tensor = rows.reshape((rows.shape[0],) + (2,) * num_qubits)
    for axis in range(1, num_qubits + 1):
        moved = np.moveaxis(tensor, axis, -1)
        shape = moved.shape
        moved = np.ascontiguousarray(moved).reshape(-1, 2) @ confusion.T
        tensor = np.moveaxis(moved.reshape(shape), -1, axis)
    return tensor.reshape(rows.shape[0], -1)


def marginalize_rows(
    rows: np.ndarray, keep: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Marginalize ``(V, 2^n)`` rows down to ``keep`` (in given order)."""
    keep = list(keep)
    tensor = np.asarray(rows).reshape((-1,) + (2,) * num_qubits)
    drop = tuple(1 + q for q in range(num_qubits) if q not in keep)
    summed = tensor.sum(axis=drop) if drop else tensor
    position_of = {q: axis for axis, q in enumerate(sorted(keep))}
    axes = [0] + [1 + position_of[q] for q in keep]
    return np.transpose(summed, axes=axes).reshape(rows.shape[0], -1)
