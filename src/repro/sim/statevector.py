"""Exact statevector simulation (paper Fig. 2a — the ground-truth mode).

The state is stored as a rank-``n`` tensor of shape ``(2,)*n`` with axis
``i`` holding qubit ``i``; flattening in C order gives the qubit-0-is-MSB
index convention used across the package.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..circuits import Gate, QuantumCircuit

__all__ = [
    "Statevector",
    "simulate_statevector",
    "simulate_probabilities",
    "INITIAL_STATES",
    "initial_state",
]

#: Single-qubit initialization states used by the downstream subcircuit
#: variants: the computational basis plus |+> and |+i> (paper Fig. 3).
INITIAL_STATES = {
    "zero": np.array([1.0, 0.0], dtype=complex),
    "one": np.array([0.0, 1.0], dtype=complex),
    "plus": np.array([1.0, 1.0], dtype=complex) / np.sqrt(2.0),
    "plus_i": np.array([1.0, 1.0j], dtype=complex) / np.sqrt(2.0),
}


def initial_state(label: str) -> np.ndarray:
    """Look up a single-qubit initialization state by label."""
    try:
        return INITIAL_STATES[label].copy()
    except KeyError:
        raise ValueError(
            f"unknown initial state {label!r}; expected one of "
            f"{sorted(INITIAL_STATES)}"
        ) from None


class Statevector:
    """A mutable ``n``-qubit pure state with in-place gate application."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        if data is None:
            tensor = np.zeros((2,) * self.num_qubits, dtype=complex)
            tensor[(0,) * self.num_qubits] = 1.0
            self._tensor = tensor
        else:
            array = np.asarray(data, dtype=complex)
            if array.size != 1 << self.num_qubits:
                raise ValueError(
                    f"data of size {array.size} does not match "
                    f"{self.num_qubits} qubits"
                )
            self._tensor = array.reshape((2,) * self.num_qubits).copy()

    @classmethod
    def from_product(cls, states: Sequence[np.ndarray]) -> "Statevector":
        """Build a product state from per-qubit 2-vectors (qubit 0 first)."""
        vector = np.array([1.0], dtype=complex)
        for state in states:
            single = np.asarray(state, dtype=complex).reshape(2)
            vector = np.kron(vector, single)
        return cls(len(states), vector)

    @classmethod
    def from_labels(cls, labels: Sequence[str]) -> "Statevector":
        """Product state from labels in :data:`INITIAL_STATES`."""
        return cls.from_product([initial_state(label) for label in labels])

    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate) -> "Statevector":
        return self.apply_matrix(gate.matrix(), gate.qubits)

    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "Statevector":
        """Apply a ``2^k x 2^k`` unitary to the given qubits (first = MSB)."""
        qubits = list(qubits)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not act on {k} qubit(s)"
            )
        operator = matrix.reshape((2,) * (2 * k))
        # Contract operator input axes with the state axes for ``qubits``.
        contracted = np.tensordot(operator, self._tensor, axes=(range(k, 2 * k), qubits))
        # tensordot puts the k output axes first; move them back into place.
        self._tensor = np.moveaxis(contracted, range(k), qubits)
        return self

    def apply_circuit(self, circuit: QuantumCircuit) -> "Statevector":
        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} qubits, state has "
                f"{self.num_qubits}"
            )
        for gate in circuit:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    def amplitudes(self) -> np.ndarray:
        """Flat complex amplitude vector (length ``2**n``)."""
        return self._tensor.reshape(-1).copy()

    def probabilities(self) -> np.ndarray:
        """Flat probability vector (length ``2**n``)."""
        flat = self._tensor.reshape(-1)
        return (flat.real**2 + flat.imag**2).astype(float)

    def probability_of(self, bitstring: str) -> float:
        """Probability of one basis state, read without materializing
        (or copying) the full 2**n probability vector."""
        index = []
        for bit in bitstring:
            value = int(bit)
            if value not in (0, 1):
                raise ValueError(
                    f"bitstring may only contain 0/1, got {bit!r}"
                )
            index.append(value)
        if len(index) != self.num_qubits:
            raise ValueError(
                f"bitstring of length {len(index)} does not match "
                f"{self.num_qubits} qubits"
            )
        amplitude = self._tensor[tuple(index)]
        return float(amplitude.real**2 + amplitude.imag**2)

    def inner(self, other: "Statevector") -> complex:
        return complex(np.vdot(other.amplitudes(), self.amplitudes()))

    def norm(self) -> float:
        return float(np.linalg.norm(self._tensor))


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_labels: Optional[Sequence[str]] = None,
) -> Statevector:
    """Run ``circuit`` from |0..0> (or the given per-qubit labels)."""
    if initial_labels is None:
        state = Statevector(circuit.num_qubits)
    else:
        if len(initial_labels) != circuit.num_qubits:
            raise ValueError(
                f"{len(initial_labels)} labels for {circuit.num_qubits} qubits"
            )
        state = Statevector.from_labels(initial_labels)
    return state.apply_circuit(circuit)


def simulate_probabilities(
    circuit: QuantumCircuit,
    initial_labels: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Exact output distribution of ``circuit`` (ground truth, Fig. 2a)."""
    return simulate_statevector(circuit, initial_labels).probabilities()
