"""Terminal visualization: histograms, cut diagrams, DD zoom traces.

Everything renders to plain text so examples and the CLI work over SSH —
the same spirit as the paper's figures, at 80 columns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .cutting.cutter import CutCircuit
from .utils import index_to_bitstring

__all__ = ["histogram", "compare_histograms", "cut_diagram", "dd_trace"]

_BAR = "#"


def histogram(
    probabilities: np.ndarray,
    top: int = 8,
    width: int = 40,
    threshold: float = 1e-6,
) -> str:
    """Render the ``top`` most probable states as a bar chart."""
    probabilities = np.asarray(probabilities, dtype=float)
    num_qubits = int(np.log2(probabilities.size))
    if 1 << num_qubits != probabilities.size:
        raise ValueError("probability vector length is not a power of two")
    order = np.argsort(probabilities)[::-1]
    lines: List[str] = []
    peak = float(probabilities[order[0]]) if probabilities.size else 0.0
    for index in order[:top]:
        value = float(probabilities[index])
        if value < threshold:
            break
        bar = _BAR * max(1, int(round(width * value / peak))) if peak > 0 else ""
        bits = index_to_bitstring(int(index), num_qubits)
        lines.append(f"|{bits}>  {value:8.4f}  {bar}")
    if not lines:
        lines.append("(all probabilities below threshold)")
    return "\n".join(lines)


def compare_histograms(
    observed: np.ndarray,
    reference: np.ndarray,
    top: int = 8,
    width: int = 24,
    labels: Sequence[str] = ("observed", "reference"),
) -> str:
    """Side-by-side bars of two distributions over the reference's top states."""
    observed = np.asarray(observed, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if observed.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {observed.shape} vs {reference.shape}"
        )
    num_qubits = int(np.log2(reference.size))
    order = np.argsort(reference)[::-1][:top]
    peak = max(float(observed.max()), float(reference.max()), 1e-12)
    lines = [f"{'state':<{num_qubits + 2}}  {labels[0]:<{width + 9}} {labels[1]}"]
    for index in order:
        bits = index_to_bitstring(int(index), num_qubits)
        bar_a = _BAR * int(round(width * observed[index] / peak))
        bar_b = _BAR * int(round(width * reference[index] / peak))
        lines.append(
            f"|{bits}>  {observed[index]:7.4f} {bar_a:<{width}} "
            f"{reference[index]:7.4f} {bar_b}"
        )
    return "\n".join(lines)


def cut_diagram(cut: CutCircuit) -> str:
    """Annotate each wire with its segments and cut positions.

    One row per original wire: ``=`` marks multiqubit-gate slots, ``X``
    marks a cut, and the digits name the subcircuit owning each segment.
    """
    graph = cut.graph
    lines = []
    for wire in range(cut.circuit.num_qubits):
        vertex_ids = graph.wire_vertices[wire]
        clusters = [cut.assignment[v] for v in vertex_ids]
        cells: List[str] = []
        for position, cluster in enumerate(clusters):
            if position > 0 and clusters[position - 1] != cluster:
                cells.append("X")
            cells.append(f"={cluster}=")
        lines.append(f"q{wire:<3} " + "".join(cells))
    legend = (
        f"{cut.num_subcircuits} subcircuits, {cut.num_cuts} cut(s); "
        "'=c=' is a gate slot owned by subcircuit c, 'X' is a cut"
    )
    return "\n".join(lines + [legend])


def dd_trace(query, max_rows: Optional[int] = None) -> str:
    """Render a DD query's zoom history (one line per recursion)."""
    num_qubits = query.provider.num_qubits
    lines = []
    recursions = query.recursions[:max_rows] if max_rows else query.recursions
    for recursion in recursions:
        zoomed = "".join(
            str(recursion.fixed[w]) if w in recursion.fixed else "?"
            for w in range(num_qubits)
        )
        best = int(recursion.probabilities.argmax())
        lines.append(
            f"rec {recursion.index + 1:>2}: {zoomed} "
            f"active={list(recursion.active)} "
            f"best-bin={best:0{len(recursion.active)}b} "
            f"p={recursion.probabilities.max():.4f}"
        )
    return "\n".join(lines)
