"""Output-quality metrics: the paper's chi^2 loss (Eq. 16) and friends."""

from __future__ import annotations

import numpy as np

__all__ = [
    "chi_square_loss",
    "chi_square_reduction",
    "fidelity",
    "total_variation_distance",
    "hellinger_fidelity",
]


def chi_square_loss(observed: np.ndarray, ground_truth: np.ndarray) -> float:
    """Eq. 16: sum_i (a_i - b_i)^2 / (a_i + b_i), with 0/0 terms dropped.

    ``observed`` are the execution probabilities (modes b/c of Fig. 2) and
    ``ground_truth`` the statevector probabilities (mode a).  Smaller is
    better; 0 means an exact match.
    """
    observed = np.asarray(observed, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    if observed.shape != ground_truth.shape:
        raise ValueError(
            f"shape mismatch: {observed.shape} vs {ground_truth.shape}"
        )
    denominator = observed + ground_truth
    mask = denominator > 0
    numerator = (observed - ground_truth) ** 2
    return float((numerator[mask] / denominator[mask]).sum())


def chi_square_reduction(chi2_direct: float, chi2_cutqc: float) -> float:
    """Fig. 11's percentage reduction: ``100 * (chi_J - chi_B) / chi_J``."""
    if chi2_direct <= 0:
        raise ValueError("direct-execution chi^2 must be positive")
    return 100.0 * (chi2_direct - chi2_cutqc) / chi2_direct


def fidelity(observed: np.ndarray, solution_index: int) -> float:
    """Correct-answer probability, the Fig. 1 fidelity metric."""
    observed = np.asarray(observed, dtype=float)
    if not 0 <= solution_index < observed.size:
        raise ValueError(f"solution index {solution_index} out of range")
    return float(observed[solution_index])


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Half the L1 distance between two distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def hellinger_fidelity(p: np.ndarray, q: np.ndarray) -> float:
    """Classical fidelity ``(sum_i sqrt(p_i q_i))^2`` between distributions."""
    p = np.clip(np.asarray(p, dtype=float), 0.0, None)
    q = np.clip(np.asarray(q, dtype=float), 0.0, None)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(np.sqrt(p * q).sum() ** 2)
