"""Bit-manipulation and distribution helpers shared across the toolchain.

Conventions
-----------
Basis-state indices use *qubit 0 as the most significant bit*, matching the
paper's ``|q0 q1 ... q(n-1)>`` notation.  A probability vector over ``n``
qubits therefore has length ``2**n`` with entry ``i`` corresponding to the
bitstring ``format(i, f"0{n}b")`` read left-to-right as qubits 0..n-1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "bitstring_to_index",
    "index_to_bitstring",
    "top_states",
    "permute_qubits",
    "marginalize",
    "kron_all",
    "normalize_distribution",
    "is_distribution",
]


def bitstring_to_index(bits: str | Sequence[int]) -> int:
    """Convert a bitstring (qubit 0 first) to a basis-state index.

    >>> bitstring_to_index("010")
    2
    """
    index = 0
    for bit in bits:
        value = int(bit)
        if value not in (0, 1):
            raise ValueError(f"bitstring may only contain 0/1, got {bit!r}")
        index = (index << 1) | value
    return index


def index_to_bitstring(index: int, num_qubits: int) -> str:
    """Convert a basis-state index to a bitstring with qubit 0 first.

    >>> index_to_bitstring(2, 3)
    '010'
    """
    if index < 0 or index >= (1 << num_qubits):
        raise ValueError(f"index {index} out of range for {num_qubits} qubits")
    return format(index, f"0{num_qubits}b")


def top_states(
    probabilities: np.ndarray, top: int, num_qubits: int
) -> list[tuple[str, float]]:
    """The ``top`` highest-probability ``(bitstring, probability)`` pairs."""
    order = np.argsort(probabilities)[::-1][:top]
    return [
        (index_to_bitstring(int(index), num_qubits), float(probabilities[index]))
        for index in order
    ]


def permute_qubits(vector: np.ndarray, permutation: Sequence[int]) -> np.ndarray:
    """Reorder the qubits of a length-``2**n`` vector.

    ``permutation[i]`` gives the *current* axis that should become qubit
    ``i`` of the output: ``out[b_0 .. b_{n-1}] = in[b_{perm[0]} .. ]``.
    """
    num_qubits = len(permutation)
    if vector.size != 1 << num_qubits:
        raise ValueError(
            f"vector of size {vector.size} does not match {num_qubits} qubits"
        )
    if sorted(permutation) != list(range(num_qubits)):
        raise ValueError(f"invalid permutation {permutation!r}")
    tensor = vector.reshape((2,) * num_qubits)
    return np.transpose(tensor, axes=permutation).reshape(-1)


def marginalize(vector: np.ndarray, keep: Sequence[int], num_qubits: int) -> np.ndarray:
    """Sum a probability vector down to the ``keep`` qubits (in given order)."""
    keep = list(keep)
    if any(q < 0 or q >= num_qubits for q in keep):
        raise ValueError(f"keep qubits {keep} out of range for {num_qubits} qubits")
    if len(set(keep)) != len(keep):
        raise ValueError("duplicate qubits in keep")
    tensor = vector.reshape((2,) * num_qubits)
    drop = tuple(q for q in range(num_qubits) if q not in keep)
    summed = tensor.sum(axis=drop) if drop else tensor
    # ``summed`` axes are the kept qubits in ascending order; reorder to match
    # the requested ``keep`` order.  Inverse map instead of repeated
    # list.index() — O(n), not O(n^2).
    position_of = {q: axis for axis, q in enumerate(sorted(keep))}
    axes = [position_of[q] for q in keep]
    return np.transpose(summed, axes=axes).reshape(-1)


def kron_all(vectors: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of vectors (left-to-right)."""
    result: np.ndarray | None = None
    for vector in vectors:
        result = vector.copy() if result is None else np.kron(result, vector)
    if result is None:
        raise ValueError("kron_all requires at least one vector")
    return result


def normalize_distribution(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` scaled to sum to 1 (zero vectors are returned as-is)."""
    total = float(vector.sum())
    if total <= 0.0:
        return vector.astype(float)
    return vector / total


def is_distribution(vector: np.ndarray, atol: float = 1e-8) -> bool:
    """Check that ``vector`` is a valid probability distribution."""
    return bool(np.all(vector >= -atol) and abs(float(vector.sum()) - 1.0) <= atol)
