"""Content-addressed on-disk artifact store for the job service.

Every expensive pipeline stage checkpoints its output here under a
*fingerprint* — a stable SHA-256 digest of everything that determines the
artifact's content:

* **cut artifacts** are keyed by ``(circuit, cut options)``
  (:func:`cut_fingerprint`): a repeat job with the same circuit and
  search budgets restores the :class:`~repro.cutting.CutSolution` /
  assignment and skips the MIP/heuristic cut search entirely;
* **evaluation artifacts** are keyed by ``(cut fingerprint, backend
  config, shots, seed)`` (:func:`evaluation_fingerprint`): a sibling job
  that shares the cut and backend restores every
  :class:`~repro.cutting.SubcircuitResult` tensor and skips variant
  execution.

Artifacts are a JSON metadata file plus (for evaluations) an ``.npz``
tensor payload.  Both carry SHA-256 checksums; a corrupted or truncated
artifact is *detected on load*, counted, deleted, and reported as a miss
so the scheduler transparently recomputes it rather than serving garbage.

Fingerprints are order-insensitive where identity is order-insensitive:
option dictionaries hash the same regardless of key order, and explicit
cut-point lists hash as a sorted set.  Gate order naturally *does*
matter — it changes the circuit.

Parameter invariance: cut artifacts are keyed by the circuit's
*structure* (:func:`structural_digest` — gate names and qubits, rotation
angles masked), because the cut search never looks at angles.  A
variational rebind therefore hits the cut cache on every iteration.
Evaluation artifacts, whose tensors *do* depend on the angles, digest the
bound parameter values at full double precision so rebinds never collide.
Both tags are versioned (``cut:v2`` / ``evaluation:v2``): artifacts
written under the pre-variational semantics simply become unreachable and
recompute.

Bounded mode: constructed with ``max_bytes`` the store enforces an LRU
byte budget over cut + evaluation artifacts.  Every hit touches the
artifact's mtime (cross-process recency); every write triggers
:meth:`ArtifactStore.enforce_budget`, which evicts least-recently-used
fingerprints until the footprint fits.  Artifacts *pinned* by a live job
(:meth:`pin` drops a marker file carrying the pinning pid) are never
evicted; markers whose pid died are garbage-collected on the next
eviction pass.  Evictions feed ``repro_store_evictions_total``.

The store also persists terminal job documents (``jobs/results/``) so a
restarted or peer scheduler can serve ``GET /jobs/<id>/result`` for jobs
it never executed; the job journal itself lives under ``jobs/`` too (see
:mod:`repro.service.journal`).  Neither counts toward the LRU budget —
the budget bounds the recomputable cache, not the job ledger.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import threading
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import chaos
from ..circuits import QuantumCircuit
from ..cutting import CutCircuit, CutSolution, SubcircuitResult
from ..cutting.cutter import cut_circuit_from_assignment
from ..obs.metrics import get_registry

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "circuit_digest",
    "structural_digest",
    "cut_fingerprint",
    "evaluation_fingerprint",
]

#: Bump when the on-disk layout changes; mismatched artifacts are misses.
_FORMAT_VERSION = 1

# Process-wide mirrors of the per-instance StoreStats counters: every
# store feeds the same registry series, so ``GET /metrics`` reflects
# lifetime totals regardless of how many stores a process created.
_STORE_HITS = get_registry().counter(
    "repro_store_hits_total", "Artifact-store cache hits by kind.", ("kind",)
)
_STORE_MISSES = get_registry().counter(
    "repro_store_misses_total",
    "Artifact-store cache misses by kind.",
    ("kind",),
)
_STORE_CORRUPT = get_registry().counter(
    "repro_store_corrupt_total", "Artifacts that failed verification."
)
_STORE_WRITES = get_registry().counter(
    "repro_store_writes_total", "Artifacts written."
)
_STORE_EVICTIONS = get_registry().counter(
    "repro_store_evictions_total",
    "Artifacts evicted by the LRU byte-budget enforcer, by kind.",
    ("kind",),
)
_STORE_EVICTED_BYTES = get_registry().counter(
    "repro_store_evicted_bytes_total",
    "Bytes reclaimed by LRU eviction.",
)
_STORE_BYTES = get_registry().gauge(
    "repro_store_bytes",
    "Cache footprint (cut + evaluation artifacts) of the most recently "
    "written-to bounded store.",
)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def _canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload) -> str:
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


def circuit_digest(circuit: QuantumCircuit) -> str:
    """Stable content hash of a circuit (width + exact gate list).

    Parameters are hashed at full double precision (``float.hex``), so
    two circuits digest equal iff they are gate-for-gate bit-identical.
    """
    return _digest(
        {
            "num_qubits": circuit.num_qubits,
            "gates": [
                [gate.name, list(gate.qubits),
                 [float(p).hex() for p in gate.params]]
                for gate in circuit
            ],
        }
    )


def structural_digest(circuit: QuantumCircuit) -> str:
    """Stable content hash of a circuit's *structure* (angles masked).

    Two circuits digest equal iff they have the same width and the same
    ``(name, qubits)`` gate sequence — i.e. iff one is a parameter rebind
    of the other.  Every cut-level artifact is keyed on this digest so
    variational rebinds reuse the cut.
    """
    return _digest(
        {
            "num_qubits": circuit.num_qubits,
            "gates": [
                [gate.name, list(gate.qubits)] for gate in circuit
            ],
        }
    )


def _params_hex(params: Sequence[float]) -> List[str]:
    return [float(p).hex() for p in params]


def _canonical_options(options: Dict) -> Dict:
    """Normalize a cut-option dict: drop Nones, sort explicit cut sets."""
    canonical = {}
    for key, value in options.items():
        if value is None:
            continue
        if key == "cuts":
            # Explicit cut points are a *set* of (wire, index) pairs —
            # submission order does not change the cut.
            canonical[key] = sorted([int(w), int(i)] for w, i in value)
        else:
            canonical[key] = value
    return canonical


def cut_fingerprint(circuit: QuantumCircuit, options: Dict) -> str:
    """Fingerprint of ``(circuit, cut options)`` — the cut-artifact key.

    ``options`` is the canonical cut-search option dict (device budget,
    subcircuit/cut limits, method, optional explicit cuts).  Key order is
    irrelevant; ``None`` values are treated as absent.

    The digest is **parameter-invariant** (``cut:v2``): it hashes the
    circuit's structure, not its rotation angles, because the cut search
    only sees connectivity.  Rebinding parameters keeps the key stable.
    """
    return _digest(
        {
            "kind": "cut:v2",
            "circuit": structural_digest(circuit),
            "options": _canonical_options(options),
        }
    )


def evaluation_fingerprint(
    cut_key: str,
    backend: str = "statevector",
    shots: Optional[int] = None,
    seed: Optional[int] = None,
    config: Optional[Dict] = None,
    params: Optional[Sequence[float]] = None,
) -> str:
    """Fingerprint of ``(cut, params, backend config, shots, seed)`` — the
    evaluation-artifact key.  ``backend`` is a config *tag*, not a
    callable; batched execution modes carry a versioned tag (e.g.
    ``"statevector:batched:v2"``, ``"device:bogota:trajectory:batched:v1"``)
    so artifacts produced by older evaluation semantics recompute
    instead of silently colliding.  ``config`` holds extra
    result-shaping knobs (e.g. trajectory counts); it enters the digest
    only when set, keeping historical unversioned keys stable.

    ``params`` are the circuit's **bound parameter values** (the flat
    tuple :meth:`QuantumCircuit.parameters` produces), hashed at full
    double precision.  The cut key above is parameter-invariant, so the
    angles must enter here — otherwise two rebinds of one circuit would
    collide on the same evaluation artifact.  The tag is versioned
    (``evaluation:v2``) so artifacts written under the old
    parameter-blind semantics recompute.
    """
    payload = {
        "kind": "evaluation:v2",
        "cut": cut_key,
        "backend": backend,
        "shots": shots,
        "seed": seed,
        "params": _params_hex(params if params is not None else ()),
    }
    if config is not None:
        payload["config"] = config
    return _digest(payload)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

@dataclass
class StoreStats:
    """Hit/miss/corruption counters, reported via ``/stats``."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    hits_by_kind: Dict[str, int] = field(default_factory=dict)
    misses_by_kind: Dict[str, int] = field(default_factory=dict)

    def _count(self, table: Dict[str, int], kind: str) -> None:
        table[kind] = table.get(kind, 0) + 1

    def as_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "hits_by_kind": dict(self.hits_by_kind),
            "misses_by_kind": dict(self.misses_by_kind),
        }


class ArtifactStore:
    """Content-addressed store of cut solutions and evaluated tensors.

    Layout (under ``root``)::

        cuts/<fingerprint>.json          assignment + priced solution
        evaluations/<fingerprint>.json   variant key map + checksums
        evaluations/<fingerprint>.npz    unique variant tensors
        pins/<kind>-<key>@<pid>          live-job pin markers
        jobs/results/<job_id>.json       terminal job documents
        jobs/journal.jsonl, jobs/claims/ the job journal (journal.py)

    Thread-safety: writes go through an atomic rename, and loads verify
    checksums, so concurrent scheduler workers can share one store —
    the worst case for a racing write is recomputing one artifact.

    With ``max_bytes`` set the cut/evaluation footprint is bounded:
    writes evict least-recently-used unpinned fingerprints until the
    budget holds (see the module docstring).
    """

    def __init__(self, root, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._cuts = self.root / "cuts"
        self._evaluations = self.root / "evaluations"
        self._traces = self.root / "traces"
        self._pins_dir = self.root / "pins"
        self._jobs = self.root / "jobs" / "results"
        self._cuts.mkdir(parents=True, exist_ok=True)
        self._evaluations.mkdir(parents=True, exist_ok=True)
        self._traces.mkdir(parents=True, exist_ok=True)
        self._pins_dir.mkdir(parents=True, exist_ok=True)
        self._jobs.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        self._stats_lock = threading.Lock()
        self._pin_lock = threading.Lock()
        self._pins: Dict[str, int] = {}
        self._evict_lock = threading.Lock()

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        # Chaos hook: may raise an injected OSError or corrupt the
        # payload (checksums are computed upstream over the original
        # content, so corruption surfaces on the next read).
        data = chaos.on_store_write(data)
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _record_hit(self, kind: str) -> None:
        with self._stats_lock:
            self.stats.hits += 1
            self.stats._count(self.stats.hits_by_kind, kind)
        _STORE_HITS.inc(kind=kind)

    def _record_miss(self, kind: str, corrupt: bool = False) -> None:
        with self._stats_lock:
            self.stats.misses += 1
            self.stats._count(self.stats.misses_by_kind, kind)
            if corrupt:
                self.stats.corrupt += 1
        _STORE_MISSES.inc(kind=kind)
        if corrupt:
            _STORE_CORRUPT.inc()

    def _record_write(self) -> None:
        with self._stats_lock:
            self.stats.writes += 1
        _STORE_WRITES.inc()

    @staticmethod
    def _discard(*paths: Path) -> None:
        """Remove corrupt artifact files so the slot self-heals."""
        for path in paths:
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _touch(*paths: Path) -> None:
        """Refresh mtimes — the cross-process LRU recency signal."""
        for path in paths:
            try:
                os.utime(path, None)
            except OSError:
                pass

    # -- pinning (LRU eviction protection) ------------------------------
    @staticmethod
    def _pin_token(kind: str, key: str) -> str:
        return f"{kind}-{key}"

    def pin(self, kind: str, key: str) -> None:
        """Protect an artifact from eviction while a live job uses it.

        Pins are reference-counted in-process and mirrored as a marker
        file carrying this pid, so N servers sharing one store dir see
        each other's pins; markers of dead pids are swept lazily.
        """
        token = self._pin_token(kind, key)
        with self._pin_lock:
            count = self._pins.get(token, 0)
            self._pins[token] = count + 1
            if count == 0:
                try:
                    (self._pins_dir / f"{token}@{os.getpid()}").touch()
                except OSError:
                    pass

    def unpin(self, kind: str, key: str) -> None:
        token = self._pin_token(kind, key)
        with self._pin_lock:
            count = self._pins.get(token, 0) - 1
            if count > 0:
                self._pins[token] = count
                return
            self._pins.pop(token, None)
            self._discard(self._pins_dir / f"{token}@{os.getpid()}")

    def pinned_tokens(self) -> set:
        """Tokens pinned by any live process (dead-pid markers swept)."""
        from .journal import pid_alive

        tokens = set()
        try:
            markers = list(self._pins_dir.iterdir())
        except OSError:
            markers = []
        for marker in markers:
            token, _, pid_text = marker.name.rpartition("@")
            if not token:
                continue
            try:
                holder = int(pid_text)
            except ValueError:
                holder = None
            if pid_alive(holder):
                tokens.add(token)
            else:
                self._discard(marker)
        with self._pin_lock:
            tokens.update(self._pins)
        return tokens

    # -- LRU budget enforcement -----------------------------------------
    def _entries(self):
        """Every evictable artifact: (kind, key, paths, bytes, mtime)."""
        entries = []
        for meta in self._cuts.glob("*.json"):
            try:
                stat = meta.stat()
            except OSError:
                continue
            entries.append(
                ("cut", meta.stem, (meta,), stat.st_size, stat.st_mtime)
            )
        for meta in self._evaluations.glob("*.json"):
            paths = [meta]
            size = 0
            newest = 0.0
            tensors = meta.with_suffix(".npz")
            if tensors.exists():
                paths.append(tensors)
            try:
                for path in paths:
                    stat = path.stat()
                    size += stat.st_size
                    newest = max(newest, stat.st_mtime)
            except OSError:
                continue
            entries.append(
                ("evaluation", meta.stem, tuple(paths), size, newest)
            )
        return entries

    def total_bytes(self) -> int:
        """Current cut + evaluation footprint in bytes."""
        return sum(entry[3] for entry in self._entries())

    def enforce_budget(self, protect: Optional[str] = None) -> List[str]:
        """Evict LRU artifacts until the footprint fits ``max_bytes``.

        ``protect`` names a fingerprint that must survive this pass (the
        artifact just written — even when it alone exceeds the budget,
        evicting it would turn every write into a thrash cycle).  Pinned
        artifacts are always skipped.  Returns the evicted fingerprints.
        """
        if self.max_bytes is None:
            return []
        with self._evict_lock:
            entries = self._entries()
            total = sum(entry[3] for entry in entries)
            _STORE_BYTES.set(float(total))
            if total <= self.max_bytes:
                return []
            pinned = self.pinned_tokens()
            evicted: List[str] = []
            for kind, key, paths, size, _ in sorted(
                entries, key=lambda entry: entry[4]
            ):
                if total <= self.max_bytes:
                    break
                if key == protect or self._pin_token(kind, key) in pinned:
                    continue
                self._discard(*paths)
                total -= size
                evicted.append(key)
                with self._stats_lock:
                    self.stats.evictions += 1
                    self.stats.evicted_bytes += size
                _STORE_EVICTIONS.inc(kind=kind)
                _STORE_EVICTED_BYTES.inc(size)
            _STORE_BYTES.set(float(total))
            return evicted

    # -- cut artifacts --------------------------------------------------
    def cut_path(self, key: str) -> Path:
        return self._cuts / f"{key}.json"

    def has_cut(self, key: str) -> bool:
        return self.cut_path(key).exists()

    def put_cut(
        self,
        key: str,
        circuit: QuantumCircuit,
        cut_circuit: CutCircuit,
        solution: Optional[CutSolution] = None,
    ) -> Path:
        """Persist a cut: the assignment (enough to re-derive every
        subcircuit deterministically) plus the priced solution if the
        search produced one.  The artifact records the *structural*
        digest — any parameter rebind of ``circuit`` restores it."""
        payload = {
            "assignment": list(cut_circuit.assignment),
            "num_cuts": cut_circuit.num_cuts,
            "structure": structural_digest(circuit),
            "solution": solution.to_dict() if solution is not None else None,
        }
        document = {
            "version": _FORMAT_VERSION,
            "kind": "cut",
            "fingerprint": key,
            "payload": payload,
            "checksum": _digest(payload),
        }
        path = self.cut_path(key)
        self._write_atomic(path, (json.dumps(document, indent=2) + "\n").encode())
        self._record_write()
        self.enforce_budget(protect=key)
        return path

    def get_cut(
        self, key: str, circuit: QuantumCircuit
    ) -> Optional[Tuple[CutCircuit, Optional[CutSolution]]]:
        """Restore a cut for ``circuit``; ``None`` on miss or corruption."""
        chaos.on_store_read("cut")
        path = self.cut_path(key)
        if not path.exists():
            self._record_miss("cut")
            return None
        try:
            document = json.loads(path.read_text())
            payload = document["payload"]
            if (
                document.get("version") != _FORMAT_VERSION
                or document.get("checksum") != _digest(payload)
                or payload.get("structure") != structural_digest(circuit)
            ):
                raise ValueError("cut artifact failed verification")
            assignment = [int(a) for a in payload["assignment"]]
            restored = cut_circuit_from_assignment(circuit, assignment)
            if restored.num_cuts != int(payload["num_cuts"]):
                raise ValueError("restored cut disagrees with metadata")
            solution = (
                CutSolution.from_dict(payload["solution"])
                if payload.get("solution") is not None
                else None
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError):
            self._record_miss("cut", corrupt=True)
            self._discard(path)
            return None
        self._record_hit("cut")
        self._touch(path)
        return restored, solution

    # -- evaluation artifacts -------------------------------------------
    def evaluation_path(self, key: str) -> Tuple[Path, Path]:
        return (
            self._evaluations / f"{key}.json",
            self._evaluations / f"{key}.npz",
        )

    def has_evaluation(self, key: str) -> bool:
        meta, tensors = self.evaluation_path(key)
        return meta.exists() and tensors.exists()

    def put_evaluation(
        self, key: str, results: Sequence[SubcircuitResult]
    ) -> Path:
        """Persist evaluated variant tensors, deduplicated.

        Variants that shared one physical execution share one stored row:
        each subcircuit stores its unique vectors as a 2-D array plus a
        variant-key -> row map, so the artifact is as compact as the
        execution itself was.
        """
        arrays: Dict[str, np.ndarray] = {}
        meta_subcircuits: List[Dict] = []
        for position, result in enumerate(results):
            rows: List[np.ndarray] = []
            row_of: Dict[int, int] = {}
            variants: List[List] = []
            for (inits, bases), vector in result.probabilities.items():
                slot = row_of.get(id(vector))
                if slot is None:
                    slot = len(rows)
                    row_of[id(vector)] = slot
                    rows.append(np.asarray(vector, dtype=float))
                variants.append([list(inits), list(bases), slot])
            arrays[f"sub{position}"] = (
                np.stack(rows) if rows else np.zeros((0, 0))
            )
            meta_subcircuits.append(
                {
                    "index": result.subcircuit.index,
                    "width": result.subcircuit.width,
                    "num_variants": result.num_variants,
                    "num_unique_circuits": result.num_unique_circuits,
                    "mode": result.mode,
                    "num_body_passes": result.num_body_passes,
                    "variants": variants,
                }
            )

        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        tensor_bytes = buffer.getvalue()
        payload = {
            "subcircuits": meta_subcircuits,
            "tensors_sha256": hashlib.sha256(tensor_bytes).hexdigest(),
        }
        document = {
            "version": _FORMAT_VERSION,
            "kind": "evaluation",
            "fingerprint": key,
            "payload": payload,
            "checksum": _digest(payload),
        }
        meta_path, tensor_path = self.evaluation_path(key)
        self._write_atomic(tensor_path, tensor_bytes)
        self._write_atomic(
            meta_path, (json.dumps(document, indent=2) + "\n").encode()
        )
        self._record_write()
        self.enforce_budget(protect=key)
        return meta_path

    def get_evaluation(
        self, key: str, cut_circuit: CutCircuit
    ) -> Optional[List[SubcircuitResult]]:
        """Restore the evaluated tensors of ``cut_circuit``'s subcircuits,
        bit-identical to what was stored; ``None`` on miss or corruption."""
        chaos.on_store_read("evaluation")
        meta_path, tensor_path = self.evaluation_path(key)
        if not (meta_path.exists() and tensor_path.exists()):
            self._record_miss("evaluation")
            return None
        try:
            document = json.loads(meta_path.read_text())
            payload = document["payload"]
            if (
                document.get("version") != _FORMAT_VERSION
                or document.get("checksum") != _digest(payload)
            ):
                raise ValueError("evaluation metadata failed verification")
            tensor_bytes = tensor_path.read_bytes()
            if (
                hashlib.sha256(tensor_bytes).hexdigest()
                != payload["tensors_sha256"]
            ):
                raise ValueError("evaluation tensors failed checksum")
            meta_subcircuits = payload["subcircuits"]
            if len(meta_subcircuits) != cut_circuit.num_subcircuits:
                raise ValueError("artifact does not match the cut")
            with np.load(io.BytesIO(tensor_bytes)) as archive:
                results: List[SubcircuitResult] = []
                for position, meta in enumerate(meta_subcircuits):
                    subcircuit = cut_circuit.subcircuits[position]
                    if (
                        int(meta["index"]) != subcircuit.index
                        or int(meta["width"]) != subcircuit.width
                    ):
                        raise ValueError("artifact does not match the cut")
                    matrix = archive[f"sub{position}"]
                    # One shared array object per stored row, so the
                    # restored results dedup exactly like the originals.
                    shared = [np.array(matrix[row]) for row in
                              range(matrix.shape[0])]
                    probabilities = {}
                    for inits, bases, slot in meta["variants"]:
                        vector = shared[int(slot)]
                        if vector.size != 1 << subcircuit.width:
                            raise ValueError("tensor width mismatch")
                        probabilities[(tuple(inits), tuple(bases))] = vector
                    results.append(
                        SubcircuitResult(
                            subcircuit=subcircuit,
                            probabilities=probabilities,
                            num_variants=int(meta["num_variants"]),
                            num_unique_circuits=int(
                                meta["num_unique_circuits"]
                            ),
                            # Absent in pre-batched artifacts.
                            mode=str(meta.get("mode", "per-variant")),
                            num_body_passes=int(
                                meta.get("num_body_passes", 0)
                            ),
                        )
                    )
        except (KeyError, TypeError, ValueError, IndexError,
                json.JSONDecodeError, OSError, zipfile.BadZipFile):
            self._record_miss("evaluation", corrupt=True)
            self._discard(meta_path, tensor_path)
            return None
        self._record_hit("evaluation")
        self._touch(meta_path, tensor_path)
        return results

    # -- trace artifacts ------------------------------------------------
    def trace_path(self, job_id: str) -> Path:
        return self._traces / f"{job_id}.json"

    def put_trace(self, job_id: str, document: Dict) -> Path:
        """Persist a job's span tree (keyed by job id, not content)."""
        path = self.trace_path(job_id)
        self._write_atomic(
            path, (json.dumps(document, indent=2) + "\n").encode()
        )
        self._record_write()
        return path

    def get_trace(self, job_id: str) -> Optional[Dict]:
        """Restore a job's span tree; ``None`` if absent or unreadable."""
        path = self.trace_path(job_id)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (ValueError, OSError):
            self._discard(path)
            return None

    # -- job documents (terminal job records, keyed by job id) ----------
    def job_document_path(self, job_id: str) -> Path:
        return self._jobs / f"{job_id}.json"

    def put_job_document(self, job_id: str, document: Dict) -> Path:
        """Persist a terminal job record so any server can serve its
        status/result after a restart (not LRU-budgeted)."""
        path = self.job_document_path(job_id)
        self._write_atomic(
            path, (json.dumps(document, indent=2) + "\n").encode()
        )
        self._record_write()
        return path

    def get_job_document(self, job_id: str) -> Optional[Dict]:
        path = self.job_document_path(job_id)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (ValueError, OSError):
            self._discard(path)
            return None

    # -- reporting ------------------------------------------------------
    def artifact_counts(self) -> Dict[str, int]:
        return {
            "cuts": len(list(self._cuts.glob("*.json"))),
            "evaluations": len(list(self._evaluations.glob("*.json"))),
            "traces": len(list(self._traces.glob("*.json"))),
        }

    def as_dict(self) -> Dict:
        return {
            "root": str(self.root),
            "artifacts": self.artifact_counts(),
            "max_bytes": self.max_bytes,
            "bytes": self.total_bytes(),
            **self.stats.as_dict(),
        }
